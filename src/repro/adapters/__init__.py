"""Adapters for tracing real database clients (the deployment-side Tracer)."""

from .base import Backend, BackendError, TracedTransaction, TracingClient
from .memory import DictBackend

__all__ = [
    "Backend",
    "BackendError",
    "TracedTransaction",
    "TracingClient",
    "DictBackend",
]
