"""Reference in-memory backend for the tracing adapter.

A minimal transactional store with two selectable disciplines:

* ``"serial"`` -- a single global mutex serialises whole transactions
  (trivially serializable; the backend every history from it must verify
  clean against);
* ``"chaos"``  -- no concurrency control at all: transactions read the
  latest state and buffer writes until commit, so concurrent read-modify-
  write cycles produce genuine lost updates and dirty-adjacent anomalies.
  Used by tests and examples to show the adapter + verifier catching a
  *real* (non-simulated) broken store.

Both run fine under real Python threads: the store itself is protected by
a lock; only the *transactional* guarantees differ.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional, Sequence

from ..core.trace import Key
from .base import Backend


class DictBackend:
    """Shared store; create one per database, then one :meth:`session`
    (a :class:`~repro.adapters.base.Backend`) per thread/client."""

    def __init__(self, initial: Optional[Mapping[Key, Mapping[str, object]]] = None,
                 discipline: str = "serial"):
        if discipline not in ("serial", "chaos"):
            raise ValueError(f"unknown discipline {discipline!r}")
        from ..core.trace import as_columns

        self.discipline = discipline
        self._data: Dict[Key, Dict[str, object]] = {
            key: as_columns(image) for key, image in (initial or {}).items()
        }
        self._store_lock = threading.Lock()
        self._txn_lock = threading.Lock()
        self.initial_db = {key: dict(image) for key, image in self._data.items()}

    def session(self) -> "_DictSession":
        return _DictSession(self)

    # -- store primitives (always under the store lock) ----------------------

    def _snapshot(self, keys: Sequence[Key]):
        with self._store_lock:
            return {
                key: (dict(self._data[key]) if key in self._data else None)
                for key in keys
            }

    def _apply(self, staged: Mapping[Key, Mapping[str, object]]) -> None:
        with self._store_lock:
            for key, columns in staged.items():
                self._data.setdefault(key, {}).update(columns)


class _DictSession(Backend):
    """Per-client backend instance sharing one :class:`DictBackend`."""

    def __init__(self, shared: DictBackend):
        self._shared = shared
        self._staged: Dict[Key, Dict[str, object]] = {}
        self._holds_txn_lock = False

    def begin(self) -> None:
        self._staged = {}
        if self._shared.discipline == "serial":
            self._shared._txn_lock.acquire()
            self._holds_txn_lock = True

    def read(self, keys, for_update: bool = False):
        values = self._shared._snapshot(keys)
        for key in keys:
            if key in self._staged:
                merged = dict(values[key] or {})
                merged.update(self._staged[key])
                values[key] = merged
        return values

    def write(self, writes) -> None:
        for key, columns in writes.items():
            self._staged.setdefault(key, {}).update(columns)

    def commit(self) -> None:
        self._shared._apply(self._staged)
        self._end()

    def abort(self) -> None:
        self._end()

    def _end(self) -> None:
        self._staged = {}
        if self._holds_txn_lock:
            self._shared._txn_lock.release()
            self._holds_txn_lock = False
