"""Tracing adapter: wrap any real database client to produce traces.

This is the deployment story of the paper's *Tracer*: the application keeps
calling its database driver; a thin wrapper timestamps each call before and
after and appends an interval-based trace.  Nothing about the application
logic or the database changes (challenge C1).

To integrate a real system, implement :class:`Backend` over your driver::

    class PostgresBackend(Backend):
        def __init__(self, conn):
            self._conn = conn
        def begin(self):
            self._conn.autocommit = False
        def read(self, keys, for_update=False):
            rows = {}
            for table, pk in keys:
                cur = self._conn.execute(
                    f"SELECT * FROM {table} WHERE id = %s"
                    + (" FOR UPDATE" if for_update else ""),
                    (pk,),
                )
                row = cur.fetchone()
                rows[(table, pk)] = dict(row) if row else None
            return rows
        def write(self, writes): ...
        def commit(self): self._conn.commit()
        def abort(self): self._conn.rollback()

then drive transactions through :class:`TracingClient` and feed the
recorded streams to the verifier.  :class:`repro.adapters.memory.DictBackend`
is a self-contained reference backend used by the tests and examples.
"""

from __future__ import annotations

import abc
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core.trace import Key, OpStatus, Trace, as_columns


class BackendError(Exception):
    """Raised by a backend when an operation fails (e.g. serialization
    failure).  The tracing client records a FAILED trace and rolls back."""


class Backend(abc.ABC):
    """Driver-facing interface the tracing client wraps."""

    @abc.abstractmethod
    def begin(self) -> None:
        """Start a transaction on the underlying connection."""

    @abc.abstractmethod
    def read(
        self, keys: Sequence[Key], for_update: bool = False
    ) -> Dict[Key, Optional[Mapping[str, object]]]:
        """Read records; return ``None`` for missing keys."""

    @abc.abstractmethod
    def write(self, writes: Mapping[Key, Mapping[str, object]]) -> None:
        """Apply column writes within the current transaction."""

    @abc.abstractmethod
    def commit(self) -> None:
        """Commit; raise :class:`BackendError` on failure."""

    @abc.abstractmethod
    def abort(self) -> None:
        """Roll back the current transaction."""


class TracingClient:
    """One traced client connection.

    Use as a context manager per transaction::

        client = TracingClient(backend, client_id=0)
        with client.transaction() as txn:
            row = txn.read(["x"])["x"]
            txn.write({"x": row["v"] + 1})
        # traces for read/write/commit recorded in client.traces

    Raising inside the block (or a :class:`BackendError` from the backend)
    rolls the transaction back and records the abort trace.
    """

    def __init__(
        self,
        backend: Backend,
        client_id: int = 0,
        clock: Callable[[], float] = time.monotonic,
        txn_prefix: Optional[str] = None,
    ):
        self._backend = backend
        self.client_id = client_id
        self._clock = clock
        self._txn_prefix = txn_prefix or f"c{client_id}"
        self._txn_counter = 0
        self.traces: List[Trace] = []

    def transaction(self) -> "TracedTransaction":
        self._txn_counter += 1
        txn_id = f"{self._txn_prefix}-{self._txn_counter}"
        return TracedTransaction(self, txn_id)

    # -- internal trace recording -------------------------------------------------

    def _record(self, factory, txn_id, op_index, payload, **kwargs) -> None:
        self.traces.append(
            factory(
                kwargs.pop("ts_bef"),
                kwargs.pop("ts_aft"),
                txn_id,
                *([] if payload is None else [payload]),
                client_id=self.client_id,
                op_index=op_index,
                **kwargs,
            )
        )


class TracedTransaction:
    """Context manager wrapping one backend transaction with tracing."""

    def __init__(self, client: TracingClient, txn_id: str):
        self._client = client
        self.txn_id = txn_id
        self._op_index = 0
        self._finished = False

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "TracedTransaction":
        self._client._backend.begin()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._finished:
            return exc_type is None or issubclass(exc_type, BackendError)
        if exc_type is None:
            self.commit()
            return True
        self.abort()
        # Backend errors are part of normal operation (serialization
        # failures); anything else propagates.
        return issubclass(exc_type, BackendError)

    # -- operations ----------------------------------------------------------------

    def _stamp(self) -> float:
        return self._client._clock()

    def read(
        self, keys: Sequence[Key], for_update: bool = False
    ) -> Dict[Key, Optional[Dict[str, object]]]:
        ts_bef = self._stamp()
        try:
            values = self._client._backend.read(keys, for_update=for_update)
        except BackendError:
            self._record_failed(Trace.read, ts_bef, for_update=for_update)
            raise
        ts_aft = self._stamp()
        observed = {
            key: (dict(value) if value is not None else {})
            for key, value in values.items()
        }
        self._client._record(
            Trace.read,
            self.txn_id,
            self._op_index,
            observed,
            ts_bef=ts_bef,
            ts_aft=ts_aft,
            for_update=for_update,
        )
        self._op_index += 1
        return {
            key: (dict(value) if value is not None else None)
            for key, value in values.items()
        }

    def write(self, writes: Mapping[Key, object]) -> None:
        normalised = {key: as_columns(value) for key, value in writes.items()}
        ts_bef = self._stamp()
        try:
            self._client._backend.write(normalised)
        except BackendError:
            self._record_failed(Trace.write, ts_bef)
            raise
        ts_aft = self._stamp()
        self._client._record(
            Trace.write,
            self.txn_id,
            self._op_index,
            normalised,
            ts_bef=ts_bef,
            ts_aft=ts_aft,
        )
        self._op_index += 1

    def commit(self) -> None:
        ts_bef = self._stamp()
        try:
            self._client._backend.commit()
        except BackendError:
            # A failed commit is a rollback: record the abort terminal.
            ts_aft = self._stamp()
            self._client._record(
                Trace.abort,
                self.txn_id,
                self._op_index,
                None,
                ts_bef=ts_bef,
                ts_aft=ts_aft,
            )
            self._finished = True
            raise
        ts_aft = self._stamp()
        self._client._record(
            Trace.commit,
            self.txn_id,
            self._op_index,
            None,
            ts_bef=ts_bef,
            ts_aft=ts_aft,
        )
        self._finished = True

    def abort(self) -> None:
        ts_bef = self._stamp()
        self._client._backend.abort()
        ts_aft = self._stamp()
        self._client._record(
            Trace.abort,
            self.txn_id,
            self._op_index,
            None,
            ts_bef=ts_bef,
            ts_aft=ts_aft,
        )
        self._finished = True

    def _record_failed(self, factory, ts_bef: float, **kwargs) -> None:
        ts_aft = self._stamp()
        self._client._record(
            factory,
            self.txn_id,
            self._op_index,
            {},
            ts_bef=ts_bef,
            ts_aft=ts_aft,
            status=OpStatus.FAILED,
            **kwargs,
        )
        self._op_index += 1
