"""Session registry: connection bookkeeping and deterministic trace ids.

A *session* is one ingest connection; a *client* is one logical trace
stream (the ``client_id`` every trace carries).  The two are decoupled so
a client may disconnect mid-stream and reconnect on a fresh session --
its per-client cursor (how many traces it has pushed so far) survives in
the registry and keeps trace-id assignment contiguous.

Trace ids never travel on the wire (the codec assigns process-local ids
on decode, in arrival order -- useless for determinism under concurrent
sessions).  The registry instead stamps every accepted trace with::

    trace_id = (client_id << SEQ_BITS) | per_client_sequence

which sorts lexicographically by ``(client_id, arrival index)`` -- the
exact relative order :func:`repro.core.io.load_client_streams` produces
when an offline ``verify`` loads the same streams from per-client files.
Timestamp ties between clients therefore break identically online and
offline, which is what makes the drained service report byte-identical
to the offline run (see ``docs/service.md``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.trace import Trace

#: Sequence bits per client: 2^40 traces per client before overflow, with
#: room for ~8M clients in the id space above.
SEQ_BITS = 40


@dataclass
class ClientRecord:
    """Per-client state that outlives any one session."""

    client_id: int
    next_seq: int = 0
    traces: int = 0
    sessions: int = 0
    #: session id currently attached to this client (None between
    #: connections); a client may only be driven by one session at a time.
    active_session: Optional[int] = None
    evicted: bool = False


@dataclass
class Session:
    """One ingest connection."""

    session_id: int
    client: Optional[ClientRecord] = None
    frames: int = 0
    traces: int = 0
    bytes: int = 0
    #: ingest-stream offset of the first byte of the frame currently being
    #: processed (error reports point here).
    frame_offset: int = 0
    closed: bool = False
    error: Optional[str] = None

    @property
    def client_id(self) -> Optional[int]:
        return self.client.client_id if self.client is not None else None


class SessionRegistry:
    """Allocates sessions, binds them to clients, stamps trace ids."""

    def __init__(self) -> None:
        self._sessions: Dict[int, Session] = {}
        self._clients: Dict[int, ClientRecord] = {}
        self._next_session = 1
        self.opened = 0
        self.closed = 0

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> Session:
        session = Session(session_id=self._next_session)
        self._next_session += 1
        self._sessions[session.session_id] = session
        self.opened += 1
        return session

    def bind(self, session: Session, client_id: int) -> ClientRecord:
        """Attach a session to its client (the HELLO handshake)."""
        record = self._clients.get(client_id)
        if record is None:
            record = ClientRecord(client_id=client_id)
            self._clients[client_id] = record
        if record.evicted:
            raise ValueError(
                f"client {client_id} was evicted for a poison frame; "
                f"its stream cannot resume"
            )
        if record.active_session is not None:
            raise ValueError(
                f"client {client_id} is already driven by "
                f"session {record.active_session}"
            )
        record.active_session = session.session_id
        record.sessions += 1
        session.client = record
        return record

    def close(self, session: Session) -> None:
        if session.closed:
            return
        session.closed = True
        self.closed += 1
        if session.client is not None:
            if session.client.active_session == session.session_id:
                session.client.active_session = None
        self._sessions.pop(session.session_id, None)

    def evict(self, client_id: int) -> None:
        """Mark a client poisoned: its stream may never resume (a fresh
        HELLO for the same id is refused)."""
        record = self._clients.get(client_id)
        if record is not None:
            record.evicted = True

    # -- trace-id stamping -------------------------------------------------

    def stamp(self, session: Session, traces: Sequence[Trace]) -> List[Trace]:
        """Assign deterministic ids to one accepted frame of traces and
        advance the client's cursor."""
        record = session.client
        if record is None:
            raise ValueError("session has no bound client")
        base = record.client_id << SEQ_BITS
        seq = record.next_seq
        stamped = [
            dataclasses.replace(trace, trace_id=base + seq + offset)
            for offset, trace in enumerate(traces)
        ]
        record.next_seq = seq + len(traces)
        record.traces += len(traces)
        return stamped

    # -- introspection -----------------------------------------------------

    @property
    def active(self) -> int:
        return len(self._sessions)

    @property
    def clients(self) -> int:
        return len(self._clients)

    def sessions_snapshot(self) -> List[Dict[str, object]]:
        """Status-endpoint view of the live sessions."""
        return [
            {
                "session": s.session_id,
                "client": s.client_id,
                "frames": s.frames,
                "traces": s.traces,
                "bytes": s.bytes,
            }
            for s in sorted(self._sessions.values(), key=lambda s: s.session_id)
        ]

    def client_record(self, client_id: int) -> Optional[ClientRecord]:
        return self._clients.get(client_id)


__all__ = ["SEQ_BITS", "ClientRecord", "Session", "SessionRegistry"]
