"""Session registry: connection bookkeeping and deterministic trace ids.

A *session* is one ingest connection; a *client* is one logical trace
stream (the ``client_id`` every trace carries).  The two are decoupled so
a client may disconnect mid-stream and reconnect on a fresh session --
its per-client cursor (how many traces it has pushed so far) survives in
the registry and keeps trace-id assignment contiguous.

Trace ids never travel on the wire (the codec assigns process-local ids
on decode, in arrival order -- useless for determinism under concurrent
sessions).  The registry instead stamps every accepted trace with::

    trace_id = (client_id << SEQ_BITS) | per_client_sequence

which sorts lexicographically by ``(client_id, arrival index)`` -- the
exact relative order :func:`repro.core.io.load_client_streams` produces
when an offline ``verify`` loads the same streams from per-client files.
Timestamp ties between clients therefore break identically online and
offline, which is what makes the drained service report byte-identical
to the offline run (see ``docs/service.md``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.trace import Trace

#: Sequence bits per client: 2^40 traces per client before overflow, with
#: room for ~8M clients in the id space above.
SEQ_BITS = 40


@dataclass
class ClientRecord:
    """Per-client state that outlives any one session."""

    client_id: int
    next_seq: int = 0
    traces: int = 0
    sessions: int = 0
    #: session id currently attached to this client (None between
    #: connections); a client may only be driven by one session at a time.
    active_session: Optional[int] = None
    evicted: bool = False


@dataclass
class Session:
    """One ingest connection."""

    session_id: int
    client: Optional[ClientRecord] = None
    frames: int = 0
    traces: int = 0
    bytes: int = 0
    #: ingest-stream offset of the first byte of the frame currently being
    #: processed (error reports point here).
    frame_offset: int = 0
    closed: bool = False
    error: Optional[str] = None

    @property
    def client_id(self) -> Optional[int]:
        return self.client.client_id if self.client is not None else None


class SessionRegistry:
    """Allocates sessions, binds them to clients, stamps trace ids."""

    def __init__(self) -> None:
        self._sessions: Dict[int, Session] = {}
        self._clients: Dict[int, ClientRecord] = {}
        self._next_session = 1
        self.opened = 0
        self.closed = 0

    # -- lifecycle ---------------------------------------------------------

    def open(self) -> Session:
        session = Session(session_id=self._next_session)
        self._next_session += 1
        self._sessions[session.session_id] = session
        self.opened += 1
        return session

    def bind(self, session: Session, client_id: int) -> ClientRecord:
        """Attach a session to its client (the HELLO handshake)."""
        record = self._clients.get(client_id)
        if record is None:
            record = ClientRecord(client_id=client_id)
            self._clients[client_id] = record
        if record.evicted:
            raise ValueError(
                f"client {client_id} was evicted for a poison frame; "
                f"its stream cannot resume"
            )
        if record.active_session is not None:
            raise ValueError(
                f"client {client_id} is already driven by "
                f"session {record.active_session}"
            )
        record.active_session = session.session_id
        record.sessions += 1
        session.client = record
        return record

    def close(self, session: Session) -> None:
        if session.closed:
            return
        session.closed = True
        self.closed += 1
        if session.client is not None:
            if session.client.active_session == session.session_id:
                session.client.active_session = None
        self._sessions.pop(session.session_id, None)

    def evict(self, client_id: int) -> None:
        """Mark a client poisoned: its stream may never resume (a fresh
        HELLO for the same id is refused)."""
        record = self._clients.get(client_id)
        if record is not None:
            record.evicted = True

    # -- trace-id stamping -------------------------------------------------

    def stamp(self, session: Session, traces: Sequence[Trace]) -> List[Trace]:
        """Assign deterministic ids to one accepted frame of traces and
        advance the client's cursor."""
        record = session.client
        if record is None:
            raise ValueError("session has no bound client")
        base = record.client_id << SEQ_BITS
        seq = record.next_seq
        stamped = [
            dataclasses.replace(trace, trace_id=base + seq + offset)
            for offset, trace in enumerate(traces)
        ]
        record.next_seq = seq + len(traces)
        record.traces += len(traces)
        return stamped

    # -- introspection -----------------------------------------------------

    @property
    def active(self) -> int:
        return len(self._sessions)

    @property
    def clients(self) -> int:
        return len(self._clients)

    def sessions_snapshot(self) -> List[Dict[str, object]]:
        """Status-endpoint view of the live sessions."""
        return [
            {
                "session": s.session_id,
                "client": s.client_id,
                "frames": s.frames,
                "traces": s.traces,
                "bytes": s.bytes,
            }
            for s in sorted(self._sessions.values(), key=lambda s: s.session_id)
        ]

    def client_record(self, client_id: int) -> Optional[ClientRecord]:
        return self._clients.get(client_id)


# -- multi-worker client directory --------------------------------------------


@dataclass
class DirectoryEntry:
    """Coordinator-side cursor for one client under the multi-loop
    gateway: the authoritative ``next_seq``/``floor`` that survive
    reconnects across acceptor workers."""

    client_id: int
    next_seq: int = 0
    traces: int = 0
    sessions: int = 0
    #: last stamped timestamp applied (or heartbeat mark) -- the value a
    #: resuming session's worker validates its first frame against.
    floor: float = float("-inf")
    active_session: Optional[int] = None
    active_worker: Optional[int] = None
    #: every worker that has ever driven this client (tests assert a
    #: reconnect really landed elsewhere).
    workers: Set[int] = field(default_factory=set)
    evicted: bool = False
    evict_reason: Optional[str] = None
    #: FIFO of ``(worker, session)`` binds waiting for the active
    #: session to detach.
    pending: List[Tuple[int, int]] = field(default_factory=list)


class ClientDirectory:
    """Cross-worker client bookkeeping for the multi-loop gateway.

    A client may only be driven by one session at a time, but that
    session can live on any acceptor worker.  A ``bind`` for a client
    that is still active is *queued* rather than refused: the reconnect
    race (new connection lands on worker B before worker A's DETACH
    crosses its pipe) would otherwise refuse a perfectly sequential
    resume.  Because each worker's pipe is FIFO, the DETACH arrives
    after every batch its session forwarded -- so when the queued bind
    is granted, the cursor handed out is exact.
    """

    def __init__(self) -> None:
        self._clients: Dict[int, DirectoryEntry] = {}

    def bind(
        self, client_id: int, worker: int, session: int
    ) -> Tuple[str, object]:
        """Returns ``("bound", entry)``, ``("queued", entry)`` or
        ``("refused", reason)``."""
        entry = self._clients.get(client_id)
        if entry is None:
            entry = DirectoryEntry(client_id=client_id)
            self._clients[client_id] = entry
        if entry.evicted:
            return (
                "refused",
                f"client {client_id} was evicted for a poison frame; "
                f"its stream cannot resume",
            )
        if entry.active_session is not None:
            entry.pending.append((worker, session))
            return ("queued", entry)
        self._grant(entry, worker, session)
        return ("bound", entry)

    def _grant(self, entry: DirectoryEntry, worker: int, session: int) -> None:
        entry.active_session = session
        entry.active_worker = worker
        entry.workers.add(worker)
        entry.sessions += 1

    def detach(
        self, client_id: int, session: int
    ) -> Optional[Tuple[int, int, DirectoryEntry]]:
        """Clear the active session; if a bind is queued, grant it and
        return ``(worker, session, entry)`` so the gateway can reply."""
        entry = self._clients.get(client_id)
        if entry is None:
            return None
        if entry.active_session == session:
            entry.active_session = None
            entry.active_worker = None
        if entry.active_session is None and entry.pending and not entry.evicted:
            worker, queued = entry.pending.pop(0)
            self._grant(entry, worker, queued)
            return (worker, queued, entry)
        return None

    def note_traces(self, client_id: int, next_seq: int, floor: float) -> None:
        entry = self._clients.get(client_id)
        if entry is None:
            return
        entry.traces += max(0, next_seq - entry.next_seq)
        entry.next_seq = max(entry.next_seq, next_seq)
        entry.floor = max(entry.floor, floor)

    def note_mark(self, client_id: int, ts: float) -> None:
        entry = self._clients.get(client_id)
        if entry is not None and ts > entry.floor:
            entry.floor = ts

    def evict(self, client_id: int, reason: str) -> List[Tuple[int, int]]:
        """Mark a client poisoned and drain its queued binds; returns
        the ``(worker, session)`` pairs that must be refused."""
        entry = self._clients.get(client_id)
        if entry is None:
            entry = DirectoryEntry(client_id=client_id)
            self._clients[client_id] = entry
        entry.evicted = True
        entry.evict_reason = reason
        refused = entry.pending
        entry.pending = []
        return refused

    def fail_all_pending(self) -> List[Tuple[int, int, int]]:
        """Drain every queued bind (drain-time refusal); returns
        ``(worker, session, client_id)`` triples."""
        failed: List[Tuple[int, int, int]] = []
        for entry in self._clients.values():
            for worker, session in entry.pending:
                failed.append((worker, session, entry.client_id))
            entry.pending = []
        return failed

    @property
    def clients(self) -> int:
        return len(self._clients)

    def client_record(self, client_id: int) -> Optional[DirectoryEntry]:
        return self._clients.get(client_id)

    def records(self) -> List[DirectoryEntry]:
        return sorted(self._clients.values(), key=lambda e: e.client_id)


__all__ = [
    "SEQ_BITS",
    "ClientDirectory",
    "ClientRecord",
    "DirectoryEntry",
    "Session",
    "SessionRegistry",
]
