"""Multi-loop ingest tier: N acceptor workers in front of one verifier loop.

``MultiLoopGateway`` splits the service into a **stamp-and-forward**
topology (``docs/service.md`` has the operator view)::

    clients ──► coordinator accept loop ──(fd passing, round robin)──►
        acceptor worker 0..N-1  (own asyncio loop + process each)
            frame parsing · codec decode · credit · budget gate ·
            deterministic ``client_id << SEQ_BITS | seq`` stamping
        ──(chunked ``send_bytes`` pipes)──►
    verifier loop (this process)
        ``OnlineVerifier.feed_validated`` k-way merge ──► backend

The coordinator owns the listening socket and *accepts* every
connection, then hands the accepted fd to a worker over the worker's
control pipe (``multiprocessing.reduction.send_handle``).  Round-robin
assignment by accept order keeps the worker that serves a given
connection deterministic, which the cross-worker tests rely on.

Ordering is the whole point: a worker forwards each accepted ``TRACES``
frame as the *original batch payload bytes* plus the client's base
sequence number, and the verifier loop decodes it with
``decode_batch(body, first_trace_id=client_id << SEQ_BITS | base_seq)``
-- exactly the ids the single-loop registry would have stamped.  The
online merge then dispatches in global ``(ts_bef, trace_id)`` order no
matter how worker pipes interleave, so the drain report is
byte-identical to a single-loop run and to offline verification.

Per-byte work never touches the verifier loop; what crosses the pipe is
pre-validated, so the hot path is ``feed_validated`` (O(1) endpoint
checks) plus the dispatch merge.  Status documents are rendered from a
snapshot cache refreshed off the dispatch path (staleness bounded by
``ServiceConfig.status_refresh``; ``status.cache.*`` metrics), and the
service-wide pending budget lives in shared memory
(:class:`SharedServiceState`) that the workers' budget gates read
predictively -- granted credit still cannot be recalled, so the gate
trips ``inflight_capacity`` below the budget exactly like the
single-loop gate.

Client sessions keep single-loop semantics across workers: a client's
cursor lives in the coordinator's :class:`~repro.service.sessions.
ClientDirectory`, a reconnect may land on any worker (``BIND`` waits
until the previous session's ``DETACH`` arrives -- pipe FIFO guarantees
the cursor is current when the grant is issued), and a poison frame
evicts only its own client, on whichever worker it struck.
"""

from __future__ import annotations

import asyncio
import ctypes
import json
import multiprocessing
import pickle
import queue
import socket
import threading
import time
from multiprocessing import connection as _mp_connection
from multiprocessing import reduction as _mp_reduction
from typing import Dict, List, Optional, Set, Tuple, Union

from ..core.codec import CodecError, PayloadDecoder, PayloadEncoder, decode_batch
from ..core.metrics import NULL_REGISTRY
from ..core.online import OnlineVerifier
from ..core.parallel import _make_context
from ..core.report import VerificationReport, report_fingerprint
from . import protocol, status
from .protocol import ServiceProtocolError
from .sessions import SEQ_BITS, ClientDirectory

# -- worker -> coordinator forward frames -------------------------------------
# Tag byte first, then codec-primitive fields.  The pipes are private to
# one gateway instance, so unlike the wire protocol these tags may be
# renumbered freely.
W_BIND = 0x01      # varint(session) varint(client)
W_TRACES = 0x02    # varint(client) varint(base_seq) varint(count)
                   # varint(frame_offset) raw(batch payload)
W_MARK = 0x03      # varint(client) double(ts) u8(is_bye)
W_DETACH = 0x04    # varint(client) varint(session)
W_ERROR = 0x05     # varint(session) varint(offset) string(reason)
                   # u8(has_client) varint(client)
W_STATS = 0x06     # raw(pickled stats dict)
W_EOF = 0x07       # raw(pickled final stats dict)

# -- coordinator -> worker control frames -------------------------------------
C_CONN = 0x81      # varint(session); the accepted socket fd follows via
                   # send_handle on the same pipe
C_BIND_OK = 0x82   # varint(session) varint(client) varint(next_seq)
                   # double(floor)
C_BIND_ERR = 0x83  # varint(session) varint(client) string(reason)
C_EVICTED = 0x84   # varint(client) string(reason)
C_DRAIN = 0x85     # empty


def _frame(tag: int) -> PayloadEncoder:
    enc = PayloadEncoder()
    enc.u8(tag)
    return enc


class SharedServiceState:
    """Lock-free shared counters between the verifier loop and the
    acceptor workers.

    Every slot has exactly one writer (the coordinator or one worker);
    readers tolerate bounded staleness, so no locks are needed -- the
    budget gate is predictive by design and a stale read only moves the
    trip point by one poll interval.
    """

    def __init__(self, workers: int):
        self.workers = workers
        n = workers
        # int64 slots: [0] pending events (coordinator); [1] draining
        # flag (coordinator); then four per-worker vectors --
        # traces forwarded (worker i), traces applied (coordinator),
        # active sessions (worker i), largest TRACES frame (worker i).
        self._ints = multiprocessing.RawArray(ctypes.c_int64, 2 + 4 * n)
        # double slots: [0] dispatch watermark (coordinator).
        self._doubles = multiprocessing.RawArray(ctypes.c_double, 1)
        self._doubles[0] = float("-inf")

    # coordinator-written slots
    def set_pending(self, value: int) -> None:
        self._ints[0] = value

    def pending(self) -> int:
        return self._ints[0]

    def set_draining(self) -> None:
        self._ints[1] = 1

    def draining(self) -> bool:
        return bool(self._ints[1])

    def note_applied(self, worker: int, count: int) -> None:
        self._ints[2 + self.workers + worker] += count

    def set_watermark(self, ts: float) -> None:
        self._doubles[0] = ts

    def watermark(self) -> float:
        return self._doubles[0]

    # worker-written slots
    def note_sent(self, worker: int, count: int) -> None:
        self._ints[2 + worker] += count

    def set_active(self, worker: int, sessions: int) -> None:
        self._ints[2 + 2 * self.workers + worker] = sessions

    def note_frame_traces(self, worker: int, count: int) -> None:
        slot = 2 + 3 * self.workers + worker
        if count > self._ints[slot]:
            self._ints[slot] = count

    # fleet-wide reads
    def in_pipe(self) -> int:
        """Traces forwarded by the workers but not yet applied by the
        verifier loop -- the budget must count them or the pipes become
        an unbounded buffer."""
        n = self.workers
        sent = sum(self._ints[2 : 2 + n])
        applied = sum(self._ints[2 + n : 2 + 2 * n])
        return max(0, sent - applied)

    def active_sessions(self) -> int:
        n = self.workers
        return sum(self._ints[2 + 2 * n : 2 + 3 * n])

    def frame_traces_max(self) -> int:
        n = self.workers
        return max(self._ints[2 + 3 * n : 2 + 4 * n], default=0)

    def worker_sent(self, worker: int) -> int:
        return self._ints[2 + worker]


async def _open_stream(loop, sock: socket.socket):
    """Wrap an accepted socket in asyncio streams (the worker side of
    fd passing; ``start_server`` does this internally for its own
    accepts)."""
    reader = asyncio.StreamReader(loop=loop)
    reader_protocol = asyncio.StreamReaderProtocol(reader, loop=loop)
    transport, _ = await loop.connect_accepted_socket(
        lambda: reader_protocol, sock
    )
    writer = asyncio.StreamWriter(transport, reader_protocol, reader, loop)
    return reader, writer


# =============================================================================
# Acceptor worker (child process)
# =============================================================================


class _WorkerClient:
    """Worker-local slice of a client's cursor, seeded from BIND_OK."""

    __slots__ = ("client_id", "next_seq", "floor", "evicted", "active_session")

    def __init__(self, client_id: int, next_seq: int, floor: float):
        self.client_id = client_id
        self.next_seq = next_seq
        self.floor = floor
        self.evicted = False
        self.active_session: Optional[int] = None


class _AcceptorWorker:
    """One acceptor process: an asyncio loop over the sessions the
    coordinator hands it, forwarding validated stamped batches."""

    def __init__(self, worker_id: int, conn, shared: SharedServiceState, options):
        self.worker_id = worker_id
        self.conn = conn
        self.shared = shared
        self.credit = options["session_credit"]
        self.budget = options["pending_budget"]
        self.stats_interval = options["stats_interval"]
        self.draining = False
        self.clients: Dict[int, _WorkerClient] = {}
        self.sessions: Dict[int, Dict[str, object]] = {}
        self._session_tasks: Dict[int, asyncio.Task] = {}
        self._bind_waiters: Dict[int, asyncio.Future] = {}
        self._session_kick: Dict[int, str] = {}
        self._out: "queue.SimpleQueue" = queue.SimpleQueue()
        self._counters = {
            "sessions_opened": 0,
            "sessions_closed": 0,
            "frames": 0,
            "traces": 0,
            "bytes": 0,
            "heartbeats": 0,
            "credits": 0,
            "stalls": 0,
            "errors": 0,
        }
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_event: Optional[asyncio.Event] = None

    # -- pipe plumbing -----------------------------------------------------

    def _send(self, enc: PayloadEncoder) -> None:
        self._out.put(enc.finish())

    def _writer_main(self) -> None:
        while True:
            item = self._out.get()
            if item is None:
                return
            try:
                self.conn.send_bytes(item)
            except (BrokenPipeError, OSError):
                return

    def _reader_main(self, loop, rx: asyncio.Queue) -> None:
        while True:
            try:
                payload = self.conn.recv_bytes()
            except (EOFError, OSError):
                break
            fd = None
            if PayloadDecoder(payload).u8() == C_CONN:
                # The accepted socket rides the same pipe, immediately
                # after its announcement frame.
                try:
                    fd = _mp_reduction.recv_handle(self.conn)
                except (EOFError, OSError):
                    break
            try:
                loop.call_soon_threadsafe(rx.put_nowait, (payload, fd))
            except RuntimeError:
                break
        try:
            loop.call_soon_threadsafe(rx.put_nowait, None)
        except RuntimeError:
            pass

    # -- main --------------------------------------------------------------

    async def run(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._drain_event = asyncio.Event()
        rx: asyncio.Queue = asyncio.Queue()
        writer = threading.Thread(
            target=self._writer_main, name=f"acceptor-{self.worker_id}-tx", daemon=True
        )
        writer.start()
        reader = threading.Thread(
            target=self._reader_main,
            args=(self._loop, rx),
            name=f"acceptor-{self.worker_id}-rx",
            daemon=True,
        )
        reader.start()
        pipe_task = self._loop.create_task(self._pipe_loop(rx))
        stats_task = self._loop.create_task(self._stats_loop())
        await self._drain_event.wait()
        self.draining = True
        while self._session_tasks:
            await asyncio.wait(list(self._session_tasks.values()))
        stats_task.cancel()
        enc = _frame(W_EOF)
        enc.raw(pickle.dumps(self._stats(), protocol=pickle.HIGHEST_PROTOCOL))
        self._send(enc)
        self._out.put(None)
        writer.join()
        pipe_task.cancel()

    async def _pipe_loop(self, rx: asyncio.Queue) -> None:
        while True:
            item = await rx.get()
            if item is None:
                self._drain_event.set()
                return
            payload, fd = item
            dec = PayloadDecoder(payload)
            tag = dec.u8()
            if tag == C_CONN:
                session_id = dec.varint()
                sock = socket.socket(fileno=fd)
                task = self._loop.create_task(self._handle_conn(session_id, sock))
                self._session_tasks[session_id] = task
            elif tag == C_BIND_OK:
                session_id = dec.varint()
                client_id = dec.varint()
                next_seq = dec.varint()
                floor = dec.double()
                waiter = self._bind_waiters.pop(session_id, None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(("ok", client_id, next_seq, floor))
            elif tag == C_BIND_ERR:
                session_id = dec.varint()
                client_id = dec.varint()
                reason = dec.string()
                waiter = self._bind_waiters.pop(session_id, None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(("err", client_id, 0, reason))
            elif tag == C_EVICTED:
                client_id = dec.varint()
                reason = dec.string()
                self._evict_local(client_id, reason)
            elif tag == C_DRAIN:
                self._drain_event.set()

    def _evict_local(self, client_id: int, reason: str) -> None:
        """The verifier loop rejected this client's batch (late join past
        the dispatched watermark): kill its live session, refuse resume."""
        record = self.clients.get(client_id)
        if record is None:
            record = self.clients[client_id] = _WorkerClient(
                client_id, 0, float("-inf")
            )
        record.evicted = True
        session_id = record.active_session
        task = self._session_tasks.get(session_id) if session_id is not None else None
        if task is not None and not task.done():
            self._session_kick[session_id] = reason
            task.cancel()

    async def _stats_loop(self) -> None:
        while True:
            await asyncio.sleep(self.stats_interval)
            enc = _frame(W_STATS)
            enc.raw(pickle.dumps(self._stats(), protocol=pickle.HIGHEST_PROTOCOL))
            self._send(enc)

    def _stats(self) -> Dict[str, object]:
        doc = dict(self._counters)
        doc["worker"] = self.worker_id
        doc["sessions_active"] = len(self.sessions)
        doc["sessions"] = [
            {
                "session": sid,
                "client": st.get("client"),
                "frames": st["frames"],
                "traces": st["traces"],
                "bytes": st["bytes"],
            }
            for sid, st in sorted(self.sessions.items())
        ]
        return doc

    # -- sessions ----------------------------------------------------------

    async def _handle_conn(self, session_id: int, sock: socket.socket) -> None:
        reader, writer = await _open_stream(self._loop, sock)
        st: Dict[str, object] = {
            "client": None,
            "frames": 0,
            "traces": 0,
            "bytes": 0,
            "frame_offset": 0,
            "bound": False,
        }
        self.sessions[session_id] = st
        self._counters["sessions_opened"] += 1
        self.shared.set_active(self.worker_id, len(self.sessions))
        try:
            if self.draining or self.shared.draining():
                raise ServiceProtocolError(
                    "service is draining", session_id=session_id
                )
            await self._session_loop(session_id, st, reader, writer)
        except (ServiceProtocolError, CodecError, ValueError) as exc:
            await self._poison(session_id, st, writer, exc)
        except asyncio.CancelledError:
            reason = self._session_kick.pop(session_id, None)
            if reason is None:
                raise
            # Coordinator-side eviction: the error entry already exists
            # there; just tell the client and fall through to close.
            self._counters["errors"] += 1
            try:
                writer.write(
                    protocol.error_frame(session_id, st["frame_offset"], reason)
                )
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        except (asyncio.IncompleteReadError, ConnectionError):
            # Abrupt transport loss mid-frame: the client may reconnect
            # (on any worker) and resume from its cursor.
            pass
        finally:
            if st["bound"]:
                enc = _frame(W_DETACH)
                enc.varint(st["client"])
                enc.varint(session_id)
                self._send(enc)
                record = self.clients.get(st["client"])
                if record is not None and record.active_session == session_id:
                    record.active_session = None
            self.sessions.pop(session_id, None)
            self._session_tasks.pop(session_id, None)
            self._bind_waiters.pop(session_id, None)
            self._counters["sessions_closed"] += 1
            self.shared.set_active(self.worker_id, len(self.sessions))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _bind(self, session_id: int, client_id: int) -> Tuple[int, float]:
        """Ask the coordinator's client directory for this client's
        cursor.  The reply may be deferred: if another session (on any
        worker) still drives the client, the grant waits for its DETACH
        -- pipe FIFO then guarantees every previously forwarded batch is
        already applied, so the cursor we receive is current."""
        record = self.clients.get(client_id)
        if record is not None and record.evicted:
            raise ServiceProtocolError(
                f"client {client_id} was evicted for a poison frame; "
                f"its stream cannot resume",
                session_id=session_id,
            )
        waiter: asyncio.Future = self._loop.create_future()
        self._bind_waiters[session_id] = waiter
        enc = _frame(W_BIND)
        enc.varint(session_id)
        enc.varint(client_id)
        self._send(enc)
        verdict, _, next_seq, floor_or_reason = await waiter
        if verdict != "ok":
            raise ServiceProtocolError(
                str(floor_or_reason), session_id=session_id
            )
        return next_seq, floor_or_reason

    async def _session_loop(self, session_id, st, reader, writer) -> None:
        await protocol.read_magic(reader)
        offset = len(protocol.SERVICE_MAGIC)

        st["frame_offset"] = offset
        payload = await protocol.read_frame(reader)
        if payload is None:
            return
        offset += protocol.PREFIX_SIZE + len(payload)
        tag, body = protocol.split_frame(payload)
        if tag != protocol.F_HELLO:
            raise ServiceProtocolError(
                f"first frame must be HELLO, got "
                f"{protocol.TAG_NAMES.get(tag, hex(tag))}",
                session_id=session_id,
                byte_offset=st["frame_offset"],
            )
        client_id = protocol.parse_control(tag, body)["client_id"]
        st["client"] = client_id
        next_seq, floor = await self._bind(session_id, client_id)
        record = self.clients.get(client_id)
        if record is None:
            record = self.clients[client_id] = _WorkerClient(
                client_id, next_seq, floor
            )
        else:
            record.next_seq = next_seq
            record.floor = max(record.floor, floor)
        record.active_session = session_id
        st["bound"] = True
        writer.write(protocol.welcome_frame(session_id, self.credit))
        await writer.drain()

        while True:
            st["frame_offset"] = offset
            payload = await protocol.read_frame(reader)
            if payload is None:
                return
            size = protocol.PREFIX_SIZE + len(payload)
            offset += size
            st["frames"] += 1
            st["bytes"] += size
            self._counters["frames"] += 1
            self._counters["bytes"] += size
            tag, body = protocol.split_frame(payload)

            if tag == protocol.F_TRACES:
                count = self._forward_traces(session_id, st, record, body)
                st["traces"] += count
                self._counters["traces"] += count
                await self._budget_gate(record, writer)
                writer.write(protocol.credit_frame(1))
                self._counters["credits"] += 1
                await writer.drain()
            elif tag == protocol.F_HEARTBEAT:
                now = protocol.parse_control(tag, body)["now"]
                self._counters["heartbeats"] += 1
                record.floor = max(record.floor, now)
                enc = _frame(W_MARK)
                enc.varint(client_id)
                enc.double(now)
                enc.u8(0)
                self._send(enc)
            elif tag == protocol.F_BYE:
                enc = _frame(W_MARK)
                enc.varint(client_id)
                enc.double(float("inf"))
                enc.u8(1)
                self._send(enc)
                writer.write(protocol.bye_ack_frame(st["traces"]))
                await writer.drain()
                return
            else:
                raise ServiceProtocolError(
                    f"unexpected frame "
                    f"{protocol.TAG_NAMES.get(tag, hex(tag))} on the "
                    f"ingest stream",
                    session_id=session_id,
                    byte_offset=st["frame_offset"],
                )

    def _forward_traces(
        self, session_id, st, record: _WorkerClient, body: bytes
    ) -> int:
        """Decode-validate one TRACES frame locally, advance the cursor,
        and forward the *original payload bytes* plus the base sequence
        -- the verifier loop re-decodes with the deterministic first
        trace id and never sees an invalid run."""
        traces = decode_batch(body)
        floor = record.floor
        last = floor
        for trace in traces:
            if trace.client_id != record.client_id:
                raise ValueError(
                    f"trace from client {trace.client_id} pushed on "
                    f"client {record.client_id}'s stream"
                )
            ts = trace.ts_bef
            if ts < floor:
                raise ValueError(
                    f"client {record.client_id} pushed trace at {ts} "
                    f"behind its progress mark {floor}"
                )
            if ts < last:
                raise ValueError(
                    f"client {record.client_id} stream is not monotone"
                )
            last = ts
        count = len(traces)
        if count == 0:
            return 0
        enc = _frame(W_TRACES)
        enc.varint(record.client_id)
        enc.varint(record.next_seq)
        enc.varint(count)
        enc.varint(st["frame_offset"])
        enc.raw(body)
        self._send(enc)
        record.next_seq += count
        record.floor = last
        self.shared.note_sent(self.worker_id, count)
        self.shared.note_frame_traces(self.worker_id, count)
        return count

    def _over_budget(self) -> bool:
        shared = self.shared
        inflight = (
            shared.active_sessions() * self.credit * shared.frame_traces_max()
        )
        return shared.pending() + shared.in_pipe() + inflight > self.budget

    async def _budget_gate(self, record: _WorkerClient, writer) -> None:
        """The single-loop gate, driven by the shared predictive
        counters: hold credit while the fleet is over budget unless this
        client is the laggard holding the watermark back."""
        if not self._over_budget():
            return
        if record.floor <= self.shared.watermark():
            return
        self._counters["stalls"] += 1
        writer.write(protocol.pause_frame())
        await writer.drain()
        while not self.draining and not self.shared.draining():
            if not self._over_budget():
                break
            if record.floor <= self.shared.watermark():
                break
            await asyncio.sleep(0.05)
        writer.write(protocol.resume_frame())
        await writer.drain()

    async def _poison(self, session_id, st, writer, exc: Exception) -> None:
        """Worker-side poison handling: evict locally, report the error
        (and the eviction) upstream, tell the client where it went bad."""
        if isinstance(exc, ServiceProtocolError) and exc.session_id is not None:
            err = exc
        else:
            reason = exc.reason if isinstance(exc, ServiceProtocolError) else str(exc)
            err = ServiceProtocolError(
                reason,
                session_id=session_id,
                byte_offset=st["frame_offset"],
            )
        self._counters["errors"] += 1
        client_id = st.get("client") if st["bound"] else None
        if client_id is not None:
            record = self.clients.get(client_id)
            if record is not None:
                record.evicted = True
        enc = _frame(W_ERROR)
        enc.varint(session_id)
        enc.varint(err.byte_offset or 0)
        enc.string(err.reason)
        enc.u8(1 if client_id is not None else 0)
        enc.varint(client_id or 0)
        self._send(enc)
        try:
            writer.write(
                protocol.error_frame(
                    err.session_id or 0, err.byte_offset or 0, err.reason
                )
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass


def _acceptor_worker_main(worker_id, conn, shared, options) -> None:
    """Child-process entry point (fork context; see ``_make_context``)."""
    try:
        asyncio.run(_AcceptorWorker(worker_id, conn, shared, options).run())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


# =============================================================================
# Coordinator (verifier-loop process)
# =============================================================================


class _FleetSessions:
    """Registry facade so ``status.status_document`` renders the same
    schema over the worker fleet's aggregated session state."""

    def __init__(self, gateway: "MultiLoopGateway"):
        self._gateway = gateway

    @property
    def active(self) -> int:
        return sum(
            stats.get("sessions_active", 0)
            for stats in self._gateway.worker_stats.values()
        )

    @property
    def opened(self) -> int:
        return self._gateway.sessions_opened

    @property
    def clients(self) -> int:
        return self._gateway.directory.clients

    def sessions_snapshot(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for stats in self._gateway.worker_stats.values():
            rows.extend(stats.get("sessions", []))
        rows.sort(key=lambda row: row["session"])
        return rows


class MultiLoopGateway:
    """The sharded ingest tier: coordinator accept loop + verifier loop
    in this process, ``acceptor_workers`` stamp-and-forward processes.

    Drop-in for :class:`~repro.service.gateway.IngestGateway` (same
    lifecycle, endpoints, status schema, drain contract); construct via
    :func:`~repro.service.gateway.create_gateway`.
    """

    #: Stats deltas absorbed into the same service.* counters the
    #: single-loop gateway maintains inline.
    _ABSORBED = (
        ("frames", "service.frames"),
        ("bytes", "service.bytes"),
        ("credits", "service.credit.granted"),
        ("stalls", "service.budget.stalls"),
        ("sessions_opened", "service.sessions.opened"),
        ("sessions_closed", "service.sessions.closed"),
    )

    def __init__(self, config):
        if config.acceptor_workers < 2:
            raise ValueError(
                "MultiLoopGateway needs acceptor_workers >= 2; "
                "use IngestGateway (the reference single-loop path) for 1"
            )
        self.config = config
        self.metrics = config.metrics if config.metrics is not None else NULL_REGISTRY
        from .gateway import build_backend

        self._backend = build_backend(config)
        self.online = OnlineVerifier(verifier=self._backend)
        self.directory = ClientDirectory()
        self.shared = SharedServiceState(config.acceptor_workers)

        self.sessions_opened = 0
        self.traces_total = 0
        self.heartbeats_total = 0
        self.errors_total = 0
        self.evictions_total = 0
        self.pending_peak = 0
        self.max_ts_seen: Optional[float] = None
        self.errors: List[Dict[str, object]] = []
        #: freshest periodic stats per worker (final at drain).
        self.worker_stats: Dict[int, Dict[str, object]] = {}
        self._absorbed: Dict[int, Dict[str, int]] = {}
        self.registry = _FleetSessions(self)

        self._m_opened = self.metrics.counter("service.sessions.opened")
        self._m_active = self.metrics.gauge("service.sessions.active")
        self._m_traces = self.metrics.counter("service.traces")
        self._m_heartbeats = self.metrics.counter("service.heartbeats")
        self._m_errors = self.metrics.counter("service.errors")
        self._m_evictions = self.metrics.counter("service.evictions")
        self._m_pending = self.metrics.gauge("service.pending")
        self._m_pending_peak = self.metrics.gauge("service.pending.peak")
        self._m_lag = self.metrics.gauge("service.watermark.lag")
        self._m_cache_hits = self.metrics.counter("status.cache.hits")
        self._m_cache_misses = self.metrics.counter("status.cache.misses")
        self._m_cache_age = self.metrics.gauge("status.cache.age.seconds")

        self._procs: List[multiprocessing.Process] = []
        self._conns: List = []
        self._listen_sock: Optional[socket.socket] = None
        self._status_server: Optional[asyncio.base_events.Server] = None
        self._status_tasks: Set[asyncio.Task] = set()
        self._accept_task: Optional[asyncio.Task] = None
        self._apply_task: Optional[asyncio.Task] = None
        self._drainer: Optional[threading.Thread] = None
        self._rx: Optional[asyncio.Queue] = None
        self._next_session = 1
        self._eofs = 0
        self._workers_done: Optional[asyncio.Event] = None
        self._drain_lock: Optional[asyncio.Lock] = None
        self._draining = False
        self._final_report: Optional[VerificationReport] = None
        self._fingerprint: Optional[str] = None
        self.drained = asyncio.Event()

        self._status_cache: Optional[Dict[str, object]] = None
        self._status_cache_at = 0.0
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._drain_lock = asyncio.Lock()
        self._workers_done = asyncio.Event()
        self._rx = asyncio.Queue()
        cfg = self.config
        options = {
            "session_credit": cfg.session_credit,
            "pending_budget": cfg.pending_budget,
            "stats_interval": cfg.stats_interval,
        }
        # Fork the workers before binding any listener so no socket fd
        # leaks into the children; each worker owns only its pipe.
        ctx = _make_context()
        for worker_id in range(cfg.acceptor_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_acceptor_worker_main,
                args=(worker_id, child_conn, self.shared, options),
                daemon=True,
                name=f"repro-acceptor-{worker_id}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

        if cfg.ingest_unix:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(cfg.ingest_unix)
            sock.listen(cfg.listen_backlog)
        else:
            sock = socket.create_server(
                (cfg.host, cfg.port), backlog=cfg.listen_backlog
            )
        sock.setblocking(False)
        self._listen_sock = sock

        if cfg.status_unix:
            self._status_server = await asyncio.start_unix_server(
                self._handle_status,
                path=cfg.status_unix,
                backlog=cfg.listen_backlog,
            )
        else:
            self._status_server = await asyncio.start_server(
                self._handle_status,
                cfg.host,
                cfg.status_port,
                backlog=cfg.listen_backlog,
            )

        # Threads must start after every fork (they do not survive one).
        self._drainer = threading.Thread(
            target=self._drain_main,
            args=(list(self._conns), self._loop, self._rx),
            name="service-forward-drainer",
            daemon=True,
        )
        self._drainer.start()
        self._apply_task = self._loop.create_task(self._apply_loop())
        self._accept_task = self._loop.create_task(self._accept_loop())

    @staticmethod
    def _drain_main(conns: List, loop, rx: "asyncio.Queue") -> None:
        """Forward every worker frame into the verifier loop's queue,
        tagged with its worker id (pipe order per worker is preserved --
        the cursor-handoff protocol depends on that FIFO)."""
        live = {conn: idx for idx, conn in enumerate(conns)}
        while live:
            for conn in _mp_connection.wait(list(live)):
                try:
                    payload = conn.recv_bytes()
                except (EOFError, OSError):
                    del live[conn]
                    continue
                try:
                    loop.call_soon_threadsafe(rx.put_nowait, (live[conn], payload))
                except RuntimeError:
                    return
        try:
            loop.call_soon_threadsafe(rx.put_nowait, None)
        except RuntimeError:
            pass

    @property
    def ingest_endpoint(self) -> Union[str, Tuple[str, int]]:
        if self.config.ingest_unix:
            return self.config.ingest_unix
        return self._listen_sock.getsockname()[:2]

    @property
    def status_endpoint(self) -> Union[str, Tuple[str, int]]:
        if self.config.status_unix:
            return self.config.status_unix
        return self._status_server.sockets[0].getsockname()[:2]

    async def drain(self) -> VerificationReport:
        """Graceful shutdown, fleet edition: stop accepting, tell every
        worker to finish its sessions, apply everything still in the
        pipes (each worker's EOF frame follows all its data frames), then
        finish the verifier and publish the final report."""
        async with self._drain_lock:
            if self._final_report is not None:
                return self._final_report
            self._draining = True
            self.shared.set_draining()
            if self._accept_task is not None:
                self._accept_task.cancel()
                try:
                    await self._accept_task
                except (asyncio.CancelledError, OSError):
                    pass
            if self._listen_sock is not None:
                self._listen_sock.close()
            for worker_id, session_id, client_id in self.directory.fail_all_pending():
                self._send_to(
                    worker_id,
                    self._bind_err_frame(
                        session_id, client_id, "service is draining"
                    ),
                )
            drain_frame = _frame(C_DRAIN).finish()
            for conn in self._conns:
                try:
                    conn.send_bytes(drain_frame)
                except (BrokenPipeError, OSError):
                    pass
            await self._workers_done.wait()
            for proc in self._procs:
                proc.join(timeout=10)
            report = self.online.finish()
            self._final_report = report
            self._fingerprint = report_fingerprint(report)
            self._status_cache = None
            self.drained.set()
            return report

    async def aclose(self) -> None:
        if self._status_server is not None:
            self._status_server.close()
            await self._status_server.wait_closed()
        if self._listen_sock is not None:
            self._listen_sock.close()
        for task in (self._accept_task, self._apply_task, *self._status_tasks):
            if task is not None and task is not asyncio.current_task():
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, OSError):
                    pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

    # -- accept loop -------------------------------------------------------

    async def _accept_loop(self) -> None:
        """Accept every connection here, hand the fd to a worker round
        robin by accept order -- deterministic assignment, one public
        endpoint, no thundering herd."""
        workers = self.config.acceptor_workers
        while True:
            try:
                client_sock, _ = await self._loop.sock_accept(self._listen_sock)
            except asyncio.CancelledError:
                raise
            except OSError:
                if self._draining:
                    return
                raise
            session_id = self._next_session
            self._next_session += 1
            worker_id = (session_id - 1) % workers
            self.sessions_opened += 1
            self._m_opened.inc()
            conn = self._conns[worker_id]
            enc = _frame(C_CONN)
            enc.varint(session_id)
            try:
                # send_bytes + send_handle back to back with no await in
                # between: nothing else can interleave on this pipe.
                conn.send_bytes(enc.finish())
                _mp_reduction.send_handle(
                    conn, client_sock.fileno(), self._procs[worker_id].pid
                )
            except (BrokenPipeError, OSError):
                pass
            client_sock.close()

    # -- forwarded-frame apply loop ----------------------------------------

    async def _apply_loop(self) -> None:
        while True:
            item = await self._rx.get()
            if item is None:
                self._workers_done.set()
                return
            worker_id, payload = item
            dec = PayloadDecoder(payload)
            tag = dec.u8()
            if tag == W_TRACES:
                self._apply_traces(worker_id, dec)
            elif tag == W_MARK:
                client_id = dec.varint()
                ts = dec.double()
                is_bye = dec.u8()
                if not is_bye:
                    self.heartbeats_total += 1
                    self._m_heartbeats.inc()
                self.online.heartbeat(client_id, ts)
                self.directory.note_mark(client_id, ts)
                self._note_pending()
            elif tag == W_BIND:
                session_id = dec.varint()
                client_id = dec.varint()
                self._apply_bind(worker_id, session_id, client_id)
            elif tag == W_DETACH:
                client_id = dec.varint()
                session_id = dec.varint()
                granted = self.directory.detach(client_id, session_id)
                if granted is not None:
                    self._grant_bind(*granted)
            elif tag == W_ERROR:
                self._apply_error(worker_id, dec)
            elif tag in (W_STATS, W_EOF):
                stats = pickle.loads(dec.raw())
                self._absorb_stats(worker_id, stats)
                if tag == W_EOF:
                    self._eofs += 1
                    if self._eofs == self.config.acceptor_workers:
                        self._workers_done.set()

    def _apply_traces(self, worker_id: int, dec: PayloadDecoder) -> None:
        client_id = dec.varint()
        base_seq = dec.varint()
        count = dec.varint()
        frame_offset = dec.varint()
        body = dec.raw()
        first_id = (client_id << SEQ_BITS) + base_seq
        try:
            traces = decode_batch(body, first_trace_id=first_id)
            self.online.feed_validated(client_id, traces)
        except (CodecError, ValueError) as exc:
            # Only the late-join race can land here (workers validate
            # everything else); evict exactly like the single loop would.
            self._evict(worker_id, client_id, frame_offset, str(exc))
        else:
            self.directory.note_traces(
                client_id, base_seq + count, traces[-1].ts_bef
            )
            self.traces_total += count
            self._m_traces.inc(count)
            newest = traces[-1].ts_bef
            if self.max_ts_seen is None or newest > self.max_ts_seen:
                self.max_ts_seen = newest
        self.shared.note_applied(worker_id, count)
        self._note_pending()

    def _apply_bind(self, worker_id: int, session_id: int, client_id: int) -> None:
        verdict, payload = self.directory.bind(client_id, worker_id, session_id)
        if verdict == "bound":
            self._grant_bind(worker_id, session_id, payload)
        elif verdict == "refused":
            self._send_to(
                worker_id, self._bind_err_frame(session_id, client_id, payload)
            )
        # "queued": the grant is issued when the driving session detaches.

    def _grant_bind(self, worker_id: int, session_id: int, entry) -> None:
        self.online.register_client(entry.client_id)
        enc = _frame(C_BIND_OK)
        enc.varint(session_id)
        enc.varint(entry.client_id)
        enc.varint(entry.next_seq)
        enc.double(entry.floor)
        self._send_to(worker_id, enc.finish())

    def _bind_err_frame(self, session_id: int, client_id: int, reason: str) -> bytes:
        enc = _frame(C_BIND_ERR)
        enc.varint(session_id)
        enc.varint(client_id)
        enc.string(reason)
        return enc.finish()

    def _apply_error(self, worker_id: int, dec: PayloadDecoder) -> None:
        session_id = dec.varint()
        byte_offset = dec.varint()
        reason = dec.string()
        has_client = dec.u8()
        client_id = dec.varint()
        self._record_error(
            session_id, client_id if has_client else None, byte_offset, reason
        )
        if has_client:
            self._evict_client_state(client_id, reason)

    def _evict(
        self, worker_id: int, client_id: int, byte_offset: int, reason: str
    ) -> None:
        """Verifier-loop-detected poison (late join): record it, evict,
        and kick the owning worker so it kills the live session."""
        entry = self.directory.client_record(client_id)
        session_id = entry.active_session if entry is not None else None
        self._record_error(session_id, client_id, byte_offset, reason)
        self._evict_client_state(client_id, reason)
        owner = entry.active_worker if entry is not None else None
        if owner is not None:
            enc = _frame(C_EVICTED)
            enc.varint(client_id)
            enc.string(reason)
            self._send_to(owner, enc.finish())

    def _record_error(
        self,
        session_id: Optional[int],
        client_id: Optional[int],
        byte_offset: int,
        reason: str,
    ) -> None:
        self.errors_total += 1
        self._m_errors.inc()
        self.errors.append(
            {
                "session": session_id,
                "client": client_id,
                "byte_offset": byte_offset,
                "error": reason,
            }
        )
        del self.errors[:-100]

    def _evict_client_state(self, client_id: int, reason: str) -> None:
        refused = self.directory.evict(client_id, reason)
        self.online.evict_client(client_id)
        self.evictions_total += 1
        self._m_evictions.inc()
        for worker_id, session_id in refused:
            self._send_to(
                worker_id, self._bind_err_frame(session_id, client_id, reason)
            )
        self._note_pending()

    def _absorb_stats(self, worker_id: int, stats: Dict[str, object]) -> None:
        self.worker_stats[worker_id] = stats
        if self.metrics.enabled:
            prev = self._absorbed.setdefault(worker_id, {})
            for key, metric in self._ABSORBED:
                value = int(stats.get(key, 0))
                delta = value - prev.get(key, 0)
                if delta > 0:
                    self.metrics.inc(metric, delta)
                prev[key] = value
            label = str(worker_id)
            self.metrics.set_gauge(
                "service.worker.traces", int(stats.get("traces", 0)), worker=label
            )
            self.metrics.set_gauge(
                "service.worker.sessions",
                int(stats.get("sessions_active", 0)),
                worker=label,
            )
            self._m_active.set(self.registry.active)

    def _send_to(self, worker_id: int, frame: bytes) -> None:
        try:
            self._conns[worker_id].send_bytes(frame)
        except (BrokenPipeError, OSError):
            pass

    def _note_pending(self) -> None:
        pending = self.pending_events()
        self.shared.set_pending(pending)
        self.shared.set_watermark(self.online.watermark)
        if pending > self.pending_peak:
            self.pending_peak = pending
        self._m_pending.set(pending)
        self._m_pending_peak.high_watermark(pending)
        lag = self.watermark_lag()
        if lag is not None:
            self._m_lag.set(lag)

    # -- shared state (status facade) --------------------------------------

    @property
    def final_report(self) -> Optional[VerificationReport]:
        return self._final_report

    @property
    def fingerprint(self) -> Optional[str]:
        return self._fingerprint

    @property
    def draining(self) -> bool:
        return self._draining

    def _stat_sum(self, key: str) -> int:
        return sum(int(s.get(key, 0)) for s in self.worker_stats.values())

    @property
    def frames_total(self) -> int:
        return self._stat_sum("frames")

    @property
    def bytes_total(self) -> int:
        return self._stat_sum("bytes")

    @property
    def credits_total(self) -> int:
        return self._stat_sum("credits")

    @property
    def stalls_total(self) -> int:
        return self._stat_sum("stalls")

    @property
    def frame_traces_max(self) -> int:
        return self.shared.frame_traces_max()

    def worker_trace_counts(self) -> List[int]:
        """Traces accepted per worker (the load document's v2 field; at
        drain the sum equals ``traces_total`` exactly)."""
        return [
            int(self.worker_stats.get(i, {}).get("traces", 0))
            for i in range(self.config.acceptor_workers)
        ]

    def pending_events(self) -> int:
        pending = self.online.pending
        extra = getattr(self._backend, "coordinator_pending_events", None)
        if callable(extra):
            pending += extra()
        return pending

    def inflight_capacity(self) -> int:
        return (
            self.shared.active_sessions()
            * self.config.session_credit
            * self.shared.frame_traces_max()
        )

    def over_budget(self) -> bool:
        return (
            self.pending_events() + self.shared.in_pipe() + self.inflight_capacity()
            > self.config.pending_budget
        )

    def watermark_lag(self) -> Optional[float]:
        watermark = self.online.watermark
        if self.max_ts_seen is None or watermark == float("-inf"):
            return None
        if watermark == float("inf"):
            return 0.0
        return max(0.0, self.max_ts_seen - watermark)

    # -- status ------------------------------------------------------------

    def status_document(self) -> Dict[str, object]:
        """The ``status`` response body, served from a snapshot cache so
        pollers cost the verifier loop one render per ``status_refresh``
        interval instead of one per query (staleness is bounded by
        construction: a hit never returns a document older than the
        refresh interval)."""
        now = time.monotonic()
        age = now - self._status_cache_at
        if self._status_cache is None or age > self.config.status_refresh:
            doc = status.status_document(self)
            doc["workers"] = self._workers_document()
            self._status_cache = doc
            self._status_cache_at = now
            age = 0.0
            self._m_cache_misses.inc()
        else:
            self._m_cache_hits.inc()
        self._m_cache_age.set(age)
        doc = dict(self._status_cache)
        doc["cache"] = {
            "age_seconds": round(age, 4),
            "refresh_interval": self.config.status_refresh,
        }
        return doc

    def _workers_document(self) -> List[Dict[str, object]]:
        out = []
        for worker_id in range(self.config.acceptor_workers):
            stats = self.worker_stats.get(worker_id, {})
            out.append(
                {
                    "worker": worker_id,
                    "alive": self._procs[worker_id].is_alive(),
                    "sessions_active": int(stats.get("sessions_active", 0)),
                    "frames": int(stats.get("frames", 0)),
                    "traces": int(stats.get("traces", 0)),
                    "bytes": int(stats.get("bytes", 0)),
                    "stalls": int(stats.get("stalls", 0)),
                    "forwarded": self.shared.worker_sent(worker_id),
                }
            )
        return out

    async def _handle_status(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._status_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                response = await status.handle_query(self, line)
                writer.write(
                    json.dumps(response, sort_keys=True).encode("utf-8") + b"\n"
                )
                await writer.drain()
        except asyncio.CancelledError:
            pass
        except (ConnectionError, OSError):
            pass
        finally:
            self._status_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


__all__ = [
    "MultiLoopGateway",
    "SharedServiceState",
]
