"""Service wire protocol: ``repro.service/v1`` control and data frames.

The ingest socket speaks the same length-prefixed framing as the
``repro.traces/v1b`` file format -- a magic header, then ``u32``
length-prefixed payloads -- so a capture file and an ingest stream differ
only in the header line and the one-byte frame tag that precedes each
payload::

    stream  := MAGIC frame*
    frame   := u32(len(payload)) payload
    payload := u8(tag) body

Data frames (``TRACES``) carry a ``repro.traces/v1b`` batch payload
verbatim (:func:`repro.core.codec.encode_batch`); control frames carry
small varint/double bodies encoded with the codec's own primitive
writers.  The grammar of every frame, the credit/backpressure rules and
the versioning policy are documented in ``docs/service.md`` -- that page
is the normative spec and the doc tests pin it against this module.

Frame tags are part of the wire format: append new tags, never renumber.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

#: Versioned ingest-stream header; bump for incompatible frame changes.
SERVICE_MAGIC = b"repro.service/v1\n"

#: Refuse absurd frame lengths before allocating (a corrupt length prefix
#: must not look like a 4 GiB read).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_U32 = struct.Struct("<I")
_D = struct.Struct("<d")

#: Bytes of the per-frame length prefix (offset accounting).
PREFIX_SIZE = _U32.size

# -- frame tags ---------------------------------------------------------------
# Client -> server.
F_HELLO = 0x01      # body: varint(client_id)
F_TRACES = 0x02     # body: repro.traces/v1b batch payload
F_HEARTBEAT = 0x03  # body: f64(progress mark)
F_BYE = 0x04        # body: empty

# Server -> client.
S_WELCOME = 0x11    # body: varint(session_id) varint(credit)
S_CREDIT = 0x12     # body: varint(frames)
S_PAUSE = 0x13      # body: empty (advisory; credit is the hard gate)
S_RESUME = 0x14     # body: empty
S_ERROR = 0x15      # body: varint(session_id) varint(byte_offset)
                    #       varint(len) utf8(message)
S_BYE = 0x16        # body: varint(traces accepted on this session)

#: Human-readable tag names (status endpoint, errors, docs tests).
TAG_NAMES: Dict[int, str] = {
    F_HELLO: "HELLO",
    F_TRACES: "TRACES",
    F_HEARTBEAT: "HEARTBEAT",
    F_BYE: "BYE",
    S_WELCOME: "WELCOME",
    S_CREDIT: "CREDIT",
    S_PAUSE: "PAUSE",
    S_RESUME: "RESUME",
    S_ERROR: "ERROR",
    S_BYE: "BYE_ACK",
}


class ServiceProtocolError(ValueError):
    """A malformed or out-of-contract frame.

    Carries the session id and the ingest-stream byte offset of the
    offending frame so the operator can locate the poison bytes in a
    capture of the stream; both also travel back to the client inside the
    ``ERROR`` frame.
    """

    def __init__(
        self,
        message: str,
        session_id: Optional[int] = None,
        byte_offset: Optional[int] = None,
    ):
        self.reason = message
        self.session_id = session_id
        self.byte_offset = byte_offset
        where = []
        if session_id is not None:
            where.append(f"session {session_id}")
        if byte_offset is not None:
            where.append(f"byte offset {byte_offset}")
        prefix = f"[{', '.join(where)}] " if where else ""
        super().__init__(f"{prefix}{message}")


# -- varint helpers -----------------------------------------------------------
# Control bodies are tiny; these stand alone so the protocol module has no
# dependency on the codec's stateful encoder classes.


def _varint(n: int) -> bytes:
    out = bytearray()
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)
    return bytes(out)


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    shift = 0
    result = 0
    try:
        while True:
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, pos
            shift += 7
    except IndexError:
        raise ServiceProtocolError("truncated varint in control frame") from None


# -- frame assembly -----------------------------------------------------------


def encode_frame(tag: int, body: bytes = b"") -> bytes:
    """One wire frame: length prefix + tag byte + body."""
    return _U32.pack(1 + len(body)) + bytes([tag]) + body


def hello_frame(client_id: int) -> bytes:
    return encode_frame(F_HELLO, _varint(client_id))


def traces_frame(batch_payload: bytes) -> bytes:
    """Wrap an already-encoded ``repro.traces/v1b`` batch payload."""
    return encode_frame(F_TRACES, batch_payload)


def heartbeat_frame(now: float) -> bytes:
    return encode_frame(F_HEARTBEAT, _D.pack(now))


def bye_frame() -> bytes:
    return encode_frame(F_BYE)


def welcome_frame(session_id: int, credit: int) -> bytes:
    return encode_frame(S_WELCOME, _varint(session_id) + _varint(credit))


def credit_frame(frames: int) -> bytes:
    return encode_frame(S_CREDIT, _varint(frames))


def pause_frame() -> bytes:
    return encode_frame(S_PAUSE)


def resume_frame() -> bytes:
    return encode_frame(S_RESUME)


def error_frame(session_id: int, byte_offset: int, message: str) -> bytes:
    encoded = message.encode("utf-8")
    body = (
        _varint(session_id)
        + _varint(byte_offset)
        + _varint(len(encoded))
        + encoded
    )
    return encode_frame(S_ERROR, body)


def bye_ack_frame(traces_accepted: int) -> bytes:
    return encode_frame(S_BYE, _varint(traces_accepted))


# -- frame parsing ------------------------------------------------------------


def split_frame(payload: bytes) -> Tuple[int, bytes]:
    """Split one frame payload into ``(tag, body)``."""
    if not payload:
        raise ServiceProtocolError("empty frame")
    return payload[0], payload[1:]


def parse_control(tag: int, body: bytes) -> Dict[str, object]:
    """Decode a control-frame body into a dict (``TRACES`` bodies are the
    codec's business and are not accepted here)."""
    if tag == F_HELLO:
        client_id, pos = _read_varint(body, 0)
        _expect_end(body, pos, "HELLO")
        return {"client_id": client_id}
    if tag == F_HEARTBEAT:
        if len(body) != _D.size:
            raise ServiceProtocolError(
                f"HEARTBEAT body must be 8 bytes, got {len(body)}"
            )
        return {"now": _D.unpack(body)[0]}
    if tag == F_BYE:
        _expect_end(body, 0, "BYE")
        return {}
    if tag == S_WELCOME:
        session_id, pos = _read_varint(body, 0)
        credit, pos = _read_varint(body, pos)
        _expect_end(body, pos, "WELCOME")
        return {"session_id": session_id, "credit": credit}
    if tag == S_CREDIT:
        frames, pos = _read_varint(body, 0)
        _expect_end(body, pos, "CREDIT")
        return {"frames": frames}
    if tag in (S_PAUSE, S_RESUME):
        _expect_end(body, 0, TAG_NAMES[tag])
        return {}
    if tag == S_ERROR:
        session_id, pos = _read_varint(body, 0)
        byte_offset, pos = _read_varint(body, pos)
        length, pos = _read_varint(body, pos)
        end = pos + length
        if end > len(body):
            raise ServiceProtocolError("truncated ERROR message")
        message = body[pos:end].decode("utf-8", errors="replace")
        _expect_end(body, end, "ERROR")
        return {
            "session_id": session_id,
            "byte_offset": byte_offset,
            "message": message,
        }
    if tag == S_BYE:
        accepted, pos = _read_varint(body, 0)
        _expect_end(body, pos, "BYE_ACK")
        return {"traces_accepted": accepted}
    raise ServiceProtocolError(f"unknown frame tag 0x{tag:02x}")


def _expect_end(body: bytes, pos: int, name: str) -> None:
    if pos != len(body):
        raise ServiceProtocolError(
            f"{name} frame has {len(body) - pos} trailing bytes"
        )


# -- asyncio stream surface ---------------------------------------------------


async def read_magic(reader) -> None:
    """Consume and validate the stream header."""
    header = await reader.readexactly(len(SERVICE_MAGIC))
    if header != SERVICE_MAGIC:
        raise ServiceProtocolError(
            f"not a {SERVICE_MAGIC[:-1].decode('ascii')} stream "
            f"(header {header[:24]!r})"
        )


async def read_frame(reader) -> Optional[bytes]:
    """Read one length-prefixed frame payload; ``None`` on clean EOF at a
    frame boundary (mid-frame EOF raises ``IncompleteReadError``)."""
    import asyncio

    try:
        prefix = await reader.readexactly(_U32.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServiceProtocolError("truncated frame length prefix") from None
    (length,) = _U32.unpack(prefix)
    if length == 0:
        raise ServiceProtocolError("zero-length frame")
    if length > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ServiceProtocolError("truncated frame payload") from None
