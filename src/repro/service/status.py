"""Status endpoint: line-JSON queries over the live gateway.

One request line in, one response line out.  A request is either a JSON
object ``{"q": <query>, ...}`` or, as a convenience, the bare query word.
Every response carries ``ok`` and echoes ``q``; failures carry ``error``.
The full schema -- every query and every status field -- is documented in
``docs/service.md`` and pinned by the doc tests.

Queries
-------
``ping``
    Liveness probe.
``status``
    The live service document: session registry, ingest counters, the
    memory-budget state, watermark/lag, and the online verifier's
    ``repro.stats/v1``-style snapshot (mid-run violation count included).
``violations``
    The violations detected so far (``offset``/``limit`` windowing) --
    the service surfaces bugs mid-run, not at end-of-history.
``metrics``
    The full metrics registry snapshot (counters/gauges/histograms).
``drain``
    Graceful shutdown: flush everything, finish the verifier, respond
    with the final report fingerprint and summary.
``report``
    The final report of a drained service (an error before drain).
"""

from __future__ import annotations

import json
from typing import Dict, List

KNOWN_QUERIES = ["ping", "status", "violations", "metrics", "drain", "report"]

#: Default/maximum violations returned per ``violations`` query.
VIOLATIONS_LIMIT = 100


def _sanitize(value):
    """JSON-safe floats (the watermark can sit at +/-inf)."""
    if isinstance(value, float) and (
        value != value or value in (float("inf"), float("-inf"))
    ):
        return None
    return value


def status_document(gateway) -> Dict[str, object]:
    """The ``status`` response body (schema: ``docs/service.md``)."""
    cfg = gateway.config
    snapshot = gateway.online.snapshot()
    pending = gateway.pending_events()
    coordinator = pending - gateway.online.pending
    return {
        "service": {
            "draining": gateway.draining,
            "drained": gateway.final_report is not None,
            "sessions_active": gateway.registry.active,
            "sessions_total": gateway.registry.opened,
            "clients": gateway.registry.clients,
            "frames": gateway.frames_total,
            "traces": gateway.traces_total,
            "bytes": gateway.bytes_total,
            "heartbeats": gateway.heartbeats_total,
            "errors": gateway.errors_total,
            "evictions": gateway.evictions_total,
            "credits_granted": gateway.credits_total,
            "sessions": gateway.registry.sessions_snapshot(),
            "last_errors": list(gateway.errors[-5:]),
        },
        "budget": {
            "pending_budget": cfg.pending_budget,
            "session_credit": cfg.session_credit,
            "pending": pending,
            "pending_peak": gateway.pending_peak,
            "coordinator_pending": coordinator,
            "inflight_capacity": gateway.inflight_capacity(),
            "stalls": gateway.stalls_total,
        },
        "lag": {
            "watermark": _sanitize(gateway.online.watermark),
            "newest": _sanitize(gateway.max_ts_seen),
            "seconds": _sanitize(gateway.watermark_lag()),
        },
        "verifier": snapshot,
    }


def violations_document(gateway, offset: int, limit: int) -> Dict[str, object]:
    violations = gateway.online.violations_so_far
    window: List[str] = [str(v) for v in violations[offset : offset + limit]]
    return {
        "total": len(violations),
        "offset": offset,
        "violations": window,
    }


async def handle_query(gateway, line: bytes) -> Dict[str, object]:
    """Dispatch one request line; never raises (errors become ``ok:
    false`` responses)."""
    text = line.decode("utf-8", errors="replace").strip()
    try:
        request = json.loads(text) if text.startswith("{") else {"q": text}
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object or a query word")
    except ValueError as exc:
        return {"ok": False, "error": f"bad request: {exc}", "known": KNOWN_QUERIES}
    q = request.get("q")

    if q == "ping":
        return {"ok": True, "q": q, "pong": True}
    if q == "status":
        # Via the gateway so the multi-loop tier can serve its snapshot
        # cache; the single-loop gateway renders inline as before.
        return {"ok": True, "q": q, **gateway.status_document()}
    if q == "violations":
        try:
            offset = int(request.get("offset", 0))
            limit = min(int(request.get("limit", VIOLATIONS_LIMIT)), VIOLATIONS_LIMIT)
        except (TypeError, ValueError):
            return {"ok": False, "q": q, "error": "offset/limit must be integers"}
        return {"ok": True, "q": q, **violations_document(gateway, offset, limit)}
    if q == "metrics":
        registry = gateway.metrics
        return {
            "ok": True,
            "q": q,
            "enabled": registry.enabled,
            "metrics": (
                registry.snapshot()
                if registry.enabled
                else {"counters": {}, "gauges": {}, "histograms": {}}
            ),
        }
    if q == "drain":
        report = await gateway.drain()
        return {
            "ok": True,
            "q": q,
            "report_ok": report.ok,
            "fingerprint": gateway.fingerprint,
            "violations": len(report.violations),
            "summary": report.summary(),
        }
    if q == "report":
        report = gateway.final_report
        if report is None:
            return {
                "ok": False,
                "q": q,
                "error": "no final report yet; drain the service first",
            }
        return {
            "ok": True,
            "q": q,
            "report_ok": report.ok,
            "fingerprint": gateway.fingerprint,
            "violations": len(report.violations),
            "summary": report.summary(),
        }
    return {
        "ok": False,
        "error": f"unknown query {q!r}",
        "known": KNOWN_QUERIES,
    }
