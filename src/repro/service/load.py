"""Load driver: measure the gateway's ingest ceiling and prove the
offline equivalence at scale.

The harness starts an :class:`~repro.service.gateway.IngestGateway`
in-process on Unix sockets, drives ``sessions`` concurrent protocol
clients pushing a deterministic synthetic workload, polls the status
endpoint while the run is hot, drains, and then re-verifies the *same*
streams offline through the batch path -- asserting the two reports
fingerprint identically and that pending-event memory stayed under the
configured budget (the soak contract of ``docs/service.md``).

The synthetic workload is built for scale, not for bug hunting: each
client increments its own account key and reads a shared never-written
hot key, so the history is clean, every version chain keeps growing (GC
has real work) and timestamps are globally unique by construction.
Streams are generated lazily -- the driver never materialises the whole
history, so peak memory is the service's own staging, which is exactly
what the soak is measuring.
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..core.codec import encode_batch
from ..core.metrics import MetricsRegistry
from ..core.pipeline import pipeline_from_client_streams
from ..core.report import report_fingerprint
from ..core.spec import PG_SERIALIZABLE, IsolationSpec
from ..core.trace import Trace
from . import protocol
from .gateway import ServiceConfig, create_gateway
from .sessions import SEQ_BITS

#: Traces per synthetic transaction: read own, write own, read hot, commit.
TRACES_PER_TXN = 4

#: Timestamp layout: one slot per operation; client sub-slots keep every
#: timestamp in the whole history distinct (ties never arise, so arrival
#: interleaving cannot influence dispatch order).
_OP_STEP = 1e-4


@dataclass
class LoadConfig:
    """One load run (``--quick`` and the soak are presets over this)."""

    traces: int = 100_000
    sessions: int = 16
    shards: int = 0
    #: acceptor workers (1 = the single-loop reference gateway).
    workers: int = 1
    #: multi-loop status snapshot-cache refresh (staleness bound).
    status_refresh: float = 0.25
    backend: str = "process"
    frame_traces: int = 512
    session_credit: int = 8
    pending_budget: int = 200_000
    gc_every: int = 512
    hot_keys: int = 16
    spec: IsolationSpec = PG_SERIALIZABLE
    #: status-endpoint poll cadence while ingesting (0 disables).
    poll_interval: float = 0.25
    #: directory for the Unix sockets (a tmpdir in practice).
    socket_dir: str = "/tmp"

    @property
    def txns_per_client(self) -> int:
        per_client = max(1, self.traces // (self.sessions * TRACES_PER_TXN))
        return per_client

    @property
    def actual_traces(self) -> int:
        return self.txns_per_client * TRACES_PER_TXN * self.sessions


def synthetic_stream(cfg: LoadConfig, client_id: int) -> Iterator[Trace]:
    """Client ``client_id``'s monotone trace stream, lazily."""
    own = ("acct", client_id)
    sub = client_id * (_OP_STEP / (4 * max(cfg.sessions, 1)))
    for j in range(cfg.txns_per_client):
        txn = f"c{client_id}x{j}"
        base = j * TRACES_PER_TXN * _OP_STEP + sub
        t0 = base
        t1 = base + _OP_STEP
        t2 = base + 2 * _OP_STEP
        t3 = base + 3 * _OP_STEP
        width = _OP_STEP / 8
        hot = ("hot", (client_id + j) % cfg.hot_keys)
        yield Trace.read(
            t0, t0 + width, txn, {own: {"v": j}}, client_id=client_id, op_index=0
        )
        yield Trace.write(
            t1, t1 + width, txn, {own: {"v": j + 1}}, client_id=client_id, op_index=1
        )
        yield Trace.read(
            t2, t2 + width, txn, {hot: {"v": 0}}, client_id=client_id, op_index=2
        )
        yield Trace.commit(t3, t3 + width, txn, client_id=client_id, op_index=3)


def initial_db(cfg: LoadConfig) -> Dict[object, Dict[str, object]]:
    db: Dict[object, Dict[str, object]] = {
        ("acct", c): {"v": 0} for c in range(cfg.sessions)
    }
    db.update({("hot", h): {"v": 0} for h in range(cfg.hot_keys)})
    return db


def _stamped_stream(cfg: LoadConfig, client_id: int) -> Iterator[Trace]:
    """The offline replica of what the gateway ingests: the same stream
    with the same deterministic trace ids the session registry stamps."""
    base = client_id << SEQ_BITS
    for seq, trace in enumerate(synthetic_stream(cfg, client_id)):
        yield dataclasses.replace(trace, trace_id=base + seq)


def iter_frames(cfg: LoadConfig, client_id: int) -> Iterator[bytes]:
    """Encode the client's stream into wire frames, lazily."""
    batch: List[Trace] = []
    for trace in synthetic_stream(cfg, client_id):
        batch.append(trace)
        if len(batch) >= cfg.frame_traces:
            yield protocol.traces_frame(encode_batch(batch))
            batch = []
    if batch:
        yield protocol.traces_frame(encode_batch(batch))


# -- protocol client ----------------------------------------------------------


async def drive_client(
    path: str,
    client_id: int,
    frames: Iterator[bytes],
    start_gate: Optional["asyncio.Barrier"] = None,
) -> Dict[str, object]:
    """One well-behaved session: honour credit and advisory pause, send
    every frame, say BYE, wait for the ack.

    ``start_gate`` synchronises session start-up: every participant
    registers (HELLO/WELCOME) before any of them streams data.  Without
    it a fast client could push the dispatch watermark past a slower
    client's first timestamp before that client ever says HELLO -- and
    the gateway refuses traces behind the dispatched watermark."""
    reader, writer = await asyncio.open_unix_connection(path)
    stats: Dict[str, object] = {
        "client": client_id,
        "frames": 0,
        "paused": 0,
        "errors": [],
        "acked": None,
        "latencies": [],
    }
    # Ingest latency per frame: send -> matching CREDIT return.  The
    # server returns exactly one credit per drained frame, in order, so
    # a FIFO of send timestamps pairs them up without sequence numbers.
    sent_at: "deque" = deque()
    latencies: List[float] = stats["latencies"]
    try:
        writer.write(protocol.SERVICE_MAGIC + protocol.hello_frame(client_id))
        await writer.drain()
        payload = await protocol.read_frame(reader)
        tag, body = protocol.split_frame(payload)
        if tag != protocol.S_WELCOME:
            raise protocol.ServiceProtocolError(
                f"expected WELCOME, got {protocol.TAG_NAMES.get(tag, hex(tag))}"
            )
        welcome = protocol.parse_control(tag, body)
        if start_gate is not None:
            await start_gate.wait()
        credit = asyncio.Semaphore(int(welcome["credit"]))
        resume = asyncio.Event()
        resume.set()
        finished = asyncio.Event()

        async def read_loop() -> None:
            while True:
                payload = await protocol.read_frame(reader)
                if payload is None:
                    # Server went away: unblock the sender so it can exit.
                    resume.set()
                    credit.release()
                    finished.set()
                    return
                tag, body = protocol.split_frame(payload)
                if tag == protocol.S_CREDIT:
                    now = time.perf_counter()
                    for _ in range(int(protocol.parse_control(tag, body)["frames"])):
                        if sent_at:
                            latencies.append(now - sent_at.popleft())
                        credit.release()
                elif tag == protocol.S_PAUSE:
                    stats["paused"] += 1
                    resume.clear()
                elif tag == protocol.S_RESUME:
                    resume.set()
                elif tag == protocol.S_ERROR:
                    stats["errors"].append(protocol.parse_control(tag, body))
                    resume.set()
                    credit.release()
                    finished.set()
                    return
                elif tag == protocol.S_BYE:
                    stats["acked"] = protocol.parse_control(tag, body)[
                        "traces_accepted"
                    ]
                    finished.set()
                    return

        reader_task = asyncio.ensure_future(read_loop())
        try:
            for frame in frames:
                await resume.wait()
                await credit.acquire()
                if finished.is_set():
                    break
                sent_at.append(time.perf_counter())
                writer.write(frame)
                await writer.drain()
                stats["frames"] += 1
            if not finished.is_set():
                writer.write(protocol.bye_frame())
                await writer.drain()
            await finished.wait()
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, Exception):
                pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return stats


async def query_status(path: str, request: str) -> Dict[str, object]:
    """One status-endpoint round trip over a Unix socket."""
    import json

    reader, writer = await asyncio.open_unix_connection(path)
    try:
        writer.write(request.encode("utf-8") + b"\n")
        await writer.drain()
        line = await reader.readline()
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# -- the run ------------------------------------------------------------------


def _percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of an unsorted sample (None when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def _latency_summary(values: List[float]) -> Optional[Dict[str, object]]:
    """p50/p95/p99 of one latency sample, rounded to microseconds."""
    if not values:
        return None
    return {
        "count": len(values),
        "p50": round(_percentile(values, 0.50), 6),
        "p95": round(_percentile(values, 0.95), 6),
        "p99": round(_percentile(values, 0.99), 6),
    }


def offline_fingerprint(cfg: LoadConfig) -> str:
    """Verify the identical streams through the offline batch path (same
    shard configuration) and fingerprint the report."""
    if cfg.shards > 0:
        from ..core.parallel import ParallelVerifier

        verifier = ParallelVerifier(
            spec=cfg.spec,
            initial_db=initial_db(cfg),
            shards=cfg.shards,
            backend=cfg.backend,
            gc_every=cfg.gc_every,
        )
    else:
        from ..core.verifier import Verifier

        verifier = Verifier(
            spec=cfg.spec, initial_db=initial_db(cfg), gc_every=cfg.gc_every
        )
    streams = {
        client_id: _stamped_stream(cfg, client_id)
        for client_id in range(cfg.sessions)
    }
    pipeline = pipeline_from_client_streams(streams, batch_size=cfg.frame_traces)
    for batch in pipeline.iter_batches():
        verifier.process_batch(batch)
    return report_fingerprint(verifier.finish())


async def run_load(cfg: LoadConfig) -> Dict[str, object]:
    """The full measurement: serve, drive, poll, drain, compare."""
    import os

    ingest_path = os.path.join(cfg.socket_dir, f"repro-ingest-{os.getpid()}.sock")
    status_path = os.path.join(cfg.socket_dir, f"repro-status-{os.getpid()}.sock")
    for path in (ingest_path, status_path):
        if os.path.exists(path):
            os.unlink(path)
    gateway = create_gateway(
        ServiceConfig(
            spec=cfg.spec,
            initial_db=initial_db(cfg),
            ingest_unix=ingest_path,
            status_unix=status_path,
            shards=cfg.shards,
            backend=cfg.backend,
            gc_every=cfg.gc_every,
            session_credit=cfg.session_credit,
            pending_budget=cfg.pending_budget,
            acceptor_workers=cfg.workers,
            status_refresh=cfg.status_refresh,
            # Instrumented so the status endpoint's chain_memo block (and
            # the chain.memo.hit_rate gauge) carries real numbers during
            # the soak; the documented registry overhead is <5%.
            metrics=MetricsRegistry(),
        )
    )
    await gateway.start()
    polls = {"count": 0, "pending_max": 0, "chain_memo": None, "cache_age_max": None}
    stop_polling = asyncio.Event()

    async def poll_loop() -> None:
        while not stop_polling.is_set():
            try:
                doc = await query_status(status_path, "status")
                polls["count"] += 1
                pending = doc.get("budget", {}).get("pending", 0)
                polls["pending_max"] = max(polls["pending_max"], pending)
                memo = doc.get("verifier", {}).get("chain_memo")
                if memo is not None:
                    polls["chain_memo"] = memo
                cache = doc.get("cache")
                if cache is not None:
                    age = float(cache.get("age_seconds", 0.0))
                    polls["cache_age_max"] = max(
                        polls["cache_age_max"] or 0.0, age
                    )
            except (ConnectionError, OSError, ValueError):
                pass
            try:
                await asyncio.wait_for(
                    stop_polling.wait(), timeout=cfg.poll_interval
                )
            except asyncio.TimeoutError:
                pass

    poller = (
        asyncio.ensure_future(poll_loop()) if cfg.poll_interval > 0 else None
    )
    ingest_start = time.perf_counter()
    start_gate = asyncio.Barrier(cfg.sessions)
    client_stats = await asyncio.gather(
        *(
            drive_client(
                ingest_path,
                client_id,
                iter_frames(cfg, client_id),
                start_gate=start_gate,
            )
            for client_id in range(cfg.sessions)
        )
    )
    ingest_seconds = time.perf_counter() - ingest_start
    stop_polling.set()
    if poller is not None:
        await poller

    drain_start = time.perf_counter()
    drain_doc = await query_status(status_path, "drain")
    drain_seconds = time.perf_counter() - drain_start
    report = gateway.final_report
    await gateway.aclose()
    for path in (ingest_path, status_path):
        if os.path.exists(path):
            os.unlink(path)

    total = cfg.actual_traces
    accepted = sum(int(s["acked"] or 0) for s in client_stats)
    worker_traces = gateway.worker_trace_counts()
    offline_start = time.perf_counter()
    offline = offline_fingerprint(cfg)
    offline_seconds = time.perf_counter() - offline_start
    all_latencies = [lat for s in client_stats for lat in s["latencies"]]
    return {
        "schema": "repro.service-load/v2",
        "traces": total,
        "traces_accepted": accepted,
        "sessions": cfg.sessions,
        "shards": cfg.shards,
        "workers": cfg.workers,
        # v2: where did the ingest work land, and what did a frame cost?
        "worker_traces": worker_traces,
        "ingest_latency": _latency_summary(all_latencies),
        "session_latency": [
            {"client": s["client"], **(_latency_summary(s["latencies"]) or {})}
            for s in client_stats
            if s["latencies"]
        ],
        "status_cache": (
            None
            if cfg.workers <= 1
            else {
                "refresh_interval": cfg.status_refresh,
                "age_max": polls["cache_age_max"],
            }
        ),
        "frame_traces": cfg.frame_traces,
        "session_credit": cfg.session_credit,
        "pending_budget": cfg.pending_budget,
        "ingest_seconds": round(ingest_seconds, 3),
        "traces_per_sec": round(total / ingest_seconds, 1) if ingest_seconds else 0.0,
        "drain_seconds": round(drain_seconds, 3),
        "offline_seconds": round(offline_seconds, 3),
        "pending_peak": gateway.pending_peak,
        "within_budget": gateway.pending_peak <= cfg.pending_budget,
        "budget_stalls": gateway.stalls_total,
        "status_polls": polls["count"],
        "status_pending_max": polls["pending_max"],
        # Last classification-memo snapshot the status endpoint served
        # during ingest (None when no poll landed mid-run).
        "chain_memo": polls["chain_memo"],
        "client_errors": sum(len(s["errors"]) for s in client_stats),
        "online_fingerprint": drain_doc.get("fingerprint"),
        "offline_fingerprint": offline,
        "fingerprints_match": drain_doc.get("fingerprint") == offline,
        "report_ok": bool(report.ok) if report is not None else None,
        "violations": len(report.violations) if report is not None else None,
    }


def run_load_sync(cfg: Optional[LoadConfig] = None) -> Dict[str, object]:
    """Synchronous entry point (CLI / bench harness)."""
    return asyncio.run(run_load(cfg or LoadConfig()))
