"""Asyncio ingest gateway: concurrent client sessions feeding one
online verifier.

Each connection pushes length-prefixed frames (``protocol``); accepted
``TRACES`` frames are decoded with the binary codec, stamped with
deterministic trace ids (``sessions``) and staged into the
:class:`~repro.core.online.OnlineVerifier`, whose watermark dispatches
them to the verifier backend -- the serial :class:`~repro.core.verifier.
Verifier` or a sharded :class:`~repro.core.parallel.ParallelVerifier`
with the streamed certifier merge.

Backpressure is two-layered (documented in ``docs/service.md``):

* **credit** is the hard per-session gate: ``WELCOME`` grants a number of
  ``TRACES`` frames that may be in flight; the server returns one credit
  per drained frame, so a session can never buffer more than
  ``session_credit`` undecoded frames server-side;
* the **service-wide memory budget** bounds pending events (staged
  traces + the parallel coordinator's journal backlog).  While over
  budget, credit is withheld from every session that is *ahead of* the
  watermark (an advisory ``PAUSE`` is sent); the laggard sessions -- the
  ones whose next frame can advance the watermark and therefore *shrink*
  the backlog -- are always admitted, so the gate throttles without
  deadlocking.

A poison frame (malformed bytes, unsorted stream, wrong client id) kills
only its own session: the client is evicted from watermark accounting so
the other sessions keep dispatching, and the ``ERROR`` frame sent back
carries the session id and byte offset of the offending frame.

Graceful drain: stop accepting connections, wait for live sessions,
flush every staged trace through ``finish()`` and publish the final
report -- byte-identical (same :func:`~repro.core.report.
report_fingerprint`) to an offline ``verify`` over the same streams.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple, Union

from ..core.codec import CodecError, decode_batch
from ..core.metrics import MetricsRegistry, NULL_REGISTRY
from ..core.online import OnlineVerifier
from ..core.report import VerificationReport, report_fingerprint
from ..core.spec import IsolationSpec, PG_SERIALIZABLE
from ..core.trace import Trace
from . import protocol, status
from .protocol import ServiceProtocolError
from .sessions import Session, SessionRegistry

Key = object


def _default_workers() -> int:
    """``REPRO_SERVICE_WORKERS`` escape hatch: 1 keeps this module's
    single-loop gateway (the reference oracle); N > 1 selects the
    multi-loop ingest tier (``workers``)."""
    try:
        return max(1, int(os.environ.get("REPRO_SERVICE_WORKERS", "1")))
    except ValueError:
        return 1


@dataclass
class ServiceConfig:
    """Everything the gateway needs to run; mirrors ``verify``'s knobs
    plus the service-only transport and backpressure settings."""

    spec: IsolationSpec = PG_SERIALIZABLE
    initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None
    #: TCP endpoints (port 0 binds an ephemeral port) ...
    host: str = "127.0.0.1"
    port: int = 0
    status_port: int = 0
    #: ... or Unix sockets, which take precedence when set.
    ingest_unix: Optional[str] = None
    status_unix: Optional[str] = None
    #: 0 = serial verifier; N > 0 = N key-partitioned shards.
    shards: int = 0
    backend: str = "process"
    stream_merge: Optional[bool] = None
    gc_every: int = 512
    #: TRACES frames a session may have in flight (the hard per-session
    #: buffer cap; WELCOME announces it).
    session_credit: int = 8
    #: service-wide pending-event ceiling: staged traces plus the
    #: parallel coordinator's buffered journal events.
    pending_budget: int = 200_000
    #: listen(2) backlog for both listeners.  Hundreds of sessions
    #: connecting at once (a soak start, a fleet reconnect) overflow the
    #: asyncio default of 100 and the kernel resets the excess mid
    #: handshake, so size for the connection *burst*, not the steady
    #: state.
    listen_backlog: int = 1024
    #: acceptor processes in front of the verifier loop.  1 (the
    #: default, overridable via ``REPRO_SERVICE_WORKERS``) runs the
    #: single-loop gateway below, verbatim; N > 1 selects the
    #: stamp-and-forward multi-loop tier (``repro.service.workers``).
    acceptor_workers: int = field(default_factory=_default_workers)
    #: multi-loop only: minimum seconds between status-document renders
    #: (the snapshot cache's staleness bound).
    status_refresh: float = 0.25
    #: multi-loop only: seconds between each worker's stats flush to the
    #: coordinator.
    stats_interval: float = 0.2
    metrics: Optional[MetricsRegistry] = None


def build_backend(config: ServiceConfig):
    """The verifier backend a gateway feeds: serial below ``shards=1``,
    the sharded parallel verifier with the streamed merge otherwise."""
    if config.shards > 0:
        from ..core.parallel import ParallelVerifier

        return ParallelVerifier(
            spec=config.spec,
            initial_db=config.initial_db,
            shards=config.shards,
            backend=config.backend,
            stream_merge=config.stream_merge,
            gc_every=config.gc_every,
            metrics=config.metrics,
        )
    from ..core.verifier import Verifier

    return Verifier(
        spec=config.spec,
        initial_db=config.initial_db,
        gc_every=config.gc_every,
        metrics=config.metrics,
    )


def create_gateway(config: ServiceConfig):
    """Gateway factory: the single-loop :class:`IngestGateway` for
    ``acceptor_workers=1`` (the reference oracle, kept verbatim), the
    multi-loop :class:`~repro.service.workers.MultiLoopGateway` above
    that.  Both expose the same lifecycle, endpoints and status schema."""
    if config.acceptor_workers > 1:
        from .workers import MultiLoopGateway

        return MultiLoopGateway(config)
    return IngestGateway(config)


class IngestGateway:
    """The long-running service: ingest listener + status listener over
    one shared online verifier."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.metrics = config.metrics if config.metrics is not None else NULL_REGISTRY
        self._backend = build_backend(config)
        self.online = OnlineVerifier(verifier=self._backend)
        self.registry = SessionRegistry()

        # Plain-int service counters (always on; the registry mirrors them
        # as service.* instruments when metrics are enabled).
        self.frames_total = 0
        self.traces_total = 0
        self.bytes_total = 0
        self.heartbeats_total = 0
        self.errors_total = 0
        self.evictions_total = 0
        self.credits_total = 0
        self.stalls_total = 0
        self.pending_peak = 0
        #: largest TRACES frame seen so far, in traces -- sizes the
        #: budget gate's in-flight margin.
        self.frame_traces_max = 0
        self.max_ts_seen: Optional[float] = None
        #: last protocol errors, newest last (status endpoint shows them).
        self.errors: List[Dict[str, object]] = []

        self._m_active = self.metrics.gauge("service.sessions.active")
        self._m_opened = self.metrics.counter("service.sessions.opened")
        self._m_closed = self.metrics.counter("service.sessions.closed")
        self._m_frames = self.metrics.counter("service.frames")
        self._m_traces = self.metrics.counter("service.traces")
        self._m_bytes = self.metrics.counter("service.bytes")
        self._m_heartbeats = self.metrics.counter("service.heartbeats")
        self._m_errors = self.metrics.counter("service.errors")
        self._m_evictions = self.metrics.counter("service.evictions")
        self._m_credits = self.metrics.counter("service.credit.granted")
        self._m_stalls = self.metrics.counter("service.budget.stalls")
        self._m_pending = self.metrics.gauge("service.pending")
        self._m_pending_peak = self.metrics.gauge("service.pending.peak")
        self._m_lag = self.metrics.gauge("service.watermark.lag")

        self._ingest_server: Optional[asyncio.base_events.Server] = None
        self._status_server: Optional[asyncio.base_events.Server] = None
        self._tasks: Set[asyncio.Task] = set()
        self._status_tasks: Set[asyncio.Task] = set()
        self._dispatch_cond: Optional[asyncio.Condition] = None
        self._drain_lock: Optional[asyncio.Lock] = None
        self._draining = False
        self._final_report: Optional[VerificationReport] = None
        self._fingerprint: Optional[str] = None
        self.drained = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind both listeners (ephemeral ports are resolved here)."""
        self._dispatch_cond = asyncio.Condition()
        self._drain_lock = asyncio.Lock()
        cfg = self.config
        if cfg.ingest_unix:
            self._ingest_server = await asyncio.start_unix_server(
                self._handle_ingest,
                path=cfg.ingest_unix,
                backlog=cfg.listen_backlog,
            )
        else:
            self._ingest_server = await asyncio.start_server(
                self._handle_ingest,
                cfg.host,
                cfg.port,
                backlog=cfg.listen_backlog,
            )
        if cfg.status_unix:
            self._status_server = await asyncio.start_unix_server(
                self._handle_status,
                path=cfg.status_unix,
                backlog=cfg.listen_backlog,
            )
        else:
            self._status_server = await asyncio.start_server(
                self._handle_status,
                cfg.host,
                cfg.status_port,
                backlog=cfg.listen_backlog,
            )

    @property
    def ingest_endpoint(self) -> Union[str, Tuple[str, int]]:
        if self.config.ingest_unix:
            return self.config.ingest_unix
        sock = self._ingest_server.sockets[0]
        return sock.getsockname()[:2]

    @property
    def status_endpoint(self) -> Union[str, Tuple[str, int]]:
        if self.config.status_unix:
            return self.config.status_unix
        sock = self._status_server.sockets[0]
        return sock.getsockname()[:2]

    async def drain(self) -> VerificationReport:
        """Graceful shutdown: refuse new connections, wait for live
        sessions to finish, flush everything staged and publish the final
        report.  Idempotent; concurrent callers share the one report."""
        async with self._drain_lock:
            if self._final_report is not None:
                return self._final_report
            self._draining = True
            async with self._dispatch_cond:
                self._dispatch_cond.notify_all()
            self._ingest_server.close()
            await self._ingest_server.wait_closed()
            tasks = [t for t in self._tasks if t is not asyncio.current_task()]
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            report = self.online.finish()
            self._final_report = report
            self._fingerprint = report_fingerprint(report)
            self.drained.set()
            return report

    async def aclose(self) -> None:
        """Tear down both listeners (tests; ``drain`` already closed the
        ingest side)."""
        for server in (self._ingest_server, self._status_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        tasks = [
            t
            for t in self._tasks | self._status_tasks
            if t is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- shared state ------------------------------------------------------

    @property
    def final_report(self) -> Optional[VerificationReport]:
        return self._final_report

    @property
    def fingerprint(self) -> Optional[str]:
        return self._fingerprint

    @property
    def draining(self) -> bool:
        return self._draining

    def pending_events(self) -> int:
        """The quantity the service-wide budget bounds: traces staged in
        the online layer plus journal events buffered coordinator-side by
        the parallel streamed merge."""
        pending = self.online.pending
        extra = getattr(self._backend, "coordinator_pending_events", None)
        if callable(extra):
            pending += extra()
        return pending

    def watermark_lag(self) -> Optional[float]:
        """Seconds between the newest trace accepted and the watermark --
        how far the slowest client holds dispatch back."""
        watermark = self.online.watermark
        if self.max_ts_seen is None or watermark == float("-inf"):
            return None
        if watermark == float("inf"):
            return 0.0
        return max(0.0, self.max_ts_seen - watermark)

    def _note_pending(self) -> None:
        pending = self.pending_events()
        if pending > self.pending_peak:
            self.pending_peak = pending
        self._m_pending.set(pending)
        self._m_pending_peak.high_watermark(pending)
        lag = self.watermark_lag()
        if lag is not None:
            self._m_lag.set(lag)

    async def _notify_dispatch(self) -> None:
        async with self._dispatch_cond:
            self._dispatch_cond.notify_all()

    # -- ingest connections ------------------------------------------------

    async def _handle_ingest(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        session = self.registry.open()
        self._m_opened.inc()
        self._m_active.set(self.registry.active)
        try:
            if self._draining:
                raise ServiceProtocolError(
                    "service is draining", session_id=session.session_id
                )
            await self._session_loop(session, reader, writer)
        except (ServiceProtocolError, CodecError, ValueError) as exc:
            await self._poison(session, writer, exc)
        except asyncio.CancelledError:
            # Deliberate teardown (aclose); end the task cleanly so the
            # streams machinery does not log the cancellation.
            pass
        except (asyncio.IncompleteReadError, ConnectionError):
            # Abrupt transport loss mid-frame: same contract as a
            # disconnect without BYE -- the client may reconnect and
            # resume from its cursor.
            pass
        finally:
            self.registry.close(session)
            self._m_closed.inc()
            self._m_active.set(self.registry.active)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._tasks.discard(task)

    async def _session_loop(self, session: Session, reader, writer) -> None:
        cfg = self.config
        await protocol.read_magic(reader)
        offset = len(protocol.SERVICE_MAGIC)

        # Handshake: the first frame must be HELLO.
        session.frame_offset = offset
        payload = await protocol.read_frame(reader)
        if payload is None:
            return
        offset += protocol.PREFIX_SIZE + len(payload)
        tag, body = protocol.split_frame(payload)
        if tag != protocol.F_HELLO:
            raise ServiceProtocolError(
                f"first frame must be HELLO, got "
                f"{protocol.TAG_NAMES.get(tag, hex(tag))}",
                session_id=session.session_id,
                byte_offset=session.frame_offset,
            )
        client_id = protocol.parse_control(tag, body)["client_id"]
        self.registry.bind(session, client_id)
        self.online.register_client(client_id)
        writer.write(protocol.welcome_frame(session.session_id, cfg.session_credit))
        await writer.drain()

        while True:
            session.frame_offset = offset
            payload = await protocol.read_frame(reader)
            if payload is None:
                # Disconnect without BYE: the client keeps its watermark
                # floor and may reconnect on a fresh session.
                return
            size = protocol.PREFIX_SIZE + len(payload)
            offset += size
            session.frames += 1
            session.bytes += size
            self.frames_total += 1
            self.bytes_total += size
            self._m_frames.inc()
            self._m_bytes.inc(size)
            tag, body = protocol.split_frame(payload)

            if tag == protocol.F_TRACES:
                traces = decode_batch(body)
                dispatched = self._ingest_traces(session, client_id, traces)
                if dispatched:
                    await self._notify_dispatch()
                self._note_pending()
                await self._budget_gate(session, client_id, writer)
                writer.write(protocol.credit_frame(1))
                self.credits_total += 1
                self._m_credits.inc()
                await writer.drain()
            elif tag == protocol.F_HEARTBEAT:
                now = protocol.parse_control(tag, body)["now"]
                self.heartbeats_total += 1
                self._m_heartbeats.inc()
                if self.online.heartbeat(client_id, now):
                    await self._notify_dispatch()
                self._note_pending()
            elif tag == protocol.F_BYE:
                # The stream is complete: an infinite floor takes the
                # client out of watermark accounting for good.
                if self.online.heartbeat(client_id, float("inf")):
                    await self._notify_dispatch()
                self._note_pending()
                writer.write(protocol.bye_ack_frame(session.traces))
                await writer.drain()
                return
            else:
                raise ServiceProtocolError(
                    f"unexpected frame "
                    f"{protocol.TAG_NAMES.get(tag, hex(tag))} on the "
                    f"ingest stream",
                    session_id=session.session_id,
                    byte_offset=session.frame_offset,
                )

    def _ingest_traces(
        self, session: Session, client_id: int, traces: List[Trace]
    ) -> int:
        """Stamp and stage one accepted frame; returns dispatched count."""
        stamped = self.registry.stamp(session, traces)
        dispatched = self.online.feed_batch(client_id, stamped)
        count = len(stamped)
        if count > self.frame_traces_max:
            self.frame_traces_max = count
        session.traces += count
        self.traces_total += count
        self._m_traces.inc(count)
        if count:
            newest = stamped[-1].ts_bef
            if self.max_ts_seen is None or newest > self.max_ts_seen:
                self.max_ts_seen = newest
        return dispatched

    def inflight_capacity(self) -> int:
        """Worst-case traces the fleet's outstanding credit can still
        land: every active session holds ~``session_credit`` tokens (one
        returns per drained frame), each worth up to the largest frame
        observed.  The budget gate trips this far *below* the budget --
        credit already granted cannot be recalled, so a purely reactive
        gate overshoots by exactly this amount."""
        return (
            self.registry.active
            * self.config.session_credit
            * self.frame_traces_max
        )

    def over_budget(self) -> bool:
        return (
            self.pending_events() + self.inflight_capacity()
            > self.config.pending_budget
        )

    async def _budget_gate(self, session: Session, client_id: int, writer) -> None:
        """Hold this session's credit while the service is over budget --
        unless the session is a laggard (at the watermark), whose next
        frame is the only thing that can shrink the backlog."""
        if not self.over_budget():
            return
        if self.online.client_mark(client_id) <= self.online.watermark:
            return
        self.stalls_total += 1
        self._m_stalls.inc()
        writer.write(protocol.pause_frame())
        await writer.drain()
        while not self._draining:
            if not self.over_budget():
                break
            if self.online.client_mark(client_id) <= self.online.watermark:
                break
            async with self._dispatch_cond:
                try:
                    await asyncio.wait_for(self._dispatch_cond.wait(), timeout=0.25)
                except asyncio.TimeoutError:
                    pass
        writer.write(protocol.resume_frame())
        await writer.drain()

    async def _poison(self, session: Session, writer, exc: Exception) -> None:
        """One bad frame kills one session: evict its client from
        watermark accounting (nobody else stalls on its floor), refuse the
        stream forever, and report session id + byte offset back."""
        if isinstance(exc, ServiceProtocolError) and exc.session_id is not None:
            err = exc
        else:
            reason = exc.reason if isinstance(exc, ServiceProtocolError) else str(exc)
            err = ServiceProtocolError(
                reason,
                session_id=session.session_id,
                byte_offset=session.frame_offset,
            )
        session.error = str(err)
        self.errors_total += 1
        self._m_errors.inc()
        self.errors.append(
            {
                "session": err.session_id,
                "client": session.client_id,
                "byte_offset": err.byte_offset,
                "error": err.reason,
            }
        )
        del self.errors[:-100]
        client_id = session.client_id
        if client_id is not None:
            self.registry.evict(client_id)
            self.online.evict_client(client_id)
            self.evictions_total += 1
            self._m_evictions.inc()
            # The eviction may have advanced the watermark for everyone
            # else -- wake any budget-gated session.
            await self._notify_dispatch()
            self._note_pending()
        try:
            writer.write(
                protocol.error_frame(
                    err.session_id or 0, err.byte_offset or 0, err.reason
                )
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    # -- status connections ------------------------------------------------

    def status_document(self) -> Dict[str, object]:
        """The ``status`` response body.  Rendered inline -- the
        single-loop gateway is the reference oracle and stays verbatim;
        the multi-loop gateway overrides this with a snapshot cache."""
        return status.status_document(self)

    def worker_trace_counts(self) -> List[int]:
        """Traces accepted per acceptor worker (one entry here: the
        single loop is its own acceptor)."""
        return [self.traces_total]

    async def _handle_status(self, reader, writer) -> None:
        """Line-JSON query loop: one request line in, one response line
        out (schema in ``docs/service.md``)."""
        task = asyncio.current_task()
        self._status_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                response = await status.handle_query(self, line)
                writer.write(
                    json.dumps(response, sort_keys=True).encode("utf-8") + b"\n"
                )
                await writer.drain()
        except asyncio.CancelledError:
            pass
        except (ConnectionError, OSError):
            pass
        finally:
            self._status_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
