"""Online verification service: asyncio ingest gateway + status endpoint.

The package composes the existing pieces -- the ``repro.traces/v1b``
codec, the two-level pipeline's watermark protocol (:class:`~repro.core.
online.OnlineVerifier`) and the streamed parallel merge -- into a
long-running service that thousands of clients push traces into while an
operator watches live status and mid-run violations.

Wire protocol and operations guide: ``docs/service.md``.
"""

from .gateway import IngestGateway, ServiceConfig, create_gateway
from .protocol import ServiceProtocolError
from .workers import MultiLoopGateway

__all__ = [
    "IngestGateway",
    "MultiLoopGateway",
    "ServiceConfig",
    "ServiceProtocolError",
    "create_gateway",
]
