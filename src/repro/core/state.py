"""Shared mutable state of a verification run.

The four mechanisms of Algorithm 2 run against the same mirrored internal
state -- version chains, lock table, dependency graph, per-transaction
metadata -- and continuously exchange the dependencies they deduce
(Section V-A, "we verify the four mechanisms in parallel and continuously
transfer the deduced dependencies between them").  This module holds that
state; the mechanism modules operate on it and the verifier orchestrates.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .dependencies import DependencyGraph
from .intervals import Interval
from .locktable import LockTable
from .report import BugDescriptor, VerificationStats
from .trace import ColumnMap, Key, Trace, apply_delta
from .versions import (
    NULL_CHAIN_COUNTERS,
    Version,
    VersionChain,
    chain_frontier_enabled,
    chain_index_enabled,
    direct_scan_max,
    snap_memo_cap,
)


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


#: shared empty own-write delta handed to reads whose transaction wrote
#: nothing to the key yet (the overwhelmingly common case) -- treated as
#: read-only by every consumer, so one allocation serves all of them.
_EMPTY_DELTA: Dict[str, object] = {}


#: A read deferred until its transaction's terminal trace, stored as a
#: plain ``(trace, key, observed, own_delta)`` tuple -- one is allocated
#: per key observation on the ingest hot path, where a dataclass would
#: double the construction cost.  ``own_delta`` is the merge of the
#: transaction's own earlier writes to the key at the moment of the read
#: (first CR case: a transaction sees its own changes).  Deferral
#: guarantees that every write trace able to influence the read's candidate
#: version set has already been dispatched (its before-timestamp is
#: provably smaller than the reader's terminal before-timestamp).
PendingRead = Tuple[Trace, Optional[Key], ColumnMap, Dict[str, object]]


@dataclass(slots=True)
class PendingScan:
    """A predicate read deferred until its transaction's terminal trace,
    for the scan-completeness (phantom) check."""

    trace: Trace
    observed_keys: frozenset


@dataclass(slots=True)
class TxnState:
    """Everything the verifier mirrors about one transaction."""

    txn_id: str
    client_id: int
    first_interval: Optional[Interval] = None
    status: TxnStatus = TxnStatus.ACTIVE
    terminal_interval: Optional[Interval] = None
    pending_reads: List[PendingRead] = field(default_factory=list)
    pending_scans: List["PendingScan"] = field(default_factory=list)
    #: keys written, with the staged Version objects.
    staged_versions: List[Version] = field(default_factory=list)
    #: running merge of own writes per key (for own-read visibility).
    own_images: Dict[Key, Dict[str, object]] = field(default_factory=dict)
    op_count: int = 0

    @property
    def finished(self) -> bool:
        return self.status is not TxnStatus.ACTIVE

    @property
    def committed(self) -> bool:
        return self.status is TxnStatus.COMMITTED

    def snapshot_interval(self) -> Optional[Interval]:
        """Transaction-level snapshot generation interval (Definition 2):
        the interval of the transaction's first operation."""
        return self.first_interval

    def note_operation(self, trace: Trace) -> None:
        if self.first_interval is None:
            self.first_interval = trace.interval
        self.op_count += 1

    def own_delta_for(self, key: Key) -> Dict[str, object]:
        image = self.own_images.get(key)
        return dict(image) if image else _EMPTY_DELTA

    def merge_own_write(self, key: Key, columns: Mapping[str, object]) -> None:
        apply_delta(self.own_images.setdefault(key, {}), columns)


class VerifierState:
    """The mirrored internal state shared by all four mechanisms."""

    def __init__(
        self,
        initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
        incremental_graph: bool = True,
        chain_index: Optional[bool] = None,
        chain_frontier: Optional[bool] = None,
    ):
        self.chains: Dict[Key, VersionChain] = {}
        self.locks = LockTable()
        self.graph = DependencyGraph(incremental=incremental_graph)
        self.txns: Dict[str, TxnState] = {}
        self.descriptor = BugDescriptor()
        self.stats = VerificationStats()
        #: before-timestamp of the most recently processed trace; the
        #: monotone dispatch order makes this a watermark over all clients.
        self.watermark: float = float("-inf")
        self._initial_db = dict(initial_db or {})
        #: indexed-chain / frontier toggles, resolved to concrete booleans
        #: once per state (``None`` defers to the ``REPRO_CR_INDEX`` /
        #: ``REPRO_CR_FRONTIER`` process defaults).  Chains are built in the
        #: hot loop; handing them resolved flags keeps ``os.environ`` reads
        #: out of it.
        self.chain_index = (
            chain_index_enabled() if chain_index is None else bool(chain_index)
        )
        self.chain_frontier = self.chain_index and (
            chain_frontier_enabled()
            if chain_frontier is None
            else bool(chain_frontier)
        )
        #: memo knobs resolved once per state (chains are built in the hot
        #: loop; reading the environment per chain would tax it).
        self._chain_snap_cap = snap_memo_cap()
        self._chain_scan_max = direct_scan_max()
        #: (hits, misses, invalidations, local_invalidations,
        #: frontier_hits) handles shared by every chain; replaced by
        #: :meth:`attach_metrics` on instrumented runs.
        self._chain_counters = NULL_CHAIN_COUNTERS
        #: chains that could have prunable versions (two or more committed
        #: versions, or aborted residue).  The verifier marks chains here at
        #: commit/abort so version GC visits only candidates instead of
        #: sweeping every chain (the sweep dominated collection cost once
        #: steady-state chains shrank to one version).
        self.gc_version_candidates: Dict[Key, VersionChain] = {}
        #: min-heap of ``(terminal ts_aft, txn_id)`` pushed as transactions
        #: finish; transaction-metadata GC pops entries behind the horizon
        #: instead of sweeping the whole ``txns`` table each collection.
        self.terminal_heap: List[Tuple[float, str]] = []

    def attach_metrics(self, registry) -> None:
        """Hand chain/lock memo counters out of a metrics registry
        (``chain.memo.*`` in docs/observability.md).  Optional -- states
        built without a verifier (e.g. the parallel merge replay) keep the
        no-op counters."""
        if registry is None or not getattr(registry, "enabled", False):
            return
        self._chain_counters = (
            registry.counter("chain.memo.hits"),
            registry.counter("chain.memo.misses"),
            registry.counter("chain.memo.invalidations"),
            registry.counter("chain.memo.local_invalidations"),
            registry.counter("chain.memo.frontier_hits"),
        )
        for chain in self.chains.values():
            (
                chain._c_hits,
                chain._c_misses,
                chain._c_invalidations,
                chain._c_local_invalidations,
                chain._c_frontier,
            ) = self._chain_counters

    # -- accessors -----------------------------------------------------------

    def initial_only_keys(self):
        """Keys present in the initial database that no trace has touched
        yet (they have no chain object, but their initial version is
        definitely visible to every snapshot)."""
        return [key for key in self._initial_db if key not in self.chains]

    def chain(self, key: Key) -> VersionChain:
        existing = self.chains.get(key)
        if existing is None:
            initial = self._initial_db.get(key)
            existing = VersionChain(
                key,
                initial_image=initial,
                use_index=self.chain_index,
                counters=self._chain_counters,
                use_frontier=self.chain_frontier,
                snap_cap=self._chain_snap_cap,
                scan_max=self._chain_scan_max,
            )
            self.chains[key] = existing
        return existing

    def txn(self, trace: Trace) -> TxnState:
        state = self.txns.get(trace.txn_id)
        if state is None:
            state = TxnState(txn_id=trace.txn_id, client_id=trace.client_id)
            self.txns[trace.txn_id] = state
        return state

    def ensure_txn(
        self,
        txn_id: str,
        client_id: int,
        interval: Optional[Interval] = None,
    ) -> TxnState:
        """Materialise a transaction's state before any of its traces route
        here.  The parallel path broadcasts per-transaction "begin" controls
        so every shard knows the *true* first-operation interval (the
        snapshot-generation interval of Definition 2) even when the
        transaction's first operation touched keys owned by another shard.
        """
        state = self.txns.get(txn_id)
        if state is None:
            state = TxnState(txn_id=txn_id, client_id=client_id)
            self.txns[txn_id] = state
        if state.first_interval is None and interval is not None:
            state.first_interval = interval
        return state

    def get_txn(self, txn_id: str) -> Optional[TxnState]:
        return self.txns.get(txn_id)

    def note_terminal(self, txn_id: str, ts_aft: float) -> None:
        """Register a finished transaction with the terminal-timestamp
        heap (the metadata-GC index).  Every path that moves a transaction
        out of ACTIVE calls this, or its metadata is never pruned."""
        heapq.heappush(self.terminal_heap, (ts_aft, txn_id))

    def active_txns(self) -> List[TxnState]:
        return [t for t in self.txns.values() if not t.finished]

    def earliest_unverified_snapshot(self) -> float:
        """``S_e`` of Definition 4: the earliest snapshot-generation
        timestamp any unverified trace can still reference.  Active
        transactions pin their first-operation timestamps; everything else
        is bounded below by the dispatch watermark."""
        floor = self.watermark
        for txn in self.txns.values():
            if not txn.finished and txn.first_interval is not None:
                floor = min(floor, txn.first_interval.ts_bef)
        return floor

    # -- ww order oracle --------------------------------------------------------

    def ww_order(self, a: Version, b: Version) -> Optional[bool]:
        """Whether version ``a``'s transaction is known (deduced ww) to
        precede version ``b``'s; None when undetermined."""
        from .dependencies import DepType  # local import avoids cycle at load

        if a.txn_id == b.txn_id:
            return None
        if self.graph.has_edge_type(a.txn_id, b.txn_id, DepType.WW):
            return True
        if self.graph.has_edge_type(b.txn_id, a.txn_id, DepType.WW):
            return False
        return None

    # -- memory accounting (benchmarks) -------------------------------------------

    def live_structure_count(self) -> int:
        """Number of retained verifier structures; the memory axis of the
        Fig. 10/14 experiments (see DESIGN.md substitution table)."""
        versions = sum(
            len(chain) + chain.pending_count() for chain in self.chains.values()
        )
        return (
            versions
            + self.locks.live_entry_count()
            + len(self.graph)
            + self.graph.edge_count
            + len(self.txns)
        )
