"""Ordered record versions and candidate-version-set minimisation.

The CR and FUW mechanisms both reason over the *version evolution* of each
record, reconstructed purely from traces:

* each committed write contributes a :class:`Version` whose *installation
  interval* is the write operation's trace interval (Definition 1);
* versions of a record are kept in a list sorted by the after-timestamp of
  their installation interval (insertion sort, mirroring Section V-A's
  complexity analysis);
* every version carries the *cumulative record image* at that point in the
  chain, so partial-column writes (TPC-C style) can be matched against
  reads that observe different column subsets.

Given a read's snapshot-generation interval (Definition 2), the chain
classifies versions into the five categories of Fig. 6 -- future, overlap,
pivot, pivot-overlap, garbage -- and returns the minimal candidate version
set of Theorem 2: exactly the versions possibly visible to that read.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from .intervals import INITIAL_INTERVAL, Interval
from .trace import ColumnMap, INIT_TXN, Key, apply_delta, reads_match

_version_seq = itertools.count()


def _chain_sort_key(version: "Version"):
    """Chain order = installation order.  Section II-A: *a commit installs
    all versions created by a transaction*, so the true installation instant
    lies inside the commit trace interval; versions are ordered by it (the
    write-operation interval breaks ties for two versions committed in the
    same instantaneous batch)."""
    effective = version.effective_install
    return (effective.ts_aft, effective.ts_bef, version.install.ts_aft, version.seq)

#: Optional oracle answering "is version a's txn known to precede version
#: b's txn (ww) on this key?" -- returns True/False when deduced, None when
#: unknown.  Supplied by the verifier from already-deduced dependencies.
OrderOracle = Callable[["Version", "Version"], Optional[bool]]


@dataclass(eq=False)
class Version:
    """One installed version of a record.

    Versions compare (and hash) by identity: two staged writes are distinct
    versions even when byte-identical, and chain membership operations rely
    on object identity."""

    key: Key
    txn_id: str
    install: Interval
    #: columns this write set (the delta).
    columns: Dict[str, object]
    #: cumulative record image up to and including this version, under the
    #: chain's current order.
    image: Dict[str, object] = field(default_factory=dict)
    #: commit interval of the installing transaction (None while pending).
    commit: Optional[Interval] = None
    committed: bool = False
    #: transactions observed (via CR wr deduction) to have read this version.
    readers: Set[str] = field(default_factory=set)
    seq: int = field(default_factory=lambda: next(_version_seq))

    @property
    def is_initial(self) -> bool:
        return self.txn_id == INIT_TXN

    @property
    def effective_install(self) -> Interval:
        """The interval containing the instant the version became visible:
        the installing transaction's commit interval (Section II-A).  Falls
        back to the write-operation interval while uncommitted."""
        return self.commit if self.commit is not None else self.install

    def matches(self, observed: ColumnMap) -> bool:
        """Whether a read observing ``observed`` is consistent with the
        record image at this version."""
        return reads_match(observed, self.image)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"V({self.key!r}:{self.txn_id}@{self.install} {self.columns!r})"


@dataclass(frozen=True)
class CandidateClassification:
    """Fig. 6 classification of a chain against one snapshot interval."""

    candidates: Tuple[Version, ...]
    future: Tuple[Version, ...]
    garbage: Tuple[Version, ...]
    pivot: Optional[Version]


class VersionChain:
    """All observed versions of one record.

    Committed versions live in ``self._chain`` sorted by installation
    after-timestamp; uncommitted writes are staged per transaction until the
    commit trace arrives (mirroring how an MVCC engine installs versions at
    commit).
    """

    def __init__(self, key: Key, initial_image: Optional[Mapping[str, object]] = None):
        self.key = key
        self._chain: List[Version] = []
        self._pending: Dict[str, List[Version]] = {}
        self._aborted: List[Version] = []
        if initial_image is not None:
            initial = Version(
                key=key,
                txn_id=INIT_TXN,
                install=INITIAL_INTERVAL,
                columns=dict(initial_image),
                image=dict(initial_image),
                commit=INITIAL_INTERVAL,
                committed=True,
            )
            self._chain.append(initial)

    # -- structure accessors -----------------------------------------------

    def __len__(self) -> int:
        return len(self._chain)

    def committed_versions(self) -> List[Version]:
        return list(self._chain)

    def pending_versions(self, txn_id: str) -> List[Version]:
        return list(self._pending.get(txn_id, ()))

    def aborted_versions(self) -> List[Version]:
        return list(self._aborted)

    def pending_count(self) -> int:
        return sum(len(v) for v in self._pending.values())

    def index_of(self, version: Version) -> int:
        return self._chain.index(version)

    def successor_of(self, version: Version) -> Optional[Version]:
        """The next committed version in chain order, or None for the tail."""
        idx = self._chain.index(version)
        if idx + 1 < len(self._chain):
            return self._chain[idx + 1]
        return None

    def predecessor_of(self, version: Version) -> Optional[Version]:
        idx = self._chain.index(version)
        if idx > 0:
            return self._chain[idx - 1]
        return None

    # -- mutation -------------------------------------------------------------

    def stage_write(
        self, txn_id: str, columns: Mapping[str, object], interval: Interval
    ) -> Version:
        """Record an uncommitted write (version installation interval =
        the write trace interval, Definition 1)."""
        version = Version(
            key=self.key,
            txn_id=txn_id,
            install=interval,
            columns=dict(columns),
        )
        self._pending.setdefault(txn_id, []).append(version)
        return version

    def commit_txn(self, txn_id: str, commit_interval: Interval) -> List[Version]:
        """Install a transaction's staged versions into the committed chain
        (insertion-sorted by installation after-timestamp).  Returns the
        versions that became visible."""
        staged = self._pending.pop(txn_id, [])
        installed: List[Version] = []
        for version in staged:
            version.commit = commit_interval
            version.committed = True
            self._insert_sorted(version)
            installed.append(version)
        return installed

    def abort_txn(self, txn_id: str) -> List[Version]:
        dropped = self._pending.pop(txn_id, [])
        self._aborted.extend(dropped)
        return dropped

    def _insert_sorted(self, version: Version) -> None:
        sort_key = _chain_sort_key(version)
        position = len(self._chain)
        for idx, existing in enumerate(self._chain):
            if sort_key < _chain_sort_key(existing):
                position = idx
                break
        self._chain.insert(position, version)
        self._recompute_images(position)

    def _recompute_images(self, start: int) -> None:
        """Rebuild cumulative images from ``start`` to the tail (deletion
        deltas replace; re-inserts start from an empty row)."""
        base: Dict[str, object] = (
            dict(self._chain[start - 1].image) if start > 0 else {}
        )
        for version in self._chain[start:]:
            apply_delta(base, version.columns)
            version.image = dict(base)

    # -- candidate version set (Fig. 6 / Theorem 2) -----------------------------

    def classify(
        self,
        snapshot: Interval,
        order_oracle: Optional[OrderOracle] = None,
    ) -> CandidateClassification:
        """Classify committed versions against a snapshot-generation
        interval and return the minimal candidate version set.

        * *future* versions (installation definitely after the snapshot) are
          excluded;
        * the *pivot* is the version definitely before the snapshot whose
          installation after-timestamp is the largest;
        * *pivot-overlap* versions overlap the pivot's installation interval
          and stay candidates;
        * *garbage* versions (definitely before the pivot) are excluded;
        * with an order oracle (deduced ``ww`` edges), pivot-overlap
          versions whose order w.r.t. the pivot is fully resolved collapse
          to just the latest of them, as described in Section V-A.
        """
        future: List[Version] = []
        overlap: List[Version] = []
        before: List[Version] = []
        for version in self._chain:
            installed = version.effective_install
            if snapshot.precedes(installed):
                future.append(version)
            elif installed.precedes(snapshot):
                before.append(version)
            else:
                overlap.append(version)
        pivot: Optional[Version] = None
        pivot_overlap: List[Version] = []
        garbage: List[Version] = []
        if before:
            pivot = max(
                before, key=lambda v: (v.effective_install.ts_aft, v.seq)
            )
            for version in before:
                if version is pivot:
                    continue
                if version.effective_install.overlaps(pivot.effective_install):
                    pivot_overlap.append(version)
                else:
                    garbage.append(version)
        pre_snapshot = pivot_overlap + ([pivot] if pivot is not None else [])
        if order_oracle is not None and len(pre_snapshot) > 1:
            pre_snapshot = self._collapse_ordered(pre_snapshot, order_oracle)
        candidates = tuple(
            sorted(pre_snapshot + overlap, key=lambda v: v.seq)
        )
        return CandidateClassification(
            candidates=candidates,
            future=tuple(future),
            garbage=tuple(garbage),
            pivot=pivot,
        )

    @staticmethod
    def _collapse_ordered(
        versions: List[Version], oracle: OrderOracle
    ) -> List[Version]:
        """Drop pre-snapshot versions that are *known* (via deduced ww
        order) to be overwritten by another pre-snapshot version."""
        survivors: List[Version] = []
        for version in versions:
            overwritten = any(
                other is not version and oracle(version, other)
                for other in versions
            )
            if not overwritten:
                survivors.append(version)
        return survivors if survivors else versions

    def candidate_set(
        self,
        snapshot: Interval,
        order_oracle: Optional[OrderOracle] = None,
    ) -> Tuple[Version, ...]:
        return self.classify(snapshot, order_oracle).candidates

    # -- diagnosis helpers --------------------------------------------------------

    def find_matching_committed(self, observed: ColumnMap) -> List[Version]:
        return [v for v in self._chain if v.matches(observed)]

    def find_matching_pending(self, observed: ColumnMap) -> List[Version]:
        matches: List[Version] = []
        for versions in self._pending.values():
            matches.extend(v for v in versions if reads_match(observed, v.columns))
        matches.extend(
            v for v in self._aborted if reads_match(observed, v.columns)
        )
        return matches

    # -- garbage collection ----------------------------------------------------------

    def prune_garbage(
        self,
        horizon: Interval,
        can_prune_txn: Callable[[str], bool],
    ) -> int:
        """Drop versions that are *garbage* with respect to the earliest
        still-relevant snapshot interval (Section V-A GC).

        A version may be pruned when it is classified garbage against
        ``horizon`` (definitely overwritten before any live snapshot) and
        its installing transaction is releasable according to
        ``can_prune_txn`` (i.e. no other mechanism still needs it).  The
        cumulative images of surviving versions already fold in the pruned
        history, so reads verify identically afterwards.
        """
        self._aborted.clear()
        # Garbage needs at least two versions definitely before the horizon
        # (a pivot and something it overwrote); most chains fail this cheap
        # test and are skipped without a full classification.
        old_enough = 0
        for version in self._chain:
            if version.effective_install.precedes(horizon):
                old_enough += 1
                if old_enough >= 2:
                    break
        if old_enough < 2:
            return 0
        classification = self.classify(horizon)
        prunable = {
            v.seq
            for v in classification.garbage
            if can_prune_txn(v.txn_id) or v.is_initial
        }
        # Never prune the most recent garbage version if it would leave the
        # chain empty -- a read far in the future still needs one base image.
        if self._chain and len(prunable) >= len(self._chain):
            newest = max(self._chain, key=lambda v: v.seq)
            prunable.discard(newest.seq)
        if not prunable:
            return 0
        kept = [v for v in self._chain if v.seq not in prunable]
        pruned = len(self._chain) - len(kept)
        self._chain = kept
        self._aborted.clear()
        return pruned
