"""Ordered record versions and candidate-version-set minimisation.

The CR and FUW mechanisms both reason over the *version evolution* of each
record, reconstructed purely from traces:

* each committed write contributes a :class:`Version` whose *installation
  interval* is the write operation's trace interval (Definition 1);
* versions of a record are kept in a list sorted by the after-timestamp of
  their installation interval.  The historical implementation maintained
  the order by insertion sort and classified by full linear scan (the
  baseline of Section V-A's complexity analysis); the default *indexed*
  chain keeps a parallel list of sort keys so insertion, position lookup
  and Fig. 6 classification all run by binary search instead
  (``REPRO_CR_INDEX=0`` restores the linear path -- see
  ``docs/architecture.md``);
* every version carries the *cumulative record image* at that point in the
  chain, so partial-column writes (TPC-C style) can be matched against
  reads that observe different column subsets.

Given a read's snapshot-generation interval (Definition 2), the chain
classifies versions into the five categories of Fig. 6 -- future, overlap,
pivot, pivot-overlap, garbage -- and returns the minimal candidate version
set of Theorem 2: exactly the versions possibly visible to that read.

Classification is memoised per chain (epoch-based): the Fig. 6 partition
is a pure function of the chain contents and the snapshot interval, so the
indexed chain caches it at two granularities -- per exact snapshot
endpoints, and per *before-boundary* (the prefix of versions definitely
before the snapshot, which determines pivot, pivot-overlap and garbage
regardless of where the snapshot ends).  Hits, misses and invalidations
are counted through the ``chain.memo.*`` metrics
(``docs/observability.md``).

On top of the index the default chain keeps a *committed-version frontier*
(the Vbox time-ordered idiom, see PAPERS.md): commits arrive in roughly
monotone timestamp order, so most reads carry snapshots that lie at or
beyond the last committed version's after-timestamp.  For those reads the
whole chain is the definitely-before prefix -- future and overlap are
empty by construction -- and the classification is a single cached object
resolved in O(1) (``chain.memo.frontier_hits``).  Mutations invalidate
*frontier-locally*: a version appended at the tail leaves every existing
boundary prefix intact, so only the exact-snapshot entries whose snapshot
the new version does not definitely postdate are dropped (counted via
``chain.memo.local_invalidations``); mid-chain inserts and GC prunes keep
the epoch-wide clear.  ``REPRO_CR_FRONTIER=0`` restores the plain indexed
path and ``REPRO_CR_INDEX=0`` the linear scan -- the two reference oracles
the equivalence tests pin byte-identical reports against.
"""

from __future__ import annotations

import itertools
import math
import operator
import os
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from .intervals import INITIAL_INTERVAL, Interval
from .trace import ColumnMap, INIT_TXN, Key, apply_delta, reads_match

_version_seq = itertools.count()

_INF = math.inf

#: exact-snapshot memo entries kept per chain before a wholesale clear
#: (hot chains mutate often and self-clear; this bounds read-only chains).
#: Process default; tunable via ``REPRO_CR_SNAP_MEMO_CAP``.
_SNAP_MEMO_LIMIT = 128

#: chains at or below this length classify by direct scan even in indexed
#: mode: under steady-state GC most chains hold one or two versions, where
#: the boundary search plus memo bookkeeping costs more than the scan it
#: replaces.  The index still drives insertion, position lookup and the
#: O(1) GC pre-check at every length.  Process default; tunable via
#: ``REPRO_CR_DIRECT_SCAN_MAX`` (raising it disables the memo layers for
#: longer chains -- the low-contention escape valve, see
#: ``docs/architecture.md``).
_DIRECT_SCAN_MAX = 4


def chain_sort_key(version: "Version") -> Tuple[float, float, float, int]:
    """Chain order = installation order.  Section II-A: *a commit installs
    all versions created by a transaction*, so the true installation instant
    lies inside the commit trace interval; versions are ordered by it (the
    write-operation interval breaks ties for two versions committed in the
    same instantaneous batch, and ``seq`` -- the per-process staging
    counter -- breaks the remaining ties, making the key a *total* order:
    two versions staged by the same batch commit with identical intervals
    still order by staging sequence, so chain order is deterministic and
    the key can drive binary searches).  This is the one key function used
    by both the bisect-maintained index and the linear fallback."""
    effective = version.effective_install
    return (effective.ts_aft, effective.ts_bef, version.install.ts_aft, version.seq)


#: Backwards-compatible alias (the key was private before the index made it
#: part of the chain's contract).
_chain_sort_key = chain_sort_key

#: candidate tuples are ordered by staging sequence.
_seq_of = operator.attrgetter("seq")


def chain_index_enabled() -> bool:
    """Process-default for the indexed chain (``REPRO_CR_INDEX``, on unless
    set to ``0`` -- the equivalence-test escape hatch)."""
    return os.environ.get("REPRO_CR_INDEX", "1") != "0"


def chain_frontier_enabled() -> bool:
    """Process-default for the committed-version frontier fast path
    (``REPRO_CR_FRONTIER``, on unless set to ``0`` -- the second reference
    escape hatch: frontier off, index on, is exactly the PR 3 chain)."""
    return os.environ.get("REPRO_CR_FRONTIER", "1") != "0"


def snap_memo_cap() -> int:
    """Exact-snapshot memo cap (``REPRO_CR_SNAP_MEMO_CAP``, default
    ``_SNAP_MEMO_LIMIT``).  Non-numeric or non-positive values fall back
    to the default rather than erroring mid-run."""
    raw = os.environ.get("REPRO_CR_SNAP_MEMO_CAP")
    if raw is None:
        return _SNAP_MEMO_LIMIT
    try:
        value = int(raw)
    except ValueError:
        return _SNAP_MEMO_LIMIT
    return value if value > 0 else _SNAP_MEMO_LIMIT


def direct_scan_max() -> int:
    """Chain length at or below which classification bypasses the memo
    layers entirely (``REPRO_CR_DIRECT_SCAN_MAX``, default
    ``_DIRECT_SCAN_MAX``)."""
    raw = os.environ.get("REPRO_CR_DIRECT_SCAN_MAX")
    if raw is None:
        return _DIRECT_SCAN_MAX
    try:
        value = int(raw)
    except ValueError:
        return _DIRECT_SCAN_MAX
    return value if value >= 0 else _DIRECT_SCAN_MAX


class _NullCounter:
    """Stand-in for a metrics counter when a chain is built outside a
    verifier (unit tests, ad-hoc use)."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


_NULL_COUNTER = _NullCounter()

#: (hits, misses, invalidations, local_invalidations, frontier_hits)
#: counter handles for unmetered chains.
NULL_CHAIN_COUNTERS = (
    _NULL_COUNTER,
    _NULL_COUNTER,
    _NULL_COUNTER,
    _NULL_COUNTER,
    _NULL_COUNTER,
)

#: Optional oracle answering "is version a's txn known to precede version
#: b's txn (ww) on this key?" -- returns True/False when deduced, None when
#: unknown.  Supplied by the verifier from already-deduced dependencies.
OrderOracle = Callable[["Version", "Version"], Optional[bool]]


@dataclass(eq=False, slots=True)
class Version:
    """One installed version of a record.

    Versions compare (and hash) by identity: two staged writes are distinct
    versions even when byte-identical, and chain membership operations rely
    on object identity."""

    key: Key
    txn_id: str
    install: Interval
    #: columns this write set (the delta).
    columns: Dict[str, object]
    #: cumulative record image up to and including this version, under the
    #: chain's current order.
    image: Dict[str, object] = field(default_factory=dict)
    #: commit interval of the installing transaction (None while pending).
    commit: Optional[Interval] = None
    committed: bool = False
    #: transactions observed (via CR wr deduction) to have read this version.
    readers: Set[str] = field(default_factory=set)
    seq: int = field(default_factory=_version_seq.__next__)

    @property
    def effective_install(self) -> Interval:
        """The interval containing the instant the version became visible:
        the installing transaction's commit interval (Section II-A), falling
        back to the write-operation interval while uncommitted.  A derived
        property (single source of truth is ``commit``); the indexed chain
        avoids the call on its hot paths by reading the effective interval
        back out of its cached sort keys."""
        return self.commit if self.commit is not None else self.install

    @property
    def is_initial(self) -> bool:
        return self.txn_id == INIT_TXN

    def matches(self, observed: ColumnMap) -> bool:
        """Whether a read observing ``observed`` is consistent with the
        record image at this version."""
        return reads_match(observed, self.image)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"V({self.key!r}:{self.txn_id}@{self.install} {self.columns!r})"


@dataclass(slots=True)
class CandidateClassification:
    """Fig. 6 classification of a chain against one snapshot interval.

    Treated as read-only by every consumer (instances are shared through
    the classification memos); not ``frozen`` because the frozen-dataclass
    ``__init__`` goes through ``object.__setattr__`` and this object is
    built once per checked read on the hot path."""

    candidates: Tuple[Version, ...]
    future: Tuple[Version, ...]
    garbage: Tuple[Version, ...]
    pivot: Optional[Version]


#: internal partition shape shared by the indexed and linear paths:
#: (future, overlap, pivot, pivot_overlap, garbage), all in chain order.
_Partition = Tuple[
    Tuple[Version, ...],
    Tuple[Version, ...],
    Optional[Version],
    Tuple[Version, ...],
    Tuple[Version, ...],
]


class VersionChain:
    """All observed versions of one record.

    Committed versions live in ``self._chain`` sorted by
    :func:`chain_sort_key`; uncommitted writes are staged per transaction
    until the commit trace arrives (mirroring how an MVCC engine installs
    versions at commit).  With ``use_index`` (the default, see
    :func:`chain_index_enabled`) a parallel sorted key list makes
    insertion, position lookup and classification binary searches, and the
    Fig. 6 partition is memoised per epoch.
    """

    __slots__ = (
        "key",
        "_chain",
        "_pending",
        "_aborted",
        "_use_index",
        "_use_frontier",
        "_snap_cap",
        "_scan_max",
        "_keys",
        "epoch",
        "_snap_memo",
        "_prefix_memo",
        "_single_memo",
        "_frontier_entry",
        "_c_hits",
        "_c_misses",
        "_c_invalidations",
        "_c_local_invalidations",
        "_c_frontier",
    )

    def __init__(
        self,
        key: Key,
        initial_image: Optional[Mapping[str, object]] = None,
        use_index: Optional[bool] = None,
        counters=None,
        use_frontier: Optional[bool] = None,
        snap_cap: Optional[int] = None,
        scan_max: Optional[int] = None,
    ):
        self.key = key
        self._chain: List[Version] = []
        self._pending: Dict[str, List[Version]] = {}
        self._aborted: List[Version] = []
        self._use_index = (
            chain_index_enabled() if use_index is None else bool(use_index)
        )
        #: frontier fast path rides on the key index; linear chains never
        #: take it regardless of the flag.
        self._use_frontier = self._use_index and (
            chain_frontier_enabled() if use_frontier is None else bool(use_frontier)
        )
        self._snap_cap = snap_memo_cap() if snap_cap is None else int(snap_cap)
        self._scan_max = direct_scan_max() if scan_max is None else int(scan_max)
        #: parallel sorted :func:`chain_sort_key` list (indexed mode only).
        self._keys: List[Tuple[float, float, float, int]] = []
        #: memo epoch: bumped on every chain mutation.
        self.epoch = 0
        #: exact-snapshot memo: (ts_bef, ts_aft) -> the 5-part partition +
        #: (finished classification or None, chain length at creation --
        #: the anchor for the lazy frontier-local ``future`` fold).
        self._snap_memo: Dict[Tuple[float, float], tuple] = {}
        #: prefix memo: boundary index -> (pivot, pivot_overlap, garbage).
        self._prefix_memo: Dict[int, tuple] = {}
        #: single-version outcome memo: the three possible classifications
        #: of a length-1 chain (future / pivot / overlap), shared across
        #: every snapshot that lands in the same relation to the version.
        self._single_memo: Dict[int, CandidateClassification] = {}
        #: frontier cache: (prefix, finished-or-None) for the whole-chain
        #: boundary; rebuilt lazily once per mutation.
        self._frontier_entry: Optional[tuple] = None
        counters = counters or NULL_CHAIN_COUNTERS
        if len(counters) == 3:
            # Pre-frontier triple: pad with no-op handles.
            counters = tuple(counters) + NULL_CHAIN_COUNTERS[3:]
        (
            self._c_hits,
            self._c_misses,
            self._c_invalidations,
            self._c_local_invalidations,
            self._c_frontier,
        ) = counters
        if initial_image is not None:
            # One shared copy: neither the columns delta nor the image of a
            # version is ever mutated in place (images are rebuilt by
            # replacement in _recompute_images).
            image = dict(initial_image)
            initial = Version(
                key=key,
                txn_id=INIT_TXN,
                install=INITIAL_INTERVAL,
                columns=image,
                image=image,
                commit=INITIAL_INTERVAL,
                committed=True,
            )
            self._chain.append(initial)
            if self._use_index:
                self._keys.append(chain_sort_key(initial))

    # -- structure accessors -----------------------------------------------

    def __len__(self) -> int:
        return len(self._chain)

    @property
    def indexed(self) -> bool:
        return self._use_index

    def committed_versions(self) -> List[Version]:
        return list(self._chain)

    def iter_committed(self) -> List[Version]:
        """The committed chain itself, in chain order.  Read-only view for
        hot paths (FUW pairing, Fig. 9 derivation) -- callers must not
        mutate it."""
        return self._chain

    def pending_versions(self, txn_id: str) -> List[Version]:
        return list(self._pending.get(txn_id, ()))

    def aborted_versions(self) -> List[Version]:
        return list(self._aborted)

    def pending_count(self) -> int:
        return sum(len(v) for v in self._pending.values())

    def _position(self, version: Version) -> int:
        """Chain index of ``version`` (by identity).  Indexed chains find
        it by binary search on the (total-order) sort key once the chain
        is long enough for the bisect to beat ``list.index``'s C-level
        scan; the linear path always scans, as before."""
        chain = self._chain
        if not self._use_index or len(chain) <= 16:
            return chain.index(version)
        idx = bisect_left(self._keys, chain_sort_key(version))
        if idx < len(chain) and chain[idx] is version:
            return idx
        raise ValueError(f"{version} is not in chain")

    def index_of(self, version: Version) -> int:
        return self._position(version)

    def successor_of(self, version: Version) -> Optional[Version]:
        """The next committed version in chain order, or None for the tail."""
        idx = self._position(version)
        if idx + 1 < len(self._chain):
            return self._chain[idx + 1]
        return None

    def predecessor_of(self, version: Version) -> Optional[Version]:
        idx = self._position(version)
        if idx > 0:
            return self._chain[idx - 1]
        return None

    # -- mutation -------------------------------------------------------------

    def stage_write(
        self, txn_id: str, columns: Mapping[str, object], interval: Interval
    ) -> Version:
        """Record an uncommitted write (version installation interval =
        the write trace interval, Definition 1)."""
        # No defensive copy: write deltas come from immutable traces and no
        # consumer mutates Version.columns (images are rebuilt separately).
        version = Version(
            key=self.key,
            txn_id=txn_id,
            install=interval,
            columns=columns,
        )
        self._pending.setdefault(txn_id, []).append(version)
        return version

    def commit_txn(self, txn_id: str, commit_interval: Interval) -> List[Version]:
        """Install a transaction's staged versions into the committed chain
        (sorted by :func:`chain_sort_key`).  Returns the versions that
        became visible."""
        staged = self._pending.pop(txn_id, [])
        installed: List[Version] = []
        for version in staged:
            version.commit = commit_interval
            version.committed = True
            self._insert_sorted(version)
            installed.append(version)
        return installed

    def abort_txn(self, txn_id: str) -> List[Version]:
        dropped = self._pending.pop(txn_id, [])
        self._aborted.extend(dropped)
        return dropped

    def _invalidate(self) -> None:
        """Epoch bump: every cached classification is stale."""
        self.epoch += 1
        self._frontier_entry = None
        if self._snap_memo or self._prefix_memo or self._single_memo:
            self._snap_memo.clear()
            self._prefix_memo.clear()
            self._single_memo.clear()
            self._c_invalidations.inc()

    def _invalidate_local(self, sort_key: Tuple[float, float, float, int]) -> None:
        """Frontier-local invalidation for a tail append (``sort_key`` is
        the appended version's chain key; its second component is the
        effective installation before-timestamp).

        The appended version sorts after every committed version, so ``chain[0:b]``
        is unchanged for every existing boundary ``b``: the boundary-prefix
        memo stays valid wholesale (retaining it *is* the incremental
        maintenance).  Only classifications whose boundary the new version
        can cross are dropped: exact-snapshot entries whose snapshot does
        not definitely precede the new version's installation (for those,
        the version lands in overlap-or-before and the partition changes
        shape).  Entries whose snapshot the version definitely postdates
        stay valid with the version appended to their ``future`` tuple --
        exactly where the linear reference scan would have put it; that
        append is *lazy* (each entry records the chain length at creation,
        ``entry[6]``, and a hit folds in ``chain[n0:]``), so entries that
        are never re-read never pay for maintenance.
        """
        self.epoch += 1
        self._frontier_entry = None
        if self._single_memo:
            # Only populated while the chain had length 1; the length-1
            # fast path can no longer serve these, and the chain returns
            # to length 1 only through a prune (a full invalidation).
            self._single_memo.clear()
        snap_memo = self._snap_memo
        if snap_memo:
            v_bef = sort_key[1]
            stale = [key for key in snap_memo if key[1] > v_bef]
            if stale:
                for key in stale:
                    del snap_memo[key]
                self._c_local_invalidations.inc(len(stale))

    def _insert_sorted(self, version: Version) -> None:
        sort_key = chain_sort_key(version)
        if self._use_index:
            keys = self._keys
            if not keys or sort_key > keys[-1]:
                # Commits arrive roughly in timestamp order, so the common
                # case is an append at the tail -- the mutation the
                # frontier-local invalidation covers.
                keys.append(sort_key)
                self._chain.append(version)
                if self._use_frontier:
                    self._invalidate_local(sort_key)
                else:
                    self._invalidate()
                self._recompute_images(len(self._chain) - 1)
                return
            position = bisect_left(keys, sort_key)
            keys.insert(position, sort_key)
        else:
            position = len(self._chain)
            for idx, existing in enumerate(self._chain):
                if sort_key < chain_sort_key(existing):
                    position = idx
                    break
        self._chain.insert(position, version)
        self._invalidate()
        self._recompute_images(position)

    def _recompute_images(self, start: int) -> None:
        """Rebuild cumulative images from ``start`` to the tail (deletion
        deltas replace; re-inserts start from an empty row)."""
        base: Dict[str, object] = (
            dict(self._chain[start - 1].image) if start > 0 else {}
        )
        for version in self._chain[start:]:
            apply_delta(base, version.columns)
            version.image = dict(base)

    # -- candidate version set (Fig. 6 / Theorem 2) -----------------------------

    def classify(
        self,
        snapshot: Interval,
        order_oracle: Optional[OrderOracle] = None,
    ) -> CandidateClassification:
        """Classify committed versions against a snapshot-generation
        interval and return the minimal candidate version set.

        * *future* versions (installation definitely after the snapshot) are
          excluded;
        * the *pivot* is the version definitely before the snapshot whose
          installation after-timestamp is the largest;
        * *pivot-overlap* versions overlap the pivot's installation interval
          and stay candidates;
        * *garbage* versions (definitely before the pivot) are excluded;
        * with an order oracle (deduced ``ww`` edges), pivot-overlap
          versions whose order w.r.t. the pivot is fully resolved collapse
          to just the latest of them, as described in Section V-A.

        The Fig. 6 partition is oracle-independent, so the indexed chain
        memoises it and applies the (cheap, small-set) oracle collapse per
        call -- cached classifications can therefore never go stale against
        newly deduced ``ww`` orders.
        """
        chain = self._chain
        if self._use_index and len(chain) == 1:
            # Steady state under GC: one committed version.  It stands in
            # exactly one of three relations to the snapshot (future,
            # pivot, overlap), each with a fixed classification that is
            # oracle-independent (no pivot-overlap set to collapse), so
            # the three outcome objects are memoised per epoch and repeat
            # reads of a stable key cost two float comparisons.
            # The sort key caches the effective interval as plain floats
            # (key = (eff.ts_aft, eff.ts_bef, install.ts_aft, seq)), so the
            # relation test needs no Version attribute access at all.
            k = self._keys[0]
            if snapshot.ts_aft <= k[1]:
                outcome = 0  # snapshot precedes installation: future
            elif k[0] <= snapshot.ts_bef:
                outcome = 1  # definitely before the snapshot: the pivot
            else:
                outcome = 2  # overlap
            cached = self._single_memo.get(outcome)
            if cached is not None:
                self._c_hits.inc()
                return cached
            self._c_misses.inc()
            version = chain[0]
            if outcome == 0:
                cached = CandidateClassification((), (version,), (), None)
            elif outcome == 1:
                cached = CandidateClassification((version,), (), (), version)
            else:
                cached = CandidateClassification((version,), (), (), None)
            self._single_memo[outcome] = cached
            return cached
        if self._use_frontier and len(chain) > 1:
            keys = self._keys
            # Frontier fast path: the snapshot lies at or beyond the last
            # committed version's after-timestamp, so the whole chain is
            # the definitely-before prefix (future and overlap are empty
            # by the sort order) and the classification depends on the
            # snapshot not at all.  The zero-width tangency (snapshot and
            # tail after-timestamp coincide) is excluded exactly as in
            # :meth:`_partition_indexed` and falls through to the exact
            # paths below.
            if keys[-1][0] <= snapshot.ts_bef:
                snap_aft = snapshot.ts_aft
                if not (
                    snapshot.ts_bef == snap_aft and keys[-1][0] == snap_aft
                ):
                    entry = self._frontier_entry
                    if entry is None:
                        self._c_misses.inc()
                        boundary = len(keys)
                        prefix = self._prefix_memo.get(boundary)
                        if prefix is None:
                            prefix = self._prefix_memo[boundary] = (
                                self._compute_prefix(boundary)
                            )
                        final = (
                            self._finalize(
                                ((), (), prefix[0], (), prefix[2]), None
                            )
                            if not prefix[1]
                            else None
                        )
                        entry = self._frontier_entry = (prefix, final)
                    else:
                        self._c_frontier.inc()
                    final = entry[1]
                    if final is not None:
                        return final
                    prefix = entry[0]
                    return self._finalize(
                        ((), (), prefix[0], prefix[1], prefix[2]), order_oracle
                    )
        if not self._use_index or len(chain) <= self._scan_max:
            # Linear mode, or a chain short enough that the direct scan is
            # cheaper than boundary search + memoisation.  The gate sits
            # *below* the frontier check on purpose: a beyond-frontier
            # snapshot resolves in O(1) regardless of chain length, and
            # under GC most steady-state chains are exactly this short.
            return self._finalize(self._partition_linear(snapshot), order_oracle)
        memo_key = (snapshot.ts_bef, snapshot.ts_aft)
        entry = self._snap_memo.get(memo_key)
        if entry is not None:
            self._c_hits.inc()
            n0 = entry[6]
            if n0 != len(chain):
                # The entry survived frontier-local invalidations: every
                # version committed since its creation is a tail append
                # that definitely postdates its snapshot (the drop rule in
                # :meth:`_invalidate_local` guarantees it), so the update
                # is to extend ``future`` with ``chain[n0:]`` -- exactly
                # where the linear reference scan would have put those
                # versions.  Folded in lazily here rather than eagerly per
                # append: entries that are never re-read never pay for it.
                parts = (entry[0] + tuple(chain[n0:]),) + entry[1:5]
                final = (
                    self._finalize(parts, None) if not entry[3] else None
                )
                entry = parts + (final, len(chain))
                self._snap_memo[memo_key] = entry
            final = entry[5]
            if final is not None:
                # Oracle-independent classification (no pivot-overlap set
                # to collapse): the finished object is served as-is.
                return final
            return self._finalize(entry[:5], order_oracle)
        parts = self._partition_indexed(snapshot)
        if parts is None:
            # Degenerate zero-width tangency: delegated to the linear scan
            # for exactness, not memoised (rare by construction).
            return self._finalize(self._partition_linear(snapshot), order_oracle)
        final = self._finalize(parts, order_oracle)
        if len(self._snap_memo) >= self._snap_cap:
            self._snap_memo.clear()
        # The finalisation is a pure function of the partition unless a
        # pivot-overlap set exists (the oracle may collapse it differently
        # as ww edges accrue), so cache the finished object when safe; the
        # trailing chain length supports the lazy frontier-local fold.
        self._snap_memo[memo_key] = parts + (
            (final if not parts[3] else None),
            len(chain),
        )
        return final

    def _finalize(
        self, parts: _Partition, order_oracle: Optional[OrderOracle]
    ) -> CandidateClassification:
        future, overlap, pivot, pivot_overlap, garbage = parts
        if not pivot_overlap:
            # Common shape: at most one pre-snapshot version, nothing for
            # the oracle to collapse.
            if pivot is None:
                pre_snapshot = []
            elif not overlap:
                return CandidateClassification(
                    candidates=(pivot,),
                    future=future,
                    garbage=garbage,
                    pivot=pivot,
                )
            else:
                pre_snapshot = [pivot]
        else:
            pre_snapshot = list(pivot_overlap)
            if pivot is not None:
                pre_snapshot.append(pivot)
            if order_oracle is not None and len(pre_snapshot) > 1:
                pre_snapshot = self._collapse_ordered(pre_snapshot, order_oracle)
        candidates = tuple(
            sorted(pre_snapshot + list(overlap), key=_seq_of)
        )
        return CandidateClassification(
            candidates=candidates,
            future=future,
            garbage=garbage,
            pivot=pivot,
        )

    def _partition_linear(self, snapshot: Interval) -> _Partition:
        """The original full-scan Fig. 6 partition (``REPRO_CR_INDEX=0``),
        kept verbatim as the reference implementation the indexed path is
        property-tested against."""
        future: List[Version] = []
        overlap: List[Version] = []
        before: List[Version] = []
        for version in self._chain:
            installed = version.effective_install
            if snapshot.precedes(installed):
                future.append(version)
            elif installed.precedes(snapshot):
                before.append(version)
            else:
                overlap.append(version)
        pivot: Optional[Version] = None
        pivot_overlap: List[Version] = []
        garbage: List[Version] = []
        if before:
            pivot = max(
                before, key=lambda v: (v.effective_install.ts_aft, v.seq)
            )
            for version in before:
                if version is pivot:
                    continue
                if version.effective_install.overlaps(pivot.effective_install):
                    pivot_overlap.append(version)
                else:
                    garbage.append(version)
        return (
            tuple(future),
            tuple(overlap),
            pivot,
            tuple(pivot_overlap),
            tuple(garbage),
        )

    def _partition_indexed(self, snapshot: Interval) -> Optional[_Partition]:
        """Boundary-search partition over the sorted key index.

        Chain order's primary key is ``effective_install.ts_aft``, so the
        versions *definitely before* the snapshot (``ts_aft <=
        snapshot.ts_bef``) are exactly a prefix of the chain, found by one
        boundary search; the suffix is split into future/overlap by
        scanning only the (small, recent) versions not definitely before.
        The prefix side -- pivot, pivot-overlap, garbage -- depends on the
        snapshot only through the prefix length, so it is memoised per
        boundary and shared across the many distinct snapshots that agree
        on it.

        Returns None for the degenerate zero-width tangency case: a
        zero-width snapshot touching a prefix version's boundary satisfies
        both precedence predicates at once and the linear scan resolves
        the tie (future first), so the caller delegates to it.  Rare by
        construction.
        """
        self._c_misses.inc()
        keys = self._keys
        ts_bef = snapshot.ts_bef
        if len(keys) <= 16:
            # Short chains (the steady state under GC): a counting walk
            # over the first key component beats bisect's tuple-sentinel
            # construction.
            boundary = 0
            for key in keys:
                if key[0] <= ts_bef:
                    boundary += 1
                else:
                    break
        else:
            boundary = bisect_right(keys, (ts_bef, _INF, _INF, _INF))
        snap_aft = snapshot.ts_aft
        if boundary and ts_bef == snap_aft and keys[boundary - 1][0] == ts_bef:
            return None
        chain = self._chain
        if boundary == len(chain):
            future: Tuple[Version, ...] = ()
            overlap: Tuple[Version, ...] = ()
        else:
            future_acc: List[Version] = []
            overlap_acc: List[Version] = []
            for idx in range(boundary, len(chain)):
                # keys[idx][1] is the version's effective before-timestamp.
                if snap_aft <= keys[idx][1]:
                    future_acc.append(chain[idx])
                else:
                    overlap_acc.append(chain[idx])
            future = tuple(future_acc)
            overlap = tuple(overlap_acc)
        prefix = self._prefix_memo.get(boundary)
        if prefix is None:
            prefix = self._prefix_memo[boundary] = self._compute_prefix(boundary)
        return (future, overlap, prefix[0], prefix[1], prefix[2])

    def _compute_prefix(self, boundary: int) -> tuple:
        """Pivot / pivot-overlap / garbage for the ``boundary``-length
        prefix of definitely-before versions (chain order preserved)."""
        if not boundary:
            return (None, (), ())
        chain = self._chain
        if boundary == 1:
            return (chain[0], (), ())
        keys = self._keys
        # The pivot maximises (ts_aft, seq); the maximal-ts_aft run is the
        # tail of the prefix, found by one bisect.
        max_aft = keys[boundary - 1][0]
        run_start = bisect_left(keys, (max_aft,), 0, boundary)
        pivot = chain[run_start]
        for version in chain[run_start + 1 : boundary]:
            if version.seq > pivot.seq:
                pivot = version
        pivot_interval = pivot.effective_install
        # Versions whose ts_aft <= pivot.ts_bef definitely precede the
        # pivot: garbage without an overlap test.  Only the (short) run
        # after that split needs the exact interval check.
        split = bisect_right(
            keys, (pivot_interval.ts_bef, _INF, _INF, _INF), 0, boundary
        )
        garbage: List[Version] = []
        pivot_overlap: List[Version] = []
        for version in chain[:split]:
            if version is not pivot:
                garbage.append(version)
        for version in chain[split:boundary]:
            if version is pivot:
                continue
            if version.effective_install.overlaps(pivot_interval):
                pivot_overlap.append(version)
            else:
                garbage.append(version)
        return (pivot, tuple(pivot_overlap), tuple(garbage))

    @staticmethod
    def _collapse_ordered(
        versions: List[Version], oracle: OrderOracle
    ) -> List[Version]:
        """Drop pre-snapshot versions that are *known* (via deduced ww
        order) to be overwritten by another pre-snapshot version."""
        survivors: List[Version] = []
        for version in versions:
            overwritten = any(
                other is not version and oracle(version, other)
                for other in versions
            )
            if not overwritten:
                survivors.append(version)
        return survivors if survivors else versions

    def candidate_set(
        self,
        snapshot: Interval,
        order_oracle: Optional[OrderOracle] = None,
    ) -> Tuple[Version, ...]:
        return self.classify(snapshot, order_oracle).candidates

    # -- diagnosis helpers --------------------------------------------------------

    def find_matching_committed(self, observed: ColumnMap) -> List[Version]:
        return [v for v in self._chain if v.matches(observed)]

    def find_matching_pending(self, observed: ColumnMap) -> List[Version]:
        matches: List[Version] = []
        for versions in self._pending.values():
            matches.extend(v for v in versions if reads_match(observed, v.columns))
        matches.extend(
            v for v in self._aborted if reads_match(observed, v.columns)
        )
        return matches

    # -- garbage collection ----------------------------------------------------------

    def prune_garbage(
        self,
        horizon: Interval,
        can_prune_txn: Callable[[str], bool],
    ) -> int:
        """Drop versions that are *garbage* with respect to the earliest
        still-relevant snapshot interval (Section V-A GC).

        A version may be pruned when it is classified garbage against
        ``horizon`` (definitely overwritten before any live snapshot) and
        its installing transaction is releasable according to
        ``can_prune_txn`` (i.e. no other mechanism still needs it).  The
        cumulative images of surviving versions already fold in the pruned
        history, so reads verify identically afterwards.
        """
        if self._aborted:
            self._aborted.clear()
        # Garbage needs at least two versions definitely before the horizon
        # (a pivot and something it overwrote); most chains fail this cheap
        # test and are skipped without a full classification.  The key
        # index answers it in O(1): the prefix of definitely-before
        # versions has length >= 2 iff the second-smallest after-timestamp
        # clears the horizon.
        if self._use_index:
            keys = self._keys
            if len(keys) < 2 or keys[1][0] > horizon.ts_bef:
                return 0
            if len(keys) == 2:
                # The steady-state shape under GC: two versions, both
                # definitely before the horizon.  When the newer one's
                # after-timestamp is strictly larger it is unambiguously
                # the pivot, and the older version is garbage iff it
                # definitely precedes the pivot -- no classification
                # needed.  (An after-timestamp tie falls through: the
                # pivot then depends on the seq tie-break.)
                first, second = self._chain
                first_key, second_key = keys
                if first_key[0] < second_key[0]:
                    if first_key[0] <= second_key[1] and (
                        can_prune_txn(first.txn_id) or first.is_initial
                    ):
                        self._chain = [second]
                        self._keys = [chain_sort_key(second)]
                        self._invalidate()
                        return 1
                    return 0
        else:
            old_enough = 0
            for version in self._chain:
                if version.effective_install.precedes(horizon):
                    old_enough += 1
                    if old_enough >= 2:
                        break
            if old_enough < 2:
                return 0
        classification = self.classify(horizon)
        prunable = {
            v.seq
            for v in classification.garbage
            if can_prune_txn(v.txn_id) or v.is_initial
        }
        # Never prune the most recent garbage version if it would leave the
        # chain empty -- a read far in the future still needs one base image.
        if self._chain and len(prunable) >= len(self._chain):
            newest = max(self._chain, key=lambda v: v.seq)
            prunable.discard(newest.seq)
        if not prunable:
            return 0
        kept = [v for v in self._chain if v.seq not in prunable]
        pruned = len(self._chain) - len(kept)
        self._chain = kept
        if self._use_index:
            self._keys = [chain_sort_key(v) for v in kept]
        self._invalidate()
        self._aborted.clear()
        return pruned
