"""Mechanism plugin layer: the lifecycle protocol and registry.

Section II-B's observation -- every commercial isolation level is an
assembly of four mechanisms (CR, ME, FUW, SC) -- used to be hardwired into
the :class:`~repro.core.verifier.Verifier` as four attributes.  This module
turns each mechanism into a plugin:

* :class:`MechanismVerifier` is the lifecycle contract the orchestrator
  drives (``on_read`` / ``on_write`` / ``on_terminal`` / ``on_gc``, plus
  ``on_dependency`` for bus subscribers);
* :func:`register_mechanism` adds an implementation to the global registry
  with a dispatch ``order`` and an ``applies(spec)`` predicate;
* :func:`build_mechanisms` assembles the ordered mechanism list for one
  :class:`~repro.core.spec.IsolationSpec`, honouring per-name overrides
  (the parallel path swaps the certifier for a graph-only recorder this
  way, and future predicate/SSI variants drop in without touching the
  orchestrator).

Dispatch order is semantically load-bearing: ME and FUW deduce the ww
edges that confirm version adjacency before the Fig. 9 rw derivation and
the CR checks consume them, and the certifier observes every dependency
through the bus rather than through trace hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .bus import DependencyBus
    from .spec import IsolationSpec
    from .state import TxnState, VerifierState
    from .trace import Trace
    from .versions import Version


class MechanismVerifier:
    """Lifecycle contract for one pluggable mechanism verifier.

    Subclasses override the hooks they care about; the defaults are no-ops
    so a mechanism only pays for the events it consumes.  The orchestrator
    guarantees the calling discipline of Algorithm 2: data-operation hooks
    fire for successful operations in dispatch order, ``on_terminal`` fires
    exactly once per transaction after the orchestrator has mutated the
    shared mirrored state (versions installed or discarded), and ``on_gc``
    fires when the garbage collector prunes a transaction node.
    """

    #: short mechanism tag; keys ``stats.mechanism_seconds`` buckets.
    name: str = "?"
    #: whether the mechanism consumes the dependency stream from the bus.
    subscribes: bool = False
    #: bus delivery priority (lower delivers first) for subscribers.
    subscribe_priority: int = 0
    #: whether ``on_terminal`` wall time is accumulated per mechanism.
    timed: bool = True

    def on_read(self, trace: "Trace", txn: "TxnState") -> None:
        """A successful read trace was dispatched for ``txn``."""

    def on_write(self, trace: "Trace", txn: "TxnState") -> None:
        """A successful write trace was dispatched for ``txn``."""

    def on_terminal(
        self, txn: "TxnState", trace: "Trace", installed: List["Version"]
    ) -> None:
        """``txn`` finished.  ``txn.status`` is final, and ``installed``
        holds the versions its commit installed (empty on abort)."""

    def on_dependency(self, dep) -> None:
        """A dependency was published on the bus (subscribers only)."""

    def on_gc(self, txn_id: str) -> None:
        """Transaction ``txn_id`` was pruned as garbage (Definition 4)."""


@dataclass
class MechanismContext:
    """Everything a mechanism factory may wire itself to."""

    state: "VerifierState"
    spec: "IsolationSpec"
    bus: "DependencyBus"
    #: orchestrator options (``minimize_candidates``,
    #: ``check_aborted_reads``, ...) forwarded verbatim.
    options: Dict[str, Any] = field(default_factory=dict)
    #: cross-mechanism wiring surface: factories built earlier in the
    #: dispatch order stash collaborators here for later ones (e.g. the
    #: Fig. 9 deriver exposes ``on_read_match`` for CR).
    shared: Dict[str, Any] = field(default_factory=dict)
    #: observability registry (``docs/observability.md``).  Defaults to the
    #: shared disabled registry, so mechanisms may resolve instrument
    #: handles unconditionally at build time and pay a no-op per event.
    metrics: Any = None

    def __post_init__(self) -> None:
        if self.metrics is None:
            from .metrics import NULL_REGISTRY

            self.metrics = NULL_REGISTRY


MechanismFactory = Callable[[MechanismContext], MechanismVerifier]


@dataclass(frozen=True)
class _RegistryEntry:
    name: str
    factory: MechanismFactory
    order: int
    applies: Callable[["IsolationSpec"], bool]


_REGISTRY: Dict[str, _RegistryEntry] = {}


def register_mechanism(
    name: str,
    order: int,
    applies: Optional[Callable[["IsolationSpec"], bool]] = None,
) -> Callable[[Any], Any]:
    """Class/function decorator registering a mechanism factory.

    ``order`` fixes the position in the dispatch sequence (ME=10, FUW=20,
    RW-DERIVE=30, CR=40, SC=50 for the built-ins).  ``applies`` decides,
    per isolation spec, whether the mechanism joins the assembly; the four
    paper mechanisms always apply -- even when a spec does not *claim* a
    mechanism, its deductions feed the others (Fig. 3) -- but spec-gated
    plugins (e.g. an engine-specific predicate-lock checker) can opt out.

    Decorating a class uses its ``build`` classmethod when present, else
    ``cls(ctx)``; decorating a function uses the function itself.
    """

    def decorate(target):
        if isinstance(target, type):
            factory = getattr(target, "build", None)
            if factory is None:
                factory = lambda ctx: target(ctx)  # noqa: E731
        else:
            factory = target
        _REGISTRY[name] = _RegistryEntry(
            name=name,
            factory=factory,
            order=order,
            applies=applies or (lambda spec: True),
        )
        return target

    return decorate


def registered_mechanisms() -> List[str]:
    """Registered mechanism names in dispatch order."""
    return [e.name for e in sorted(_REGISTRY.values(), key=lambda e: e.order)]


def unregister_mechanism(name: str) -> None:
    """Remove a registered mechanism (test/plugin teardown)."""
    _REGISTRY.pop(name, None)


def build_mechanisms(
    ctx: MechanismContext,
    overrides: Optional[Mapping[str, MechanismFactory]] = None,
    only: Optional[Sequence[str]] = None,
) -> List[MechanismVerifier]:
    """Assemble the ordered mechanism list for ``ctx.spec``.

    ``overrides`` substitutes the factory for a registry name without
    re-registering globally (the parallel path swaps "SC" for a graph-only
    recorder per shard).  ``only`` restricts the assembly to a subset of
    names.  Mechanisms with ``subscribes=True`` are attached to the bus in
    ``subscribe_priority`` order, independently of dispatch order.
    """
    overrides = dict(overrides or {})
    entries = sorted(_REGISTRY.values(), key=lambda e: e.order)
    built: List[MechanismVerifier] = []
    for entry in entries:
        if only is not None and entry.name not in only:
            continue
        if not entry.applies(ctx.spec):
            continue
        factory = overrides.pop(entry.name, entry.factory)
        mechanism = factory(ctx)
        built.append(mechanism)
        if mechanism.subscribes:
            ctx.bus.subscribe(
                mechanism.name,
                mechanism.on_dependency,
                priority=mechanism.subscribe_priority,
                timed=mechanism.timed,
            )
    if overrides:
        unknown = ", ".join(sorted(overrides))
        raise KeyError(f"mechanism overrides for unregistered names: {unknown}")
    return built
