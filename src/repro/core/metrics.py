"""Observability: a process-local metrics registry and a span tracer.

Leopard's headline claim is *efficiency* (Figs. 10-12 measure pipeline
sorting throughput, verification latency and memory under load), so the
verifier needs a way to see where time and memory go inside the Tracer
pipeline, the :class:`~repro.core.bus.DependencyBus`, the four mechanism
verifiers and the sharded parallel path.  This module is that substrate:

* :class:`MetricsRegistry` -- counters, gauges and histogram timers.
  Instruments are *handles* (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`): hot paths resolve them once and then pay a single
  attribute increment per event.  A registry built with ``enabled=False``
  (or the shared :data:`NULL_REGISTRY`) hands out one immutable no-op
  instrument, so disabled instrumentation has zero side effects and
  near-zero cost;
* :class:`SpanTracer` -- a structured begin/end event tracer.  ``with
  tracer.span("verify"):`` emits two JSONL-serialisable events carrying a
  monotonic timestamp, nesting depth and (on the end event) the span
  duration;
* :func:`run_stats` -- the one stats schema every surface emits: the CLI's
  ``verify --stats`` / ``--stats-json``, the ``benchmarks/`` stats hook and
  :meth:`OnlineVerifier.snapshot` all produce this dict, so a reading of
  one output transfers to the others (documented in
  ``docs/observability.md``).

Metric naming: ``component.noun.verb`` (e.g. ``bus.deps.accepted``), with
labels rendered into the snapshot key as ``name{k=v,...}`` in sorted label
order.  Durations are seconds (monotonic clock); sizes are counts of
structures, not bytes.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullInstrument",
    "SpanTracer",
    "metric_key",
    "parse_metric_key",
    "phase_breakdown",
    "render_stats",
    "run_stats",
]


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical snapshot key: ``name`` or ``name{k=v,...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`metric_key` (labels come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value, with a convenience high-watermark setter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def high_watermark(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Streaming summary (count / total / min / max) of observed values.

    A full bucketed histogram is deliberately avoided: the hot paths
    observe per-trace, and four scalar updates are the cheapest summary
    that still answers "how many, how much, how skewed".  ``time()``
    returns a context manager observing elapsed monotonic seconds.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def time(self) -> "_HistogramTimer":
        return _HistogramTimer(self)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": (self.total / self.count) if self.count else 0.0,
        }


class _HistogramTimer:
    """Context manager feeding wall-clock seconds into a histogram."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._start)


class NullInstrument:
    """The single no-op stand-in for every instrument of a disabled
    registry.  Also usable as a context manager, so ``with
    registry.timer(...)`` costs nothing when metrics are off."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def high_watermark(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "NullInstrument":
        return self

    def __enter__(self) -> "NullInstrument":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL = NullInstrument()


class MetricsRegistry:
    """Process-local registry of named, labelled instruments.

    ``counter`` / ``gauge`` / ``histogram`` return live handles -- resolve
    them once outside the hot loop.  ``inc`` / ``observe`` / ``set_gauge``
    are one-shot conveniences for cold paths.  With ``enabled=False`` every
    accessor returns the shared :class:`NullInstrument` and the registry
    records nothing at all (its :meth:`snapshot` stays empty).
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument handles -------------------------------------------------

    def counter(self, name: str, **labels):
        if not self.enabled:
            return _NULL
        key = metric_key(name, labels)
        handle = self._counters.get(key)
        if handle is None:
            handle = self._counters[key] = Counter()
        return handle

    def gauge(self, name: str, **labels):
        if not self.enabled:
            return _NULL
        key = metric_key(name, labels)
        handle = self._gauges.get(key)
        if handle is None:
            handle = self._gauges[key] = Gauge()
        return handle

    def histogram(self, name: str, **labels):
        if not self.enabled:
            return _NULL
        key = metric_key(name, labels)
        handle = self._histograms.get(key)
        if handle is None:
            handle = self._histograms[key] = Histogram()
        return handle

    # -- one-shot conveniences ---------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels) -> None:
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        self.histogram(name, **labels).observe(value)

    def timer(self, name: str, **labels):
        """Context manager timing a block into ``name``'s histogram."""
        return self.histogram(name, **labels).time()

    # -- reading ------------------------------------------------------------

    def counter_value(self, name: str, **labels) -> int:
        handle = self._counters.get(metric_key(name, labels))
        return handle.value if handle is not None else 0

    def counters_with_name(self, name: str) -> Dict[str, int]:
        """All counter keys for ``name`` (any labels) -> value."""
        out: Dict[str, int] = {}
        for key, handle in self._counters.items():
            base, _ = parse_metric_key(key)
            if base == name:
                out[key] = handle.value
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of every instrument (JSON-serialisable)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.summary() for k, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one (the
        parallel coordinator absorbs per-shard worker registries this way).
        Counters and histograms add; gauges keep the high watermark."""
        if not self.enabled:
            return
        for key, value in snapshot.get("counters", {}).items():
            name, labels = parse_metric_key(key)
            self.counter(name, **labels).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = parse_metric_key(key)
            self.gauge(name, **labels).high_watermark(value)
        for key, summary in snapshot.get("histograms", {}).items():
            name, labels = parse_metric_key(key)
            hist = self.histogram(name, **labels)
            count = int(summary.get("count", 0))
            if not count:
                continue
            hist.count += count
            hist.total += summary.get("total", 0.0)
            if summary.get("min", 0.0) < hist.min:
                hist.min = summary["min"]
            if summary.get("max", 0.0) > hist.max:
                hist.max = summary["max"]


#: shared disabled registry: the default wiring target of every
#: instrumented component, so un-instrumented runs stay no-ops.
NULL_REGISTRY = MetricsRegistry(enabled=False)


# -- span tracing -----------------------------------------------------------


class _Span:
    """Context manager emitting begin/end events into its tracer."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_depth")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._depth = 0

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._enter()
        self._start = time.perf_counter()
        event = {
            "ev": "begin",
            "span": self.name,
            "depth": self._depth,
            "ts": self._start,
        }
        if self.attrs:
            event.update(self.attrs)
        self._tracer._emit(event)
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        event = {
            "ev": "end",
            "span": self.name,
            "depth": self._depth,
            "ts": end,
            "dur": end - self._start,
        }
        self._tracer._emit(event)
        self._tracer._exit()


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class SpanTracer:
    """Structured JSONL event tracer (begin/end spans with durations).

    Events accumulate in :attr:`events` (plain dicts) and can additionally
    stream to a ``sink`` callable or be dumped with :meth:`write_jsonl`.
    Spans nest: the ``depth`` field records the nesting level at begin and
    end, and well-formedness (every begin matched by an end at the same
    depth, properly nested) is what the test suite pins down.  A tracer
    built with ``enabled=False`` emits nothing.
    """

    def __init__(self, enabled: bool = True, sink=None):
        self.enabled = enabled
        self.events: List[Dict[str, Any]] = []
        self._sink = sink
        self._depth = 0

    def span(self, name: str, **attrs):
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def _enter(self) -> int:
        depth = self._depth
        self._depth += 1
        return depth

    def _exit(self) -> None:
        self._depth -= 1

    def _emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(event) for event in self.events)

    def write_jsonl(self, path) -> None:
        from pathlib import Path

        text = self.to_jsonl()
        Path(path).write_text(text + ("\n" if text else ""), encoding="utf-8")


# -- the shared stats schema ------------------------------------------------

#: phase keys of the Fig. 11 wall-time breakdown, in reporting order.
PHASES = ("pipeline-sort", "ME", "FUW", "RW-DERIVE", "CR", "SC", "merge")


def phase_breakdown(
    mechanism_seconds: Mapping[str, float],
    pipeline_sort_seconds: float = 0.0,
    merge_seconds: float = 0.0,
) -> Dict[str, float]:
    """Attribute total wall time across pipeline-sort, the mechanism
    verifiers and the parallel merge (absent phases report 0.0)."""
    breakdown = {phase: 0.0 for phase in PHASES}
    breakdown["pipeline-sort"] = pipeline_sort_seconds
    breakdown["merge"] = merge_seconds
    for name, seconds in mechanism_seconds.items():
        breakdown[name] = breakdown.get(name, 0.0) + seconds
    return breakdown


def run_stats(
    report,
    metrics: Optional[MetricsRegistry] = None,
    pipeline_sort_seconds: float = 0.0,
    merge_seconds: Optional[float] = None,
    wall_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """The one stats document every operator surface emits.

    ``report`` is a :class:`~repro.core.report.VerificationReport`;
    ``metrics`` the registry the run was instrumented with (omitted or
    disabled -> empty instrument maps).  ``merge_seconds`` defaults to the
    registry's ``parallel.merge.seconds`` histogram total, so parallel runs
    need not thread the value through by hand.
    """
    stats = report.stats
    if merge_seconds is None:
        merge_seconds = 0.0
        if metrics is not None and metrics.enabled:
            hist = metrics._histograms.get("parallel.merge.seconds")
            if hist is not None:
                merge_seconds = hist.total
    document: Dict[str, Any] = {
        "schema": "repro.stats/v1",
        "isolation_level": report.isolation_level,
        "ok": report.ok,
        "violations": len(report.descriptor),
        "witnesses": report.descriptor.raw_count,
        "stats": {
            "traces_processed": stats.traces_processed,
            "txns_committed": stats.txns_committed,
            "txns_aborted": stats.txns_aborted,
            "reads_checked": stats.reads_checked,
            "writes_checked": stats.writes_checked,
            "deps_wr": stats.deps_wr,
            "deps_ww": stats.deps_ww,
            "deps_rw": stats.deps_rw,
            "deps_so": stats.deps_so,
            "conflict_pairs": stats.conflict_pairs,
            "overlapped_pairs": stats.overlapped_pairs,
            "deduced_overlapped_pairs": stats.deduced_overlapped_pairs,
            "gc_versions_pruned": stats.gc_versions_pruned,
            "gc_locks_pruned": stats.gc_locks_pruned,
            "gc_txns_pruned": stats.gc_txns_pruned,
            "mechanism_seconds": dict(stats.mechanism_seconds),
        },
        "phases": phase_breakdown(
            stats.mechanism_seconds,
            pipeline_sort_seconds=pipeline_sort_seconds,
            merge_seconds=merge_seconds,
        ),
        "metrics": (
            metrics.snapshot()
            if metrics is not None
            else {"counters": {}, "gauges": {}, "histograms": {}}
        ),
    }
    if wall_seconds is not None:
        document["wall_seconds"] = wall_seconds
    return document


def render_stats(document: Mapping[str, Any]) -> str:
    """Human-readable rendering of a :func:`run_stats` document (what
    ``python -m repro verify --stats`` prints under the report)."""
    lines = ["-- stats --"]
    phases = document.get("phases", {})
    lines.append(
        "phase seconds   : "
        + " ".join(f"{phase}={phases.get(phase, 0.0):.4f}" for phase in PHASES)
    )
    if "wall_seconds" in document:
        lines.append(f"wall seconds    : {document['wall_seconds']:.4f}")
    metrics = document.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters        :")
        for key, value in counters.items():
            lines.append(f"  {key} = {value}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges          :")
        for key, value in gauges.items():
            lines.append(f"  {key} = {value:g}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms      :")
        for key, summary in histograms.items():
            lines.append(
                f"  {key}: count={summary['count']} total={summary['total']:.4f}"
                f" mean={summary['mean']:.6f} max={summary['max']:.6f}"
            )
    return "\n".join(lines)
