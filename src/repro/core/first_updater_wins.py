"""First-updater-wins verification (Algorithm 2, lines 18-26).

Two committed transactions that both updated a record are *concurrent* when
neither took its snapshot after the other's commit; under FUW (snapshot
isolation's write rule) one of them must have been aborted, so observing
both commits is a lost-update violation (Fig. 8a).  When exactly one serial
order (commit-before-snapshot) is feasible, a ``ww`` dependency is deduced
(Fig. 8b, Theorem 4).

The pairwise interval check doubles as the paper's Fig. 3 base case: even
when the spec claims no FUW (so lost updates are legal and never flagged),
the deduced ``ww`` edges feed the other mechanisms -- this is how engines
verified through CR+SC alone (CockroachDB, FoundationDB) obtain their write
ordering.
"""

from __future__ import annotations

from typing import Callable, List

from .dependencies import Dependency, DepType
from .intervals import Interval
from .mechanism import MechanismContext, MechanismVerifier, register_mechanism
from .report import Mechanism, Violation, ViolationKind
from .spec import CertifierKind, IsolationSpec
from .state import TxnState, VerifierState
from .trace import INIT_TXN
from .versions import Version

EmitFn = Callable[[Dependency], None]


@register_mechanism("FUW", order=20)
class FirstUpdaterWinsVerifier(MechanismVerifier):
    """Mirrors the write-conflict (first updater/committer wins) rule."""

    name = "FUW"

    def __init__(
        self,
        state: VerifierState,
        spec: IsolationSpec,
        emit: EmitFn,
        metrics=None,
        emit_many=None,
    ):
        from .metrics import NULL_REGISTRY

        self._state = state
        self._spec = spec
        self._emit = emit
        #: batch publication (``bus.publish_many``): ww deductions are
        #: collected across a commit's pair checks and delivered as one
        #: group -- the checks read only intervals and transaction
        #: metadata, so deferral preserves the dependency sequence.
        self._emit_many = emit_many
        #: reused deduction buffer for the per-commit batch.
        self._dep_batch: list = []
        registry = metrics if metrics is not None else NULL_REGISTRY
        #: committed-writer pairs whose snapshot/commit interval orders
        #: were checked (Fig. 8 / Theorem 4).
        self._m_pairs = registry.counter("fuw.interval_pairs.checked")
        self._m_writes = registry.counter("fuw.writes.checked")
        self._m_deduced = registry.counter("fuw.ww.deduced")

    @classmethod
    def build(cls, ctx: MechanismContext) -> "FirstUpdaterWinsVerifier":
        return cls(
            ctx.state,
            ctx.spec,
            ctx.bus.publish,
            metrics=ctx.metrics,
            emit_many=ctx.bus.publish_many,
        )

    def on_terminal(
        self, txn: TxnState, trace, installed: List[Version]
    ) -> None:
        if txn.committed:
            self.on_commit(txn, installed)

    def on_commit(self, txn: TxnState, installed: List[Version]) -> None:
        """Check each newly installed version against every other committed
        version of the same record.  Aborted transactions never reach here:
        their rolled-back updates cannot lose anybody's update."""
        state = self._state
        stats = state.stats
        m_writes = self._m_writes
        chains = state.chains
        txn_id = txn.txn_id
        if not installed:
            return
        for version in installed:
            stats.writes_checked += 1
            m_writes.inc()
            # The chain exists: ``installed`` came out of it at commit.
            chain = chains[version.key]
            for other in chain.iter_committed():
                other_txn_id = other.txn_id
                if other_txn_id == txn_id or other_txn_id == INIT_TXN:
                    continue
                self._check_pair(txn, version, other)
        batch = self._dep_batch
        if batch:
            if self._emit_many is not None:
                self._emit_many(batch)
            else:
                for dep in batch:
                    self._emit(dep)
            batch.clear()

    # -- pair analysis -------------------------------------------------------------

    def _check_pair(self, txn: TxnState, version: Version, other: Version) -> None:
        other_txn = self._state.get_txn(other.txn_id)
        if other_txn is None or other_txn.first_interval is None:
            # The peer predates the GC horizon: it is definitely older, its
            # node left the dependency graph, and by Theorem 5 it cannot be
            # part of any future violation.
            return
        snapshot = txn.snapshot_interval()
        commit = txn.terminal_interval
        other_snapshot = other_txn.snapshot_interval()
        other_commit = other.commit
        if snapshot is None or commit is None or other_commit is None:
            return
        # An order "u then t" is feasible iff u's commit can precede t's
        # snapshot generation; symmetrically for "t then u".
        other_first = other_commit.can_precede(snapshot)
        self_first = commit.can_precede(other_snapshot)
        overlapped = self._spans_overlap(snapshot, commit, other_snapshot, other_commit)
        self._state.stats.conflict_pairs += 1
        self._m_pairs.inc()
        if overlapped:
            self._state.stats.overlapped_pairs += 1
        if not other_first and not self_first:
            if self._spec.fuw:
                mechanism, detail = Mechanism.FIRST_UPDATER_WINS, (
                    "every order places each snapshot before the other's "
                    "commit"
                )
            elif self._spec.certifier is CertifierKind.FIRST_COMMITTER:
                # Percolator-style engines enforce the same rule in their
                # commit certifier rather than at write time.
                mechanism, detail = Mechanism.SERIALIZATION_CERTIFIER, (
                    "the first-committer-wins certifier must have aborted "
                    "the later writer"
                )
            else:
                return  # lost updates are permitted at this level
            self._state.descriptor.record(
                Violation(
                    mechanism=mechanism,
                    kind=ViolationKind.LOST_UPDATE,
                    txns=tuple(sorted((txn.txn_id, other.txn_id))),
                    key=version.key,
                    details=(
                        f"{txn.txn_id} and {other.txn_id} committed "
                        f"concurrent updates: {detail}"
                    ),
                    evidence={
                        "snapshot": snapshot,
                        "commit": commit,
                        "other_snapshot": other_snapshot,
                        "other_commit": other_commit,
                    },
                )
            )
            return
        if other_first and self_first:
            # Both serial orders remain feasible: order uncertain.
            return
        if overlapped:
            self._state.stats.deduced_overlapped_pairs += 1
        if other_first:
            src, dst = other.txn_id, txn.txn_id
        else:
            src, dst = txn.txn_id, other.txn_id
        self._m_deduced.inc()
        self._dep_batch.append(
            Dependency(
                src=src,
                dst=dst,
                dep_type=DepType.WW,
                key=version.key,
                source=Mechanism.FIRST_UPDATER_WINS,
            )
        )

    @staticmethod
    def _spans_overlap(
        snapshot: Interval,
        commit: Interval,
        other_snapshot: Interval,
        other_commit: Interval,
    ) -> bool:
        """Whether the two transactions' execution spans (snapshot begin to
        commit end) overlap."""
        return not (
            commit.ts_aft <= other_snapshot.ts_bef
            or other_commit.ts_aft <= snapshot.ts_bef
        )
