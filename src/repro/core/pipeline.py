"""Two-level pipeline for sorting massive trace streams (Section IV-C).

Clients generate traces concurrently; each client's own stream is naturally
sorted by before-timestamp, but the union is not.  The verifier needs the
union in monotonically increasing ``ts_bef`` order (Theorem 1).  The paper's
*two-level pipeline* achieves this with:

* a **local buffer** per client that batches its stream asynchronously, and
* a **global buffer** (min-heap) that fetches batches from the local buffers
  round by round, dispatching every trace whose before-timestamp is below
  the **watermark** -- the smallest before-timestamp still sitting in any
  local buffer.

Two optimisations from the paper are implemented and individually
switchable (they are compared in the Fig. 10 experiment):

1. *laggard-first fetching*: fetch from the local buffer with the smallest
   head timestamp first, so one slow client cannot stall the watermark while
   traces from fast clients pile up in the heap;
2. *flow control*: fetch roughly as many traces into the heap as were
   dispatched out of it, keeping the heap size stable.

A :class:`NaiveGlobalSorter` baseline (collect everything, sort once) is
provided for the same comparison.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .intervals import POS_INF
from .metrics import NULL_REGISTRY, MetricsRegistry
from .trace import Trace


class ClientFeed:
    """Adapter exposing one client's trace stream batch by batch.

    The wrapped iterable must yield traces in non-decreasing ``ts_bef``
    order -- which is guaranteed for any single client, since a client
    observes its own operations sequentially.  ``batch_size`` models the
    paper's slicing of each client stream into batches (the experiments use
    0.5 s windows; a count works identically for a simulator).
    """

    def __init__(self, traces: Iterable[Trace], batch_size: int = 64):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._iter = iter(traces)
        self._batch_size = batch_size
        self._exhausted = False
        self._last_ts = -POS_INF

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def next_batch(self) -> List[Trace]:
        """Return up to ``batch_size`` traces; empty means exhausted."""
        batch: List[Trace] = []
        for _ in range(self._batch_size):
            try:
                trace = next(self._iter)
            except StopIteration:
                self._exhausted = True
                break
            if trace.ts_bef < self._last_ts:
                raise ValueError(
                    "client stream is not sorted by before-timestamp: "
                    f"{trace.ts_bef} after {self._last_ts}"
                )
            self._last_ts = trace.ts_bef
            batch.append(trace)
        return batch


@dataclass
class PipelineStats:
    """Bookkeeping for the Fig. 10 experiment."""

    dispatched: int = 0
    rounds: int = 0
    peak_heap_size: int = 0
    peak_buffered: int = 0
    fetches: int = 0

    def observe(self, heap_size: int, buffered: int) -> None:
        self.peak_heap_size = max(self.peak_heap_size, heap_size)
        self.peak_buffered = max(self.peak_buffered, heap_size + buffered)


class _LocalBuffer:
    """Per-client staging area between the client feed and the heap."""

    __slots__ = ("feed", "pending")

    def __init__(self, feed: ClientFeed):
        self.feed = feed
        self.pending: List[Trace] = []

    def refill(self) -> None:
        if not self.pending and not self.feed.exhausted:
            self.pending = self.feed.next_batch()

    @property
    def head_ts(self) -> float:
        """Before-timestamp of the oldest staged trace (+inf when drained)."""
        if self.pending:
            return self.pending[0].ts_bef
        return POS_INF

    @property
    def done(self) -> bool:
        return not self.pending and self.feed.exhausted


class TwoLevelPipeline:
    """Round-by-round trace dispatcher (Algorithm 1).

    Iterating over the pipeline yields all client traces in monotonically
    non-decreasing ``ts_bef`` order.  ``optimized=False`` disables the
    laggard-first fetching and flow control (the "w/o Opt" configuration of
    Fig. 10); the watermark protocol itself is always on, since it is what
    makes the output order correct.
    """

    def __init__(
        self,
        feeds: Sequence[ClientFeed],
        optimized: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if not feeds:
            raise ValueError("pipeline needs at least one client feed")
        self._locals = [_LocalBuffer(feed) for feed in feeds]
        self._heap: List[Tuple[float, int, Trace]] = []
        self._optimized = optimized
        self._last_dispatched_ts = -POS_INF
        self._last_round_dispatched = 0
        self.stats = PipelineStats()
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_fetch = self._metrics.histogram("pipeline.fetch.seconds")
        self._m_heap = self._metrics.histogram("pipeline.heap.size")
        self._m_dispatched = self._metrics.counter("pipeline.traces.dispatched")
        self._m_lag = self._metrics.gauge("pipeline.watermark.lag")
        self._max_pushed_ts = -POS_INF

    # -- internals ---------------------------------------------------------

    def _watermark(self) -> float:
        return min(buf.head_ts for buf in self._locals)

    def _buffered(self) -> int:
        return sum(len(buf.pending) for buf in self._locals)

    def _push(self, trace: Trace) -> None:
        if trace.ts_bef > self._max_pushed_ts:
            self._max_pushed_ts = trace.ts_bef
        heapq.heappush(self._heap, (trace.ts_bef, trace.trace_id, trace))

    def _observe_round(self) -> None:
        """Per-round gauges/histograms (instrumented runs only): heap
        size, per-client staged depth, and the watermark lag -- how far
        ahead of the watermark fetched traces have piled up while a
        laggard client holds dispatch back."""
        self._m_heap.observe(len(self._heap))
        for index, buf in enumerate(self._locals):
            self._metrics.gauge(
                "pipeline.client.depth", client=index
            ).high_watermark(len(buf.pending))
        if self._heap:
            lag = self._max_pushed_ts - self._watermark()
            if lag > 0:
                self._m_lag.high_watermark(lag)

    def _fetch_round(self) -> None:
        """One fetch stage: move staged traces into the heap and restage.

        The unoptimised variant drains every local buffer each round.  The
        optimised variant fetches laggard-first and stops once it has moved
        roughly as many traces as the previous round dispatched, keeping the
        heap size bounded by the dispatch rate.
        """
        self.stats.rounds += 1
        instrumented = self._metrics.enabled
        if instrumented:
            fetch_start = time.perf_counter()
        buffers = [buf for buf in self._locals if not buf.done]
        for buf in buffers:
            buf.refill()
        buffers = [buf for buf in self._locals if buf.pending]
        if self._optimized:
            buffers.sort(key=lambda buf: buf.head_ts)
            budget = max(self._last_round_dispatched, 1)
            fetched = 0
            for buf in buffers:
                take = buf.pending
                buf.pending = []
                for trace in take:
                    self._push(trace)
                fetched += len(take)
                self.stats.fetches += 1
                buf.refill()
                if fetched >= budget:
                    break
        else:
            for buf in buffers:
                for trace in buf.pending:
                    self._push(trace)
                self.stats.fetches += 1
                buf.pending = []
                buf.refill()
        self.stats.observe(len(self._heap), self._buffered())
        self._last_round_dispatched = 0
        if instrumented:
            self._m_fetch.observe(time.perf_counter() - fetch_start)
            self._observe_round()

    def _all_done(self) -> bool:
        return all(buf.done for buf in self._locals)

    # -- public API ---------------------------------------------------------

    def __iter__(self) -> Iterator[Trace]:
        # Prime the local buffers so the first watermark is meaningful.
        for buf in self._locals:
            buf.refill()
        self.stats.observe(len(self._heap), self._buffered())
        while True:
            watermark = self._watermark()
            while self._heap and self._heap[0][0] <= watermark:
                _, _, trace = heapq.heappop(self._heap)
                if trace.ts_bef < self._last_dispatched_ts:
                    raise AssertionError(
                        "pipeline dispatched out of order"
                    )  # pragma: no cover - guarded by Theorem 1
                self._last_dispatched_ts = trace.ts_bef
                self.stats.dispatched += 1
                self._last_round_dispatched += 1
                self._m_dispatched.inc()
                yield trace
            if self._all_done():
                # Drain: nothing remains in any local buffer or client.
                while self._heap:
                    _, _, trace = heapq.heappop(self._heap)
                    self._last_dispatched_ts = trace.ts_bef
                    self.stats.dispatched += 1
                    self._m_dispatched.inc()
                    yield trace
                return
            self._fetch_round()


class NaiveGlobalSorter:
    """Baseline of Section VI-A: buffer every trace, sort once, replay.

    Memory is proportional to the whole history and nothing can be
    dispatched until every client stream has terminated -- the two
    properties Fig. 10 shows the pipeline avoiding.
    """

    def __init__(self, feeds: Sequence[ClientFeed]):
        self._feeds = list(feeds)
        self.stats = PipelineStats()

    def __iter__(self) -> Iterator[Trace]:
        everything: List[Trace] = []
        for feed in self._feeds:
            while not feed.exhausted:
                everything.extend(feed.next_batch())
                self.stats.fetches += 1
        self.stats.peak_heap_size = len(everything)
        self.stats.peak_buffered = len(everything)
        everything.sort(key=Trace.sort_key)
        self.stats.rounds = 1
        for trace in everything:
            self.stats.dispatched += 1
            yield trace


def pipeline_from_client_streams(
    streams: Dict[int, Sequence[Trace]],
    batch_size: int = 64,
    optimized: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> TwoLevelPipeline:
    """Convenience constructor from ``{client_id: [traces...]}``."""
    feeds = [
        ClientFeed(traces, batch_size=batch_size)
        for _, traces in sorted(streams.items())
    ]
    return TwoLevelPipeline(feeds, optimized=optimized, metrics=metrics)


def sorted_traces(streams: Dict[int, Sequence[Trace]]) -> List[Trace]:
    """Eagerly sort all traces (test helper / tiny histories)."""
    merged: List[Trace] = []
    for traces in streams.values():
        merged.extend(traces)
    merged.sort(key=Trace.sort_key)
    return merged
