"""Two-level pipeline for sorting massive trace streams (Section IV-C).

Clients generate traces concurrently; each client's own stream is naturally
sorted by before-timestamp, but the union is not.  The verifier needs the
union in monotonically increasing ``ts_bef`` order (Theorem 1).  The paper's
*two-level pipeline* achieves this with:

* a **local buffer** per client that batches its stream asynchronously, and
* a **global buffer** (min-heap) that fetches batches from the local buffers
  round by round, dispatching every trace whose before-timestamp is below
  the **watermark** -- the smallest before-timestamp still sitting in any
  local buffer.

Two optimisations from the paper are implemented and individually
switchable (they are compared in the Fig. 10 experiment):

1. *laggard-first fetching*: fetch from the local buffer with the smallest
   head timestamp first, so one slow client cannot stall the watermark while
   traces from fast clients pile up in the heap;
2. *flow control*: fetch roughly as many traces into the heap as were
   dispatched out of it, keeping the heap size stable.

The global buffer itself comes in two interchangeable shapes:

* the historical **per-trace heap** (``run_merge=False`` or
  ``REPRO_PIPELINE_RUNS=0``): every fetched trace is pushed onto a min-heap
  and popped individually -- the reference path, kept verbatim;
* **sorted-run merging** (the default): each client batch arrives already
  sorted (the paper's Tracer slices per-client streams, Section IV-C), so
  the fetch stage keeps whole batches as *runs* and every dispatch round
  splices the run prefixes below the watermark with one bisect per run and
  merges them in a single k-way pass.  When only one run has an eligible
  prefix -- the common case under flow control -- the spliced slice is
  dispatched wholesale with no comparison work at all.

Both shapes fetch the same batches in the same order and dispatch the same
``ts_bef <= watermark`` set each round, and heap pop order over a fetched
set equals ``(ts_bef, trace_id)`` merge order over its runs, so their
outputs are identical trace-for-trace (ties included) -- the equivalence
the property tests pin down.

A :class:`NaiveGlobalSorter` baseline (collect everything, sort once) is
provided for the same comparison.
"""

from __future__ import annotations

import heapq
import os
import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from itertools import islice
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .intervals import POS_INF
from .metrics import NULL_REGISTRY, MetricsRegistry
from .trace import Trace


def _env_run_merge() -> bool:
    """``REPRO_PIPELINE_RUNS=0`` falls back to the per-trace heap path."""
    return os.environ.get("REPRO_PIPELINE_RUNS", "1") != "0"


class ClientFeed:
    """Adapter exposing one client's trace stream batch by batch.

    The wrapped iterable must yield traces in non-decreasing ``ts_bef``
    order -- which is guaranteed for any single client, since a client
    observes its own operations sequentially.  ``batch_size`` models the
    paper's slicing of each client stream into batches (the experiments use
    0.5 s windows; a count works identically for a simulator).
    """

    def __init__(
        self,
        traces: Iterable[Trace],
        batch_size: int = 64,
        client_id: Optional[int] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._iter = iter(traces)
        self._batch_size = batch_size
        self._exhausted = False
        self._last_ts = -POS_INF
        self._client_id = client_id
        self._consumed = 0

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def next_batch(self) -> List[Trace]:
        """Return up to ``batch_size`` traces; empty means exhausted."""
        return self.next_batch_ts()[0]

    def next_batch_ts(self) -> Tuple[List[Trace], List[float]]:
        """One batch plus its parallel ``ts_bef`` key array.

        The timestamps are needed anyway (monotonicity validation), so
        capturing them lets the pipeline bisect and merge over plain float
        lists instead of re-reading the ``ts_bef`` property per probe.
        The whole batch is sliced and validated with C-level passes; the
        per-trace scan only runs on the failure path to name the offender.
        """
        batch = list(islice(self._iter, self._batch_size))
        if len(batch) < self._batch_size:
            self._exhausted = True
        if not batch:
            return batch, []
        batch_ts = [t.interval.ts_bef for t in batch]
        if batch_ts[0] < self._last_ts or batch_ts != sorted(batch_ts):
            self._raise_unsorted(batch_ts)
        self._last_ts = batch_ts[-1]
        self._consumed += len(batch)
        return batch, batch_ts

    def _raise_unsorted(self, batch_ts: List[float]) -> None:
        last_ts = self._last_ts
        for offset, ts in enumerate(batch_ts):
            if ts < last_ts:
                who = (
                    f"client {self._client_id}"
                    if self._client_id is not None
                    else "client"
                )
                raise ValueError(
                    f"{who} stream is not sorted by before-timestamp at "
                    f"trace index {self._consumed + offset}: "
                    f"{ts} after {last_ts}"
                )
            last_ts = ts
        raise AssertionError("unreachable")  # pragma: no cover


@dataclass
class PipelineStats:
    """Bookkeeping for the Fig. 10 experiment."""

    dispatched: int = 0
    rounds: int = 0
    peak_heap_size: int = 0
    peak_buffered: int = 0
    fetches: int = 0
    #: run-merge path only: k-way merge rounds and single-run fast-path
    #: dispatches (both zero on the per-trace heap path).
    runs_merged: int = 0
    fastpath_runs: int = 0

    def observe(self, heap_size: int, buffered: int) -> None:
        self.peak_heap_size = max(self.peak_heap_size, heap_size)
        self.peak_buffered = max(self.peak_buffered, heap_size + buffered)


class _LocalBuffer:
    """Per-client staging area between the client feed and the heap."""

    __slots__ = ("feed", "pending", "pending_ts")

    def __init__(self, feed: ClientFeed):
        self.feed = feed
        self.pending: List[Trace] = []
        self.pending_ts: List[float] = []

    def refill(self) -> None:
        if not self.pending and not self.feed.exhausted:
            self.pending, self.pending_ts = self.feed.next_batch_ts()

    @property
    def head_ts(self) -> float:
        """Before-timestamp of the oldest staged trace (+inf when drained)."""
        if self.pending_ts:
            return self.pending_ts[0]
        return POS_INF

    @property
    def done(self) -> bool:
        return not self.pending and self.feed.exhausted


class _Run:
    """One fetched client batch staged in the global buffer (run-merge
    path).  ``ts`` is the parallel before-timestamp key array captured at
    batch time; ``lo`` is the consumed-prefix cursor: splicing advances it
    instead of copying the tail, so a run is sliced at most once per
    dispatch round and dropped when fully consumed."""

    __slots__ = ("items", "ts", "lo")

    def __init__(self, items: List[Trace], ts: List[float]):
        self.items = items
        self.ts = ts
        self.lo = 0

    def __len__(self) -> int:
        return len(self.items) - self.lo


def _merge_slices(slices: List[Tuple[List[Trace], List[float], int, int]]) -> List[Trace]:
    """K-way merge of sorted run slices by ``(ts_bef, trace_id)`` -- the
    heap reference path's pop order over the same traces.

    Each slice is ``(items, ts, lo, hi)``.  The loop gallops: whenever the
    leading slice is strictly below every other head timestamp, its whole
    leading chunk is located with one C-level bisect over the float key
    array and copied wholesale; exact timestamp ties fall back to
    one-element steps where the heap's full ``(ts, id)`` comparison decides.
    """
    heap = []
    for index, (items, ts, lo, hi) in enumerate(slices):
        heap.append((ts[lo], items[lo].trace_id, index, lo))
    heapq.heapify(heap)
    out: List[Trace] = []
    append = out.append
    extend = out.extend
    heapreplace = heapq.heapreplace
    heappop = heapq.heappop
    while len(heap) > 1:
        t, _tid, index, pos = heap[0]
        items, ts, _lo, hi = slices[index]
        # Second-smallest head: the smaller child of the heap root.
        second = heap[1] if len(heap) == 2 or heap[1] < heap[2] else heap[2]
        second_ts = second[0]
        nxt = pos + 1
        if t == second_ts or nxt >= hi or ts[nxt] >= second_ts:
            # Single step: a timestamp tie (the root already won the
            # trace_id comparison) or a chunk of one -- not worth a bisect.
            append(items[pos])
            pos = nxt
        else:
            # Everything strictly below the next head is safe wholesale;
            # a tied suffix stays behind for per-element id arbitration.
            cut = bisect_left(ts, second_ts, nxt, hi)
            extend(items[pos:cut])
            pos = cut
        if pos < hi:
            heapreplace(heap, (ts[pos], items[pos].trace_id, index, pos))
        else:
            heappop(heap)
    _, _, index, pos = heap[0]
    items, _, _, hi = slices[index]
    extend(items[pos:hi])
    return out


class TwoLevelPipeline:
    """Round-by-round trace dispatcher (Algorithm 1).

    Iterating over the pipeline yields all client traces in monotonically
    non-decreasing ``ts_bef`` order.  ``optimized=False`` disables the
    laggard-first fetching and flow control (the "w/o Opt" configuration of
    Fig. 10); the watermark protocol itself is always on, since it is what
    makes the output order correct.  ``run_merge`` selects the global
    buffer shape: sorted-run merging (the default) or the per-trace heap
    reference path (``None`` defers to the ``REPRO_PIPELINE_RUNS``
    environment escape hatch).
    """

    def __init__(
        self,
        feeds: Sequence[ClientFeed],
        optimized: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        run_merge: Optional[bool] = None,
    ):
        if not feeds:
            raise ValueError("pipeline needs at least one client feed")
        self._locals = [_LocalBuffer(feed) for feed in feeds]
        self._heap: List[Tuple[float, int, Trace]] = []
        self._optimized = optimized
        self._run_merge = _env_run_merge() if run_merge is None else bool(run_merge)
        self._last_dispatched_ts = -POS_INF
        self._last_round_dispatched = 0
        self.stats = PipelineStats()
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_fetch = self._metrics.histogram("pipeline.fetch.seconds")
        self._m_heap = self._metrics.histogram("pipeline.heap.size")
        self._m_dispatched = self._metrics.counter("pipeline.traces.dispatched")
        self._m_lag = self._metrics.gauge("pipeline.watermark.lag")
        self._m_runs_merged = self._metrics.counter("pipeline.run.merged")
        self._m_fastpath = self._metrics.counter("pipeline.run.fastpath")
        self._m_splice = self._metrics.histogram("pipeline.run.splice.size")
        self._max_pushed_ts = -POS_INF

    # -- internals ---------------------------------------------------------

    def _watermark(self) -> float:
        return min(buf.head_ts for buf in self._locals)

    def _buffered(self) -> int:
        return sum(len(buf.pending) for buf in self._locals)

    def _push(self, trace: Trace) -> None:
        if trace.ts_bef > self._max_pushed_ts:
            self._max_pushed_ts = trace.ts_bef
        heapq.heappush(self._heap, (trace.ts_bef, trace.trace_id, trace))

    def _observe_round(self, staged: int) -> None:
        """Per-round gauges/histograms (instrumented runs only): global
        buffer size (heap entries or staged run traces), per-client staged
        depth, and the watermark lag -- how far ahead of the watermark
        fetched traces have piled up while a laggard client holds dispatch
        back."""
        self._m_heap.observe(staged)
        for index, buf in enumerate(self._locals):
            self._metrics.gauge(
                "pipeline.client.depth", client=index
            ).high_watermark(len(buf.pending))
        if staged:
            lag = self._max_pushed_ts - self._watermark()
            if lag > 0:
                self._m_lag.high_watermark(lag)

    def _fetch_round(self) -> None:
        """One fetch stage: move staged traces into the heap and restage.

        The unoptimised variant drains every local buffer each round.  The
        optimised variant fetches laggard-first and stops once it has moved
        roughly as many traces as the previous round dispatched, keeping the
        heap size bounded by the dispatch rate.
        """
        self.stats.rounds += 1
        instrumented = self._metrics.enabled
        if instrumented:
            fetch_start = time.perf_counter()
        buffers = [buf for buf in self._locals if not buf.done]
        for buf in buffers:
            buf.refill()
        buffers = [buf for buf in self._locals if buf.pending]
        if self._optimized:
            buffers.sort(key=lambda buf: buf.head_ts)
            budget = max(self._last_round_dispatched, 1)
            fetched = 0
            for buf in buffers:
                take = buf.pending
                buf.pending = []
                buf.pending_ts = []
                for trace in take:
                    self._push(trace)
                fetched += len(take)
                self.stats.fetches += 1
                buf.refill()
                if fetched >= budget:
                    break
        else:
            for buf in buffers:
                for trace in buf.pending:
                    self._push(trace)
                self.stats.fetches += 1
                buf.pending = []
                buf.pending_ts = []
                buf.refill()
        self.stats.observe(len(self._heap), self._buffered())
        self._last_round_dispatched = 0
        if instrumented:
            self._m_fetch.observe(time.perf_counter() - fetch_start)
            self._observe_round(len(self._heap))

    def _all_done(self) -> bool:
        return all(buf.done for buf in self._locals)

    # -- run-merge internals ------------------------------------------------

    def _fetch_round_runs(self, runs: List[_Run]) -> None:
        """The run-merge fetch stage: identical fetch policy (laggard-first
        order, flow-control budget, same refill points) to
        :meth:`_fetch_round`, but each fetched batch is staged as one
        sorted run instead of being heap-pushed trace by trace."""
        self.stats.rounds += 1
        instrumented = self._metrics.enabled
        if instrumented:
            fetch_start = time.perf_counter()
        buffers = [buf for buf in self._locals if not buf.done]
        for buf in buffers:
            buf.refill()
        buffers = [buf for buf in self._locals if buf.pending]
        if self._optimized:
            buffers.sort(key=lambda buf: buf.head_ts)
            budget = max(self._last_round_dispatched, 1)
            fetched = 0
            for buf in buffers:
                take, take_ts = buf.pending, buf.pending_ts
                buf.pending = []
                buf.pending_ts = []
                runs.append(_Run(take, take_ts))
                if take_ts[-1] > self._max_pushed_ts:
                    self._max_pushed_ts = take_ts[-1]
                fetched += len(take)
                self.stats.fetches += 1
                buf.refill()
                if fetched >= budget:
                    break
        else:
            for buf in buffers:
                take, take_ts = buf.pending, buf.pending_ts
                buf.pending = []
                buf.pending_ts = []
                runs.append(_Run(take, take_ts))
                if take_ts[-1] > self._max_pushed_ts:
                    self._max_pushed_ts = take_ts[-1]
                self.stats.fetches += 1
                buf.refill()
        staged = sum(len(run) for run in runs)
        self.stats.observe(staged, self._buffered())
        self._last_round_dispatched = 0
        if instrumented:
            self._m_fetch.observe(time.perf_counter() - fetch_start)
            self._observe_round(staged)

    def _splice_runs(self, runs: List[_Run], bound: float) -> List[Trace]:
        """Dispatch every staged trace with ``ts_bef <= bound``: one bisect
        per run finds the eligible prefix, a single-run fast path extends
        the output wholesale, and the k-way case merges by ``(ts_bef,
        trace_id)`` -- exactly the heap's pop order over the same set.

        Runs are sorted by that key because a client's batch is created in
        stream order (ids are assigned monotonically at construction and
        re-assigned in stream order on decode), which the k-way merge and
        the fast path both rely on.
        """
        eligible: List[Tuple[_Run, int]] = []
        for run in runs:
            hi = bisect_right(run.ts, bound, run.lo, len(run.items))
            if hi > run.lo:
                eligible.append((run, hi))
        if not eligible:
            return []
        if len(eligible) == 1:
            run, hi = eligible[0]
            out = run.items[run.lo : hi]
            run.lo = hi
            self.stats.fastpath_runs += 1
            self._m_fastpath.inc()
        else:
            slices = []
            for run, hi in eligible:
                slices.append((run.items, run.ts, run.lo, hi))
                run.lo = hi
            out = _merge_slices(slices)
            self.stats.runs_merged += len(eligible)
            self._m_runs_merged.inc(len(eligible))
        consumed = any(run.lo >= len(run.items) for run, _ in eligible)
        if consumed:
            runs[:] = [run for run in runs if run.lo < len(run.items)]
        if out[0].ts_bef < self._last_dispatched_ts:
            raise AssertionError(
                "pipeline dispatched out of order"
            )  # pragma: no cover - guarded by Theorem 1
        self._last_dispatched_ts = out[-1].ts_bef
        dispatched = len(out)
        self.stats.dispatched += dispatched
        self._last_round_dispatched += dispatched
        self._m_dispatched.inc(dispatched)
        self._m_splice.observe(dispatched)
        return out

    def _iter_run_batches(self) -> Iterator[List[Trace]]:
        """Algorithm 1 over sorted runs: each yielded list is one dispatch
        round's below-watermark splice, in dispatch order."""
        for buf in self._locals:
            buf.refill()
        runs: List[_Run] = []
        self.stats.observe(0, self._buffered())
        while True:
            batch = self._splice_runs(runs, self._watermark())
            if batch:
                yield batch
            if self._all_done():
                # Drain: every feed is exhausted, merge whatever is staged.
                batch = self._splice_runs(runs, POS_INF)
                if batch:
                    yield batch
                return
            self._fetch_round_runs(runs)

    # -- public API ---------------------------------------------------------

    def __iter__(self) -> Iterator[Trace]:
        if self._run_merge:
            for batch in self._iter_run_batches():
                yield from batch
        else:
            yield from self._iter_heap()

    def iter_batches(self, max_batch: int = 2048) -> Iterator[List[Trace]]:
        """Yield dispatched traces in batches (same order as iteration).

        On the run-merge path each batch is a dispatch round's splice --
        the natural unit for :meth:`Verifier.process_batch` feeding; the
        per-trace reference path chunks its output at ``max_batch``.
        """
        if self._run_merge:
            yield from self._iter_run_batches()
            return
        batch: List[Trace] = []
        for trace in self._iter_heap():
            batch.append(trace)
            if len(batch) >= max_batch:
                yield batch
                batch = []
        if batch:
            yield batch

    def _iter_heap(self) -> Iterator[Trace]:
        """The historical per-trace reference path (``run_merge=False``),
        kept verbatim: heap-push every fetched trace, pop below the
        watermark."""
        # Prime the local buffers so the first watermark is meaningful.
        for buf in self._locals:
            buf.refill()
        self.stats.observe(len(self._heap), self._buffered())
        while True:
            watermark = self._watermark()
            while self._heap and self._heap[0][0] <= watermark:
                _, _, trace = heapq.heappop(self._heap)
                if trace.ts_bef < self._last_dispatched_ts:
                    raise AssertionError(
                        "pipeline dispatched out of order"
                    )  # pragma: no cover - guarded by Theorem 1
                self._last_dispatched_ts = trace.ts_bef
                self.stats.dispatched += 1
                self._last_round_dispatched += 1
                self._m_dispatched.inc()
                yield trace
            if self._all_done():
                # Drain: nothing remains in any local buffer or client.
                while self._heap:
                    _, _, trace = heapq.heappop(self._heap)
                    self._last_dispatched_ts = trace.ts_bef
                    self.stats.dispatched += 1
                    self._m_dispatched.inc()
                    yield trace
                return
            self._fetch_round()


class NaiveGlobalSorter:
    """Baseline of Section VI-A: buffer every trace, sort once, replay.

    Memory is proportional to the whole history and nothing can be
    dispatched until every client stream has terminated -- the two
    properties Fig. 10 shows the pipeline avoiding.
    """

    def __init__(self, feeds: Sequence[ClientFeed]):
        self._feeds = list(feeds)
        self.stats = PipelineStats()

    def __iter__(self) -> Iterator[Trace]:
        everything: List[Trace] = []
        for feed in self._feeds:
            while not feed.exhausted:
                everything.extend(feed.next_batch())
                self.stats.fetches += 1
        self.stats.peak_heap_size = len(everything)
        self.stats.peak_buffered = len(everything)
        everything.sort(key=Trace.sort_key)
        self.stats.rounds = 1
        for trace in everything:
            self.stats.dispatched += 1
            yield trace


def pipeline_from_client_streams(
    streams: Dict[int, Sequence[Trace]],
    batch_size: int = 64,
    optimized: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    run_merge: Optional[bool] = None,
) -> TwoLevelPipeline:
    """Convenience constructor from ``{client_id: [traces...]}``."""
    feeds = [
        ClientFeed(traces, batch_size=batch_size, client_id=client_id)
        for client_id, traces in sorted(streams.items())
    ]
    return TwoLevelPipeline(
        feeds, optimized=optimized, metrics=metrics, run_merge=run_merge
    )


def sorted_traces(streams: Dict[int, Sequence[Trace]]) -> List[Trace]:
    """Eagerly sort all traces (test helper / tiny histories)."""
    merged: List[Trace] = []
    for traces in streams.values():
        merged.extend(traces)
    merged.sort(key=Trace.sort_key)
    return merged
