"""Interval-based traces: the only input Leopard needs from a system.

A *trace* records one client-observed database operation::

    T = (ts_bef, ts_aft, payload)

where ``ts_bef`` is taken immediately before the request is issued and
``ts_aft`` immediately after the response arrives (Section IV-A of the
paper).  The payload identifies the issuing transaction and, for data
operations, the logical read or write set.  Nothing else is required -- no
kernel instrumentation, no workload restrictions.

Records and values
------------------
A record is identified by an opaque hashable ``Key`` (for key-value
workloads this is the key itself; for relational workloads a
``(table, primary_key)`` tuple).  Record state is a mapping of column name
to value; key-value workloads use the single column ``"v"``.  A *write*
carries the delta it applied (columns it set), a *read* carries the columns
it observed.  Matching a read against a candidate version compares the
observed columns to the cumulative record image of that version, which is
exactly the information a black-box client has.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from .intervals import Interval

Key = Hashable
Value = Any
ColumnMap = Mapping[str, Value]

#: Column name used by plain key-value workloads.
DEFAULT_COLUMN = "v"

#: Transaction id reserved for the initial database population.
INIT_TXN = "__init__"

#: Marker column carried by deletion versions and by observations of
#: absent rows.  A delete is traced as a write of exactly this delta.
TOMBSTONE_COLUMN = "__dead__"


def tombstone() -> Dict[str, Value]:
    """The column delta a DELETE writes."""
    return {TOMBSTONE_COLUMN: True}


def is_tombstone(columns: Mapping[str, Value]) -> bool:
    """Whether a delta or image denotes a deleted row."""
    return bool(columns.get(TOMBSTONE_COLUMN))


def apply_delta(image: Dict[str, Value], delta: Mapping[str, Value]) -> None:
    """Apply a write delta to a record image in place.

    Deletion (a pure tombstone delta) replaces the image with the
    tombstone; a delta carrying the marker *plus* columns is a squashed
    delete+re-insert and replaces the image with exactly those columns; a
    write on top of a tombstone is a re-insert starting from an empty row;
    ordinary writes merge columns.
    """
    # is_tombstone inlined: this runs per staged write and per image rebuild.
    if delta.get(TOMBSTONE_COLUMN):
        replacement = {
            col: val for col, val in delta.items() if col != TOMBSTONE_COLUMN
        }
        image.clear()
        if replacement:
            image.update(replacement)
        else:
            image[TOMBSTONE_COLUMN] = True
        return
    if image.get(TOMBSTONE_COLUMN):
        image.clear()
    image.update(delta)


def squash_delta(staged: Dict[str, Value], delta: Mapping[str, Value]) -> None:
    """Fold a new write delta into a transaction's squashed staged delta.

    A delete wipes everything staged; a write after a staged delete keeps
    the tombstone marker alongside the new columns (replacement semantics
    for :func:`apply_delta`); ordinary writes merge.
    """
    if is_tombstone(delta) and len(delta) == 1:
        staged.clear()
        staged[TOMBSTONE_COLUMN] = True
        return
    staged.update(delta)


@dataclass(frozen=True)
class KeyRange:
    """A predicate over structured keys: matches tuple keys of the form
    ``prefix + (i,)`` with ``lo <= i < hi``.

    Range reads traced with their predicate let the verifier check *scan
    completeness* (no phantom rows missing from the result), the property
    that separates snapshot scans from merely repeatable point reads.
    """

    prefix: Tuple
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty key range [{self.lo}, {self.hi})")
        object.__setattr__(self, "prefix", tuple(self.prefix))

    def matches(self, key: "Key") -> bool:
        if not isinstance(key, tuple) or len(key) != len(self.prefix) + 1:
            return False
        if tuple(key[: len(self.prefix)]) != self.prefix:
            return False
        last = key[-1]
        return isinstance(last, int) and self.lo <= last < self.hi

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.prefix}+[{self.lo},{self.hi})"


class OpKind(enum.Enum):
    """The four trace payload kinds of Section IV-A."""

    READ = "read"
    WRITE = "write"
    COMMIT = "commit"
    ABORT = "abort"


class OpStatus(enum.Enum):
    """Client-visible outcome of the traced operation."""

    OK = "ok"
    #: The operation returned an error (e.g. serialization failure).  Failed
    #: operations contribute their interval but no read/write set.
    FAILED = "failed"


#: Compact wire codes for the binary trace codec (``repro.traces/v1b``,
#: :mod:`repro.core.codec`).  The numbering is part of the on-disk format:
#: append new codes, never renumber.
KIND_TO_CODE = {
    OpKind.READ: 0,
    OpKind.WRITE: 1,
    OpKind.COMMIT: 2,
    OpKind.ABORT: 3,
}
CODE_TO_KIND = {code: kind for kind, code in KIND_TO_CODE.items()}
STATUS_TO_CODE = {OpStatus.OK: 0, OpStatus.FAILED: 1}
CODE_TO_STATUS = {code: status for status, code in STATUS_TO_CODE.items()}


def as_columns(value: Any) -> Dict[str, Value]:
    """Normalise a scalar or column mapping into a column dict."""
    if isinstance(value, Mapping):
        return dict(value)
    return {DEFAULT_COLUMN: value}


_trace_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Trace:
    """One interval-based trace.

    Instances are immutable so they can be shared freely between the
    pipeline, the four verification mechanisms and reports.
    ``slots=True``: traces are read field-by-field by every mechanism hook,
    making attribute access on them the hottest load in the verifier.
    """

    interval: Interval
    kind: OpKind
    txn_id: str
    client_id: int
    #: key -> observed columns (reads) -- empty for non-read traces.
    reads: Mapping[Key, ColumnMap] = field(default_factory=dict)
    #: key -> written columns (writes) -- empty for non-write traces.
    writes: Mapping[Key, ColumnMap] = field(default_factory=dict)
    status: OpStatus = OpStatus.OK
    #: whether a read op acquired write locks (SELECT ... FOR UPDATE).
    for_update: bool = False
    #: the predicate a range read evaluated, when the operation was a scan
    #: (reads then holds exactly the matching rows the scan returned).
    predicate: Optional[KeyRange] = None
    #: position of the operation inside its transaction (0-based).
    op_index: int = 0
    #: globally unique, monotonically assigned id (tie-breaking in heaps).
    trace_id: int = field(default_factory=lambda: next(_trace_counter))

    # -- constructors ------------------------------------------------------

    @staticmethod
    def read(
        ts_bef: float,
        ts_aft: float,
        txn_id: str,
        reads: Mapping[Key, Any],
        client_id: int = 0,
        op_index: int = 0,
        status: OpStatus = OpStatus.OK,
        for_update: bool = False,
        predicate: Optional["KeyRange"] = None,
    ) -> "Trace":
        """Build a read trace; scalar observations are normalised to the
        default column."""
        return Trace(
            interval=Interval(ts_bef, ts_aft),
            kind=OpKind.READ,
            txn_id=txn_id,
            client_id=client_id,
            reads={k: as_columns(v) for k, v in reads.items()},
            op_index=op_index,
            status=status,
            for_update=for_update,
            predicate=predicate,
        )

    @staticmethod
    def write(
        ts_bef: float,
        ts_aft: float,
        txn_id: str,
        writes: Mapping[Key, Any],
        client_id: int = 0,
        op_index: int = 0,
        status: OpStatus = OpStatus.OK,
    ) -> "Trace":
        return Trace(
            interval=Interval(ts_bef, ts_aft),
            kind=OpKind.WRITE,
            txn_id=txn_id,
            client_id=client_id,
            writes={k: as_columns(v) for k, v in writes.items()},
            op_index=op_index,
            status=status,
        )

    @staticmethod
    def commit(
        ts_bef: float,
        ts_aft: float,
        txn_id: str,
        client_id: int = 0,
        op_index: int = 0,
    ) -> "Trace":
        return Trace(
            interval=Interval(ts_bef, ts_aft),
            kind=OpKind.COMMIT,
            txn_id=txn_id,
            client_id=client_id,
            op_index=op_index,
        )

    @staticmethod
    def abort(
        ts_bef: float,
        ts_aft: float,
        txn_id: str,
        client_id: int = 0,
        op_index: int = 0,
    ) -> "Trace":
        return Trace(
            interval=Interval(ts_bef, ts_aft),
            kind=OpKind.ABORT,
            txn_id=txn_id,
            client_id=client_id,
            op_index=op_index,
        )

    # -- accessors ---------------------------------------------------------

    @property
    def ts_bef(self) -> float:
        return self.interval.ts_bef

    @property
    def ts_aft(self) -> float:
        return self.interval.ts_aft

    @property
    def is_terminal(self) -> bool:
        """Whether this trace ends its transaction."""
        return self.kind in (OpKind.COMMIT, OpKind.ABORT)

    @property
    def is_data_op(self) -> bool:
        return self.kind in (OpKind.READ, OpKind.WRITE)

    def sort_key(self) -> Tuple[float, int]:
        """Pipeline ordering key: before-timestamp, tie-broken by id."""
        return (self.ts_bef, self.trace_id)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        body: Optional[str]
        if self.kind is OpKind.READ:
            body = f"r{dict(self.reads)!r}"
        elif self.kind is OpKind.WRITE:
            body = f"w{dict(self.writes)!r}"
        else:
            body = self.kind.value
        return f"T[{self.txn_id}@{self.client_id} {self.interval} {body}]"


def reads_match(observed: ColumnMap, image: ColumnMap) -> bool:
    """Whether an observed column map is consistent with a record image.

    A read observing columns ``{a: 1}`` matches any image whose column ``a``
    equals 1; columns absent from the image (never written) match only an
    explicit ``None`` observation.  An observation of row absence (the
    tombstone marker) matches only a deleted image, and a value observation
    never matches a deleted image.
    """
    # is_tombstone inlined: this predicate runs once per candidate version
    # per read.
    if observed.get(TOMBSTONE_COLUMN):
        return bool(image.get(TOMBSTONE_COLUMN))
    if image.get(TOMBSTONE_COLUMN):
        return False
    for column, value in observed.items():
        if image.get(column) != value:
            return False
    return True
