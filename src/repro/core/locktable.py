"""Verifier-side interval lock table for mutual-exclusion verification.

ME treats every traced write as acquiring an exclusive lock on each written
record during the write's trace interval (Definition 3), released during
the transaction's commit/abort interval.  Engines that run reads under pure
two-phase locking additionally take shared locks for reads.

Because the exact acquire/release instants are hidden, the table reasons
over *feasible orders*: for two conflicting locks there are (at most) two
serial orders -- "t0 releases before t1 acquires" and the converse.  An
order is feasible iff the corresponding release interval can precede the
acquire interval (``Interval.can_precede``).  When neither is feasible the
locks necessarily overlapped: a genuine ME violation.  When exactly one is
feasible, the order is certain and a ``ww`` dependency is deduced
(Theorem 3).  When both remain feasible the pair stays *uncertain* -- this
happens only for near-identical intervals and is counted in the Fig. 13
uncertainty statistics.

Like the version chains, lock chains are index-maintained: each per-key
chain keeps a parallel sorted key list (``(acquire.ts_aft, seq)`` -- the
``seq`` tie-break makes the key a total order, so equal after-timestamps
keep insertion order exactly as the historical insertion sort did) driving
bisect insertion, plus per-key *finished* sublists in chain order so ME
pair enumeration walks only genuine candidates instead of filtering the
full chain, and a per-(key, txn) open-entry index so acquisition folding
is a dict hit instead of a chain scan (Section V-B).
"""

from __future__ import annotations

import enum
import itertools
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .intervals import Interval, UNFINISHED_INTERVAL
from .trace import Key

_lock_seq = itertools.count()


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def conflicts_with(self, other: "LockMode") -> bool:
        return self is LockMode.EXCLUSIVE or other is LockMode.EXCLUSIVE


class OrderOutcome(enum.Enum):
    """Result of enumerating the feasible orders for one lock pair."""

    #: no serial order is feasible -- mutual exclusion was violated.
    VIOLATION = "violation"
    #: only "first releases before second acquires" is feasible.
    FIRST_BEFORE_SECOND = "first-before-second"
    #: only "second releases before first acquires" is feasible.
    SECOND_BEFORE_FIRST = "second-before-first"
    #: both serial orders remain feasible -- order cannot be deduced.
    UNCERTAIN = "uncertain"


@dataclass(slots=True)
class LockEntry:
    """One lock acquisition observed in the traces."""

    key: Key
    txn_id: str
    mode: LockMode
    acquire: Interval
    release: Interval = UNFINISHED_INTERVAL
    #: whether the owning transaction eventually committed (ww deduction
    #: only applies between committed transactions).
    committed: bool = False
    finished: bool = False
    #: process-wide acquisition sequence; breaks sort-key ties so chain
    #: order is total and bisect-searchable.
    seq: int = field(default_factory=_lock_seq.__next__)

    def close(self, release: Interval, committed: bool) -> None:
        self.release = release
        self.committed = committed
        self.finished = True


def lock_sort_key(entry: LockEntry) -> Tuple[float, int]:
    """Chain order for lock entries: acquire after-timestamp, with the
    acquisition sequence as a total-order tie-break (equal timestamps keep
    acquisition order, matching the historical insertion sort)."""
    return (entry.acquire.ts_aft, entry.seq)


def classify_pair(first: LockEntry, second: LockEntry) -> OrderOutcome:
    """Enumerate the feasible serial orders of two conflicting locks.

    Implements the case analysis of Fig. 7: an order ``A before B`` is
    feasible iff A's release interval can precede B's acquire interval.
    Unfinished locks have release interval (+inf, +inf), which makes
    "active txn before anything" infeasible and "anything before active
    txn" trivially feasible -- matching intuition that an in-flight
    transaction cannot yet have released its locks.
    """
    first_then_second = first.release.can_precede(second.acquire)
    second_then_first = second.release.can_precede(first.acquire)
    if first_then_second and second_then_first:
        return OrderOutcome.UNCERTAIN
    if first_then_second:
        return OrderOutcome.FIRST_BEFORE_SECOND
    if second_then_first:
        return OrderOutcome.SECOND_BEFORE_FIRST
    return OrderOutcome.VIOLATION


class LockTable:
    """All lock intervals per record, with index-maintained chains.

    The table retains finished locks until garbage collection decides they
    can no longer conflict with (or order against) anything still active,
    mirroring the pruning discussion of Section V-B.
    """

    def __init__(self) -> None:
        self._by_key: Dict[Key, List[LockEntry]] = {}
        #: parallel sorted :func:`lock_sort_key` list per key chain.
        self._key_sort: Dict[Key, List[Tuple[float, int]]] = {}
        self._by_txn: Dict[str, List[LockEntry]] = {}
        #: open (unfinished) entries per (key, txn) in chain order -- at
        #: most two in practice (a shared entry plus its upgrade).
        self._open: Dict[Tuple[Key, str], List[LockEntry]] = {}
        #: finished entries per key in chain order -- the only candidates
        #: ME pair enumeration has to walk.  Exclusive peers for a shared
        #: entry are filtered from this list on release (shared locks only
        #: exist under pure-2PL specs, so the filter rarely runs).
        self._finished: Dict[Key, List[LockEntry]] = {}

    # -- structure -----------------------------------------------------------

    def entries_for(self, key: Key) -> List[LockEntry]:
        return list(self._by_key.get(key, ()))

    def entries_of(self, txn_id: str) -> List[LockEntry]:
        return list(self._by_txn.get(txn_id, ()))

    def live_entry_count(self) -> int:
        return sum(len(chain) for chain in self._by_key.values())

    def locked_key_count(self) -> int:
        return len(self._by_key)

    # -- mutation ---------------------------------------------------------------

    def acquire(
        self, txn_id: str, key: Key, mode: LockMode, interval: Interval
    ) -> LockEntry:
        """Record a lock acquisition.

        Repeated acquisitions by the same transaction on the same key are
        folded into the existing entry, with one exception: an S-to-X
        *upgrade* adds a second, exclusive entry anchored to the upgrading
        operation's interval.  The exclusive claim only begins inside that
        operation (another transaction's shared lock may have legitimately
        coexisted with the earlier shared phase), so back-dating the X to
        the original S acquire would produce false ME violations.
        """
        open_key = (key, txn_id)
        open_entries = self._open.get(open_key)
        if open_entries:
            # Fold into the first open entry in chain order -- unless this
            # is an S-to-X upgrade, which becomes its own exclusive entry.
            first = open_entries[0]
            if not (mode is LockMode.EXCLUSIVE and first.mode is LockMode.SHARED):
                return first
        entry = LockEntry(key=key, txn_id=txn_id, mode=mode, acquire=interval)
        sort_key = (interval.ts_aft, entry.seq)
        chain = self._by_key.get(key)
        if chain is None:
            chain = self._by_key[key] = []
            keys = self._key_sort[key] = []
        else:
            keys = self._key_sort[key]
        if not keys or sort_key > keys[-1]:
            # Acquisitions arrive roughly in timestamp order: tail append.
            keys.append(sort_key)
            chain.append(entry)
        else:
            position = _bisect_keys(keys, sort_key)
            keys.insert(position, sort_key)
            chain.insert(position, entry)
        txn_entries = self._by_txn.get(txn_id)
        if txn_entries is None:
            self._by_txn[txn_id] = [entry]
        else:
            txn_entries.append(entry)
        if open_entries is None:
            self._open[open_key] = [entry]
        else:
            _insert_open(open_entries, entry)
        return entry

    def release_all(
        self, txn_id: str, release: Interval, committed: bool
    ) -> List[Tuple[LockEntry, List[LockEntry]]]:
        """Close every lock of a finishing transaction and pair each with
        the conflicting locks of *other finished* transactions.

        Pairs where the peer is still active are deferred: they will be
        produced when the peer itself finishes, so every conflicting pair is
        examined exactly once (by whichever transaction finishes second).
        """
        results: List[Tuple[LockEntry, List[LockEntry]]] = []
        open_map = self._open
        finished_map = self._finished
        exclusive = LockMode.EXCLUSIVE
        for entry in self._by_txn.get(txn_id, ()):  # preserves acquire order
            if entry.finished:
                continue
            entry.release = release
            entry.committed = committed
            entry.finished = True
            key = entry.key
            open_entries = open_map.pop((key, txn_id), None)
            if open_entries is not None and len(open_entries) > 1:
                remaining = [e for e in open_entries if e is not entry]
                if remaining:
                    open_map[(key, txn_id)] = remaining
            # Only exclusive peers conflict with a shared lock; everything
            # conflicts with an exclusive one.  The finished sublist is
            # kept in chain order, so enumeration order matches a
            # full-chain scan.
            peers = finished_map.get(key)
            if peers is None:
                results.append((entry, []))
                finished_map[key] = [entry]
                continue
            if entry.mode is exclusive:
                conflicts = [o for o in peers if o.txn_id != txn_id]
            else:
                conflicts = [
                    o
                    for o in peers
                    if o.txn_id != txn_id and o.mode is exclusive
                ]
            results.append((entry, conflicts))
            # Inlined tail-append insert (transactions mostly finish in
            # acquisition order); out-of-order completions insort.
            last = peers[-1]
            aft = entry.acquire.ts_aft
            if aft > last.acquire.ts_aft or (
                aft == last.acquire.ts_aft and entry.seq > last.seq
            ):
                peers.append(entry)
            else:
                insort(peers, entry, key=lock_sort_key)
        return results

    # -- garbage collection ---------------------------------------------------------

    def prune(self, horizon_ts: float, can_prune_txn) -> int:
        """Drop finished locks that were released definitely before the
        earliest still-relevant timestamp and whose owner is releasable.

        Such a lock can only produce FIRST_BEFORE_SECOND outcomes against
        any future lock (its release precedes every future acquire), so it
        can never witness a violation again; the corresponding ``ww`` edges
        are covered by the dependency-graph pruning rule (Theorem 5).
        """
        pruned = 0
        dropped: set = set()
        #: txn -> number of its entries dropped, so the ownership index is
        #: rebuilt only for affected transactions instead of swept whole.
        dropped_of_txn: Dict[str, int] = {}
        # Only finished entries are prunable, so the walk is driven by the
        # (far smaller) finished sublists instead of every chain.
        for key in list(self._finished):
            finished = self._finished[key]
            removed = 0
            for entry in finished:
                if entry.release.ts_aft < horizon_ts and can_prune_txn(
                    entry.txn_id
                ):
                    dropped.add(id(entry))
                    owner = entry.txn_id
                    dropped_of_txn[owner] = dropped_of_txn.get(owner, 0) + 1
                    removed += 1
            if not removed:
                continue
            pruned += removed
            chain = self._by_key[key]
            kept = [e for e in chain if id(e) not in dropped]
            if kept:
                self._by_key[key] = kept
                self._key_sort[key] = [lock_sort_key(e) for e in kept]
                kept_finished = [
                    e for e in finished if id(e) not in dropped
                ]
                if kept_finished:
                    self._finished[key] = kept_finished
                else:
                    del self._finished[key]
            else:
                del self._by_key[key]
                self._key_sort.pop(key, None)
                del self._finished[key]
        for txn_id, count in dropped_of_txn.items():
            entries = self._by_txn.get(txn_id)
            if entries is None:
                continue
            if count >= len(entries):
                # Every lock of the transaction was dropped (the common
                # case: pruning is keyed on the owner being releasable).
                del self._by_txn[txn_id]
            else:
                self._by_txn[txn_id] = [
                    entry for entry in entries if id(entry) not in dropped
                ]
        return pruned


def _bisect_keys(keys: List[Tuple[float, int]], sort_key: Tuple[float, int]) -> int:
    """bisect_left over the per-key sort list (keys are a total order, so
    left/right bisection coincide; a fresh entry's seq exceeds all
    existing ones, placing equal timestamps after -- insertion order)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < sort_key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _insert_open(open_entries: List[LockEntry], entry: LockEntry) -> None:
    """Keep the (at most two-element) open list in chain order."""
    sort_key = lock_sort_key(entry)
    for idx, existing in enumerate(open_entries):
        if sort_key < lock_sort_key(existing):
            open_entries.insert(idx, entry)
            return
    open_entries.append(entry)
