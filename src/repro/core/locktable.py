"""Verifier-side interval lock table for mutual-exclusion verification.

ME treats every traced write as acquiring an exclusive lock on each written
record during the write's trace interval (Definition 3), released during
the transaction's commit/abort interval.  Engines that run reads under pure
two-phase locking additionally take shared locks for reads.

Because the exact acquire/release instants are hidden, the table reasons
over *feasible orders*: for two conflicting locks there are (at most) two
serial orders -- "t0 releases before t1 acquires" and the converse.  An
order is feasible iff the corresponding release interval can precede the
acquire interval (``Interval.can_precede``).  When neither is feasible the
locks necessarily overlapped: a genuine ME violation.  When exactly one is
feasible, the order is certain and a ``ww`` dependency is deduced
(Theorem 3).  When both remain feasible the pair stays *uncertain* -- this
happens only for near-identical intervals and is counted in the Fig. 13
uncertainty statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .intervals import Interval, UNFINISHED_INTERVAL
from .trace import Key


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def conflicts_with(self, other: "LockMode") -> bool:
        return self is LockMode.EXCLUSIVE or other is LockMode.EXCLUSIVE


class OrderOutcome(enum.Enum):
    """Result of enumerating the feasible orders for one lock pair."""

    #: no serial order is feasible -- mutual exclusion was violated.
    VIOLATION = "violation"
    #: only "first releases before second acquires" is feasible.
    FIRST_BEFORE_SECOND = "first-before-second"
    #: only "second releases before first acquires" is feasible.
    SECOND_BEFORE_FIRST = "second-before-first"
    #: both serial orders remain feasible -- order cannot be deduced.
    UNCERTAIN = "uncertain"


@dataclass
class LockEntry:
    """One lock acquisition observed in the traces."""

    key: Key
    txn_id: str
    mode: LockMode
    acquire: Interval
    release: Interval = UNFINISHED_INTERVAL
    #: whether the owning transaction eventually committed (ww deduction
    #: only applies between committed transactions).
    committed: bool = False
    finished: bool = False

    def close(self, release: Interval, committed: bool) -> None:
        self.release = release
        self.committed = committed
        self.finished = True


def classify_pair(first: LockEntry, second: LockEntry) -> OrderOutcome:
    """Enumerate the feasible serial orders of two conflicting locks.

    Implements the case analysis of Fig. 7: an order ``A before B`` is
    feasible iff A's release interval can precede B's acquire interval.
    Unfinished locks have release interval (+inf, +inf), which makes
    "active txn before anything" infeasible and "anything before active
    txn" trivially feasible -- matching intuition that an in-flight
    transaction cannot yet have released its locks.
    """
    first_then_second = first.release.can_precede(second.acquire)
    second_then_first = second.release.can_precede(first.acquire)
    if first_then_second and second_then_first:
        return OrderOutcome.UNCERTAIN
    if first_then_second:
        return OrderOutcome.FIRST_BEFORE_SECOND
    if second_then_first:
        return OrderOutcome.SECOND_BEFORE_FIRST
    return OrderOutcome.VIOLATION


class LockTable:
    """All lock intervals per record, with insertion-sorted chains.

    The table retains finished locks until garbage collection decides they
    can no longer conflict with (or order against) anything still active,
    mirroring the pruning discussion of Section V-B.
    """

    def __init__(self) -> None:
        self._by_key: Dict[Key, List[LockEntry]] = {}
        self._by_txn: Dict[str, List[LockEntry]] = {}

    # -- structure -----------------------------------------------------------

    def entries_for(self, key: Key) -> List[LockEntry]:
        return list(self._by_key.get(key, ()))

    def entries_of(self, txn_id: str) -> List[LockEntry]:
        return list(self._by_txn.get(txn_id, ()))

    def live_entry_count(self) -> int:
        return sum(len(chain) for chain in self._by_key.values())

    def locked_key_count(self) -> int:
        return len(self._by_key)

    # -- mutation ---------------------------------------------------------------

    def acquire(
        self, txn_id: str, key: Key, mode: LockMode, interval: Interval
    ) -> LockEntry:
        """Record a lock acquisition.

        Repeated acquisitions by the same transaction on the same key are
        folded into the existing entry, with one exception: an S-to-X
        *upgrade* adds a second, exclusive entry anchored to the upgrading
        operation's interval.  The exclusive claim only begins inside that
        operation (another transaction's shared lock may have legitimately
        coexisted with the earlier shared phase), so back-dating the X to
        the original S acquire would produce false ME violations.
        """
        chain = self._by_key.setdefault(key, [])
        for entry in chain:
            if entry.txn_id == txn_id and not entry.finished:
                if mode is LockMode.EXCLUSIVE and entry.mode is LockMode.SHARED:
                    break  # record the upgrade as its own exclusive entry
                return entry
        entry = LockEntry(key=key, txn_id=txn_id, mode=mode, acquire=interval)
        # Insertion sort by acquire after-timestamp (Section V-B).
        position = len(chain)
        for idx, existing in enumerate(chain):
            if interval.ts_aft < existing.acquire.ts_aft:
                position = idx
                break
        chain.insert(position, entry)
        self._by_txn.setdefault(txn_id, []).append(entry)
        return entry

    def release_all(
        self, txn_id: str, release: Interval, committed: bool
    ) -> List[Tuple[LockEntry, List[LockEntry]]]:
        """Close every lock of a finishing transaction and pair each with
        the conflicting locks of *other finished* transactions.

        Pairs where the peer is still active are deferred: they will be
        produced when the peer itself finishes, so every conflicting pair is
        examined exactly once (by whichever transaction finishes second).
        """
        results: List[Tuple[LockEntry, List[LockEntry]]] = []
        for entry in self._by_txn.get(txn_id, ()):  # preserves acquire order
            if entry.finished:
                continue
            entry.close(release, committed)
            conflicts = [
                other
                for other in self._by_key.get(entry.key, ())
                if other.txn_id != txn_id
                and other.finished
                and other.mode.conflicts_with(entry.mode)
            ]
            results.append((entry, conflicts))
        return results

    # -- garbage collection ---------------------------------------------------------

    def prune(self, horizon_ts: float, can_prune_txn) -> int:
        """Drop finished locks that were released definitely before the
        earliest still-relevant timestamp and whose owner is releasable.

        Such a lock can only produce FIRST_BEFORE_SECOND outcomes against
        any future lock (its release precedes every future acquire), so it
        can never witness a violation again; the corresponding ``ww`` edges
        are covered by the dependency-graph pruning rule (Theorem 5).
        """
        pruned = 0
        for key in list(self._by_key):
            chain = self._by_key[key]
            kept = [
                entry
                for entry in chain
                if not (
                    entry.finished
                    and entry.release.ts_aft < horizon_ts
                    and can_prune_txn(entry.txn_id)
                )
            ]
            pruned += len(chain) - len(kept)
            if kept:
                self._by_key[key] = kept
            else:
                del self._by_key[key]
        if pruned:
            for txn_id in list(self._by_txn):
                kept_txn = [
                    entry
                    for entry in self._by_txn[txn_id]
                    if self._by_key.get(entry.key) and entry in self._by_key[entry.key]
                ]
                if kept_txn:
                    self._by_txn[txn_id] = kept_txn
                else:
                    del self._by_txn[txn_id]
        return pruned
