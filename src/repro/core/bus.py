"""Dependency-exchange bus (Section V-A, Fig. 9).

The four mechanisms continuously exchange the dependencies they deduce:
CR produces ``wr``, ME/FUW produce ``ww``, and ``rw`` anti-dependencies are
derived from the two (Fig. 9); everything flows into the serialization
certifier.  Historically this exchange was an ad-hoc web of ``_emit``
callbacks threaded through the :class:`~repro.core.verifier.Verifier`; the
:class:`DependencyBus` makes it an explicit, single choke point:

* **guard** -- dependencies whose endpoints were already pruned as garbage
  (Definition 4) are dropped at publication: by Theorem 5 they cannot join
  any future cycle, and inserting them would resurrect zombie graph nodes;
* **counters** -- accepted dependencies are tallied globally (the
  ``deps_*`` fields of :class:`~repro.core.report.VerificationStats`) and
  per producing mechanism and edge type in the bus's
  :class:`~repro.core.metrics.MetricsRegistry` (``bus.deps.accepted`` /
  ``delivered`` / ``deferred`` / ``dropped``), which is the Fig. 13
  deduction-breakdown data; :attr:`DependencyBus.counts`,
  :attr:`DependencyBus.accepted` and :attr:`DependencyBus.dropped` remain
  as read-only views over the registry for compatibility;
* **subscribers** -- delivery happens in a fixed priority order (the
  certifier first, then the Fig. 9 rw-derivation), so re-entrant
  publication from inside a delivery behaves exactly like the historical
  recursive callbacks;
* **taps** -- passive observers of the accepted-dependency stream, used by
  the parallel path to journal per-shard dependencies for the merged
  global certification pass (see :mod:`repro.core.parallel`);
* **batching** -- :meth:`publish_deferred` + :meth:`flush` queue accepted
  dependencies and deliver them later in publication order, the delivery
  mode used when dependencies cross a process boundary in batches.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from .dependencies import Dependency, DepType
from .mechanism import MechanismContext, MechanismVerifier, register_mechanism
from .metrics import MetricsRegistry, parse_metric_key
from .report import Mechanism
from .trace import INIT_TXN
from .versions import Version

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .state import VerifierState

DeliverFn = Callable[[Dependency], None]
TapFn = Callable[[Dependency], None]


class DependencyBus:
    """Single choke point for the inter-mechanism dependency exchange."""

    def __init__(
        self,
        state: "VerifierState",
        count_stats: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._state = state
        #: direct references to the graph's node table and the transaction
        #: table: the garbage guard runs four membership tests per published
        #: dependency, and dict containment is C-level where the graph's
        #: ``__contains__`` is a Python call.  Both structures are mutated
        #: in place only, so the references stay valid for the bus lifetime.
        self._graph_nodes = state.graph._nodes
        self._txns = state.txns
        #: whether accepted dependencies update ``state.stats.deps_*``
        #: (the merge path of the parallel verifier re-publishes already
        #: counted dependencies and disables this).
        self._count_stats = count_stats
        #: (priority, insertion_seq, name, callback, timed)
        self._subscribers: List[Tuple[int, int, str, DeliverFn, bool]] = []
        self._sub_seq = 0
        #: delivery-order callables compiled from ``_subscribers`` (timed
        #: subscribers are wrapped once here instead of branching and
        #: unpacking per event).
        self._dispatch: Tuple[DeliverFn, ...] = ()
        self._taps: List[TapFn] = []
        #: the single source of truth for the bus counters.  The Fig. 13
        #: breakdown (``counts``) must exist even when the run is not
        #: instrumented, so a disabled (or absent) registry is replaced by
        #: a bus-private enabled one -- same cost, just not exported.
        if metrics is not None and metrics.enabled:
            self.metrics = metrics
        else:
            self.metrics = MetricsRegistry()
        #: per-(metric, mechanism, type) counter handles for the cold
        #: metrics (dropped, deferred), resolved once per triple.  Keyed by
        #: ``(metric, id(mechanism), id(type))``: enum members are process
        #: singletons, and identity keys hash at C level where enum
        #: ``__hash__`` is a Python call on every event.
        self._handles: Dict[Tuple[str, int, int], object] = {}
        #: per-(mechanism, type) ``(accepted, delivered)`` handle pairs
        #: (same identity keying): every surviving publication bumps both,
        #: so the hot path fetches them with a single dict lookup per event
        #: instead of two :meth:`_count` calls.
        self._pair_handles: Dict[
            Tuple[int, int], Tuple[object, object]
        ] = {}
        self._pending: List[Dependency] = []

    # -- wiring ------------------------------------------------------------

    def subscribe(
        self,
        name: str,
        callback: DeliverFn,
        priority: int = 0,
        timed: bool = False,
    ) -> None:
        """Register a delivery target.  Lower ``priority`` is delivered
        first; ``timed=True`` accumulates the callback's wall time into
        ``stats.mechanism_seconds[name]`` (the time-breakdown experiment).
        """
        self._subscribers.append((priority, self._sub_seq, name, callback, timed))
        self._sub_seq += 1
        self._subscribers.sort(key=lambda entry: (entry[0], entry[1]))
        self._dispatch = tuple(
            self._timed_wrapper(entry[2], entry[3]) if entry[4] else entry[3]
            for entry in self._subscribers
        )

    def _timed_wrapper(self, name: str, callback: DeliverFn) -> DeliverFn:
        state = self._state

        def deliver_timed(dep: Dependency) -> None:
            start = time.perf_counter()
            try:
                callback(dep)
            finally:
                bucket = state.stats.mechanism_seconds
                bucket[name] = bucket.get(name, 0.0) + (
                    time.perf_counter() - start
                )

        return deliver_timed

    def tap(self, fn: TapFn) -> None:
        """Register a passive observer of every accepted dependency."""
        self._taps.append(fn)

    # -- registry-backed counters ------------------------------------------

    def _count(self, metric: str, dep: Dependency) -> None:
        """Bump ``bus.deps.<metric>{mechanism=...,type=...}``, caching the
        counter handle per (metric, mechanism, type)."""
        key = (metric, id(dep.source), id(dep.dep_type))
        handle = self._handles.get(key)
        if handle is None:
            source = dep.source.value if dep.source is not None else "?"
            handle = self._handles[key] = self.metrics.counter(
                metric, mechanism=source, type=dep.dep_type.value
            )
        handle.inc()

    def _pair(self, dep: Dependency) -> Tuple[object, object]:
        """``(accepted, delivered)`` counter handles for the dependency's
        (mechanism, type) pair, created together on first sight."""
        key = (id(dep.source), id(dep.dep_type))
        pair = self._pair_handles.get(key)
        if pair is None:
            source = dep.source.value if dep.source is not None else "?"
            dep_type = dep.dep_type.value
            pair = self._pair_handles[key] = (
                self.metrics.counter(
                    "bus.deps.accepted", mechanism=source, type=dep_type
                ),
                self.metrics.counter(
                    "bus.deps.delivered", mechanism=source, type=dep_type
                ),
            )
        return pair

    @property
    def counts(self) -> Dict[str, Dict[str, int]]:
        """Accepted dependencies per producing mechanism and type, e.g.
        ``counts["FUW"]["ww"] == 17`` -- a read-only view reconstructed
        from the ``bus.deps.accepted`` registry counters."""
        nested: Dict[str, Dict[str, int]] = {}
        for key, value in self.metrics.counters_with_name(
            "bus.deps.accepted"
        ).items():
            _, labels = parse_metric_key(key)
            nested.setdefault(labels["mechanism"], {})[labels["type"]] = value
        return nested

    @property
    def accepted(self) -> int:
        """Total dependencies that survived the garbage guard."""
        return sum(
            self.metrics.counters_with_name("bus.deps.accepted").values()
        )

    @property
    def dropped(self) -> int:
        """Total dependencies dropped by the garbage guard."""
        return sum(
            self.metrics.counters_with_name("bus.deps.dropped").values()
        )

    # -- publication -------------------------------------------------------

    def _accept(self, dep: Dependency) -> Optional[Tuple[object, object]]:
        """Guard + accepted counter; returns the ``(accepted, delivered)``
        handle pair when the dependency is live, ``None`` when dropped."""
        nodes = self._graph_nodes
        txns = self._txns
        src = dep.src
        dst = dep.dst
        if (src not in nodes and src not in txns) or (
            dst not in nodes and dst not in txns
        ):
            self._count("bus.deps.dropped", dep)
            return None
        if self._count_stats:
            stats = self._state.stats
            if dep.dep_type is DepType.WR:
                stats.deps_wr += 1
            elif dep.dep_type is DepType.WW:
                stats.deps_ww += 1
            elif dep.dep_type is DepType.SO:
                stats.deps_so += 1
            else:
                stats.deps_rw += 1
        pair = self._pair(dep)
        pair[0].inc()
        for fn in self._taps:
            fn(dep)
        return pair

    def _deliver(self, dep: Dependency) -> None:
        self._pair(dep)[1].inc()
        for fn in self._dispatch:
            fn(dep)

    def publish(self, dep: Dependency) -> bool:
        """Publish one dependency with immediate (depth-first) delivery.

        Re-entrant publications from inside a subscriber (e.g. the rw
        derivation reacting to a ww edge) are fully processed before the
        outer publication returns -- the exchange semantics of Section V-A.
        Returns whether the dependency survived the garbage guard.

        The body is :meth:`_accept` inlined (and counters bumped through
        the handle's ``value`` slot directly): one publication per deduced
        dependency makes this the bus's hottest entry point.
        """
        nodes = self._graph_nodes
        txns = self._txns
        src = dep.src
        dst = dep.dst
        if (src not in nodes and src not in txns) or (
            dst not in nodes and dst not in txns
        ):
            self._count("bus.deps.dropped", dep)
            return False
        dep_type = dep.dep_type
        if self._count_stats:
            stats = self._state.stats
            if dep_type is DepType.WR:
                stats.deps_wr += 1
            elif dep_type is DepType.WW:
                stats.deps_ww += 1
            elif dep_type is DepType.SO:
                stats.deps_so += 1
            else:
                stats.deps_rw += 1
        pair = self._pair_handles.get((id(dep.source), id(dep_type)))
        if pair is None:
            pair = self._pair(dep)
        pair[0].value += 1
        pair[1].value += 1
        if self._taps:
            for fn in self._taps:
                fn(dep)
        for fn in self._dispatch:
            fn(dep)
        return True

    def publish_many(self, deps) -> int:
        """Publish a batch with immediate delivery in order; returns how
        many survived the garbage guard.  Equivalent to calling
        :meth:`publish` per dependency, but the batch shape lets callers
        (the mechanism terminal loop, the parallel merge replay) hand over
        whole deduction groups without per-event call overhead; the guard
        and counter state are bound once per batch instead of per event."""
        nodes = self._graph_nodes
        txns = self._txns
        count_stats = self._count_stats
        stats = self._state.stats
        pair_handles = self._pair_handles
        taps = self._taps
        dispatch = self._dispatch
        accepted = 0
        for dep in deps:
            src = dep.src
            dst = dep.dst
            if (src not in nodes and src not in txns) or (
                dst not in nodes and dst not in txns
            ):
                self._count("bus.deps.dropped", dep)
                continue
            dep_type = dep.dep_type
            if count_stats:
                if dep_type is DepType.WR:
                    stats.deps_wr += 1
                elif dep_type is DepType.WW:
                    stats.deps_ww += 1
                elif dep_type is DepType.SO:
                    stats.deps_so += 1
                else:
                    stats.deps_rw += 1
            pair = pair_handles.get((id(dep.source), id(dep_type)))
            if pair is None:
                pair = self._pair(dep)
            pair[0].value += 1
            pair[1].value += 1
            if taps:
                for fn in taps:
                    fn(dep)
            for fn in dispatch:
                fn(dep)
            accepted += 1
        return accepted

    def publish_deferred(self, dep: Dependency) -> bool:
        """Accept (guard + count) now, deliver at the next :meth:`flush`."""
        if self._accept(dep) is None:
            return False
        self._count("bus.deps.deferred", dep)
        self._pending.append(dep)
        return True

    def flush(self) -> int:
        """Deliver all deferred dependencies in publication order.

        Subscribers may publish further dependencies while a batch drains;
        immediate publications are delivered depth-first as usual, deferred
        ones are appended to the same batch and drained in turn.
        """
        delivered = 0
        index = 0
        while index < len(self._pending):
            dep = self._pending[index]
            index += 1
            self._deliver(dep)
            delivered += 1
        self._pending.clear()
        return delivered

    @property
    def pending(self) -> int:
        return len(self._pending)


@register_mechanism("RW-DERIVE", order=30)
class VersionOrderDeriver(MechanismVerifier):
    """Fig. 9: derive ``rw`` anti-dependencies from reads and ``ww`` edges.

    Registered between FUW and CR so that newly confirmed version
    adjacencies are materialised as anti-dependencies before the CR checks
    of the same terminal trace run -- the order the exchange of Section V-A
    prescribes.  The deriver is not one of the paper's four mechanisms; it
    is the exchange rule connecting them, so it subscribes to the bus
    (after the certifier) instead of owning verifier state.
    """

    name = "RW-DERIVE"
    subscribes = True
    subscribe_priority = 10
    #: the serial verifier never timed the derivation as its own bucket;
    #: nested emissions still time their certifier deliveries as "SC".
    timed = False

    def __init__(self, state: "VerifierState", bus: DependencyBus):
        self._state = state
        self._bus = bus
        #: the bus guard's endpoint tables: reader sets accumulate
        #: transaction ids that GC has long pruned, and a derived edge with
        #: a pruned endpoint is dropped by the guard anyway (Theorem 5), so
        #: the derivation loops test liveness *before* constructing the
        #: dependency -- same outcome, no allocation or publication for
        #: edges that cannot survive.
        self._graph_nodes = bus._graph_nodes
        self._txns = bus._txns

    def _live(self, txn_id: str) -> bool:
        return txn_id in self._graph_nodes or txn_id in self._txns

    @classmethod
    def build(cls, ctx: MechanismContext) -> "VersionOrderDeriver":
        deriver = cls(ctx.state, ctx.bus)
        ctx.shared["rw_deriver"] = deriver
        return deriver

    # -- confirmation oracle ----------------------------------------------

    def _order_confirmed(self, earlier: Version, later: Version) -> bool:
        """Whether the chain adjacency ``earlier -> later`` reflects a
        certain installation order: non-overlapping installation intervals,
        or a deduced ww dependency between the installers."""
        if earlier.effective_install.precedes(later.effective_install):
            return True
        return self._state.ww_order(earlier, later) is True

    # -- CR hook: a read was uniquely matched to a version ------------------

    def on_read_match(self, version: Version, reader: str) -> None:
        """Record the reader, emit the wr dependency, and derive the rw
        anti-dependency towards the version's confirmed successor.  The rw
        derivation also applies to reads of the initial database state,
        which produce no wr edge but still anti-depend on the first
        overwriter."""
        version.readers.add(reader)
        if version.txn_id != INIT_TXN and self._live(version.txn_id):
            self._bus.publish(
                Dependency(
                    src=version.txn_id,
                    dst=reader,
                    dep_type=DepType.WR,
                    key=version.key,
                    source=Mechanism.CONSISTENT_READ,
                )
            )
        chain = self._state.chains.get(version.key)
        if chain is None:
            return
        successor = chain.successor_of(version)
        if (
            successor is not None
            and successor.txn_id != reader
            and self._live(successor.txn_id)
            and self._order_confirmed(version, successor)
        ):
            self._bus.publish(
                Dependency(
                    src=reader,
                    dst=successor.txn_id,
                    dep_type=DepType.RW,
                    key=version.key,
                    source=Mechanism.SERIALIZATION_CERTIFIER,
                )
            )

    # -- bus hook: a deduced ww edge confirms version adjacency --------------

    def on_dependency(self, dep: Dependency) -> None:
        if dep.dep_type is not DepType.WW:
            return
        if dep.key is None:
            return
        chain = self._state.chains.get(dep.key)
        if chain is None:
            return
        for version in list(chain.iter_committed()):
            if version.txn_id != dep.src:
                continue
            successor = chain.successor_of(version)
            if successor is None or successor.txn_id != dep.dst:
                continue
            for reader in version.readers:
                if reader == dep.dst or reader == version.txn_id:
                    continue
                if not self._live(reader):
                    continue
                self._bus.publish(
                    Dependency(
                        src=reader,
                        dst=dep.dst,
                        dep_type=DepType.RW,
                        key=dep.key,
                        source=Mechanism.SERIALIZATION_CERTIFIER,
                    )
                )

    # -- terminal hook: versions installed by a commit -----------------------

    def on_terminal(self, txn, trace, installed) -> None:
        """When versions land in their chains at commit, readers of each
        now-confirmed predecessor anti-depend on the installer."""
        if not txn.committed:
            return
        for version in installed:
            chain = self._state.chains.get(version.key)
            if chain is None:
                continue
            predecessor = chain.predecessor_of(version)
            if predecessor is None or not self._order_confirmed(
                predecessor, version
            ):
                continue
            for reader in predecessor.readers:
                if reader == version.txn_id:
                    continue
                if not self._live(reader):
                    continue
                self._bus.publish(
                    Dependency(
                        src=reader,
                        dst=version.txn_id,
                        dep_type=DepType.RW,
                        key=version.key,
                        source=Mechanism.SERIALIZATION_CERTIFIER,
                    )
                )
