"""Binary trace codec: struct-packed batch frames with interned strings.

JSONL (:mod:`repro.core.io`) is the friendly interchange format, but its
per-trace cost -- dict building, JSON stringification, float repr parsing
-- dominates ingestion once the verifier itself is fast.  This module
defines the compact sibling format ``repro.traces/v1b``, built for the
batch shapes the rest of the spine speaks (whole client batches through
the pipeline, whole message batches over the shard pipes):

* **length-prefixed batch framing**: a file is the magic header followed
  by frames, each a little-endian ``u32`` payload length plus payload, so
  readers stream batch by batch without scanning for delimiters;
* **interned string table** per frame: transaction ids, record-key parts
  and column names repeat heavily inside a batch; each frame carries every
  distinct string once and the records reference table indices;
* **struct-packed records**: timestamps are raw doubles, small ints are
  LEB128 varints (zigzag for signed), enum fields are single bytes
  (:data:`repro.core.trace.KIND_TO_CODE`).

Layout::

    file    := MAGIC frame*
    frame   := u32(len(payload)) payload
    payload := varint(n_strings) (varint(len) utf8)*   -- string table
               varint(n_records) record*

The payload generator is reusable: :class:`PayloadEncoder` /
:class:`PayloadDecoder` expose the primitive writers (varints, values,
whole traces) so other wire formats -- the parallel path's shard frames
(:mod:`repro.core.parallel`) -- compose the same interning and packing
without inventing another codec.

``trace_id`` is deliberately not serialised (it is a process-local
counter, exactly as in the JSONL format); decoding assigns fresh ids in
stream order, preserving per-client monotonicity.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Union

from .intervals import Interval
from .metrics import NULL_REGISTRY, MetricsRegistry
from .trace import (
    CODE_TO_KIND,
    CODE_TO_STATUS,
    KIND_TO_CODE,
    KeyRange,
    OpStatus,
    STATUS_TO_CODE,
    Trace,
    _trace_counter,
)

#: Versioned header; bump the suffix for incompatible layout changes.
MAGIC = b"repro.traces/v1b\n"

_U32 = struct.Struct("<I")
_DD = struct.Struct("<dd")
_D = struct.Struct("<d")

# Value tags (part of the wire format: append, never renumber).
_V_NONE = 0
_V_TRUE = 1
_V_FALSE = 2
_V_INT = 3
_V_FLOAT = 4
_V_STR = 5
_V_TUPLE = 6

# Record flag bits.
_F_STATUS = 0x04       # OpStatus.FAILED
_F_FOR_UPDATE = 0x08
_F_PREDICATE = 0x10
_F_READS = 0x20
_F_WRITES = 0x40


class CodecError(ValueError):
    """Malformed or unsupported binary trace data."""


class PayloadEncoder:
    """Accumulates records into one frame payload.

    Strings are interned into the frame's table as they are first written;
    :meth:`finish` assembles ``table + body`` and resets the encoder for
    the next frame.
    """

    __slots__ = ("_body", "_strings", "_index", "_records")

    def __init__(self) -> None:
        self._body = bytearray()
        self._strings: List[bytes] = []
        self._index: dict = {}
        self._records = 0

    def __len__(self) -> int:
        return self._records

    # -- primitives --------------------------------------------------------

    def varint(self, n: int) -> None:
        body = self._body
        while n > 0x7F:
            body.append((n & 0x7F) | 0x80)
            n >>= 7
        body.append(n)

    def zigzag(self, n: int) -> None:
        self.varint(n * 2 if n >= 0 else -n * 2 - 1)

    def u8(self, n: int) -> None:
        self._body.append(n)

    def double(self, value: float) -> None:
        self._body += _D.pack(value)

    def double_pair(self, a: float, b: float) -> None:
        self._body += _DD.pack(a, b)

    def string(self, s: str) -> None:
        """Write an interned string reference."""
        index = self._index.get(s)
        if index is None:
            index = len(self._strings)
            self._index[s] = index
            self._strings.append(s.encode("utf-8"))
        self.varint(index)

    def raw(self, data: bytes) -> None:
        """Length-prefixed opaque bytes (no interning)."""
        self.varint(len(data))
        self._body += data

    def value(self, value) -> None:
        """A tagged dynamic value: None, bool, int, float, str or a tuple
        of values -- everything a record key or column value may be."""
        if value is None:
            self._body.append(_V_NONE)
        elif value is True:
            self._body.append(_V_TRUE)
        elif value is False:
            self._body.append(_V_FALSE)
        elif type(value) is int:
            self._body.append(_V_INT)
            self.zigzag(value)
        elif type(value) is float:
            self._body.append(_V_FLOAT)
            self._body += _D.pack(value)
        elif type(value) is str:
            self._body.append(_V_STR)
            self.string(value)
        elif isinstance(value, tuple):
            self._body.append(_V_TUPLE)
            self.varint(len(value))
            for part in value:
                self.value(part)
        elif isinstance(value, bool):  # bool subclasses snuck past `is`
            self._body.append(_V_TRUE if value else _V_FALSE)
        elif isinstance(value, int):
            self._body.append(_V_INT)
            self.zigzag(value)
        elif isinstance(value, float):
            self._body.append(_V_FLOAT)
            self._body += _D.pack(value)
        elif isinstance(value, str):
            self._body.append(_V_STR)
            self.string(value)
        else:
            raise CodecError(
                f"unsupported value type {type(value).__name__!r}: {value!r}"
            )

    def _sets(self, sets) -> None:
        self.varint(len(sets))
        for key, columns in sets.items():
            self.value(key)
            self.varint(len(columns))
            for column, value in columns.items():
                self.string(column)
                self.value(value)

    # -- records -----------------------------------------------------------

    def trace(self, trace: Trace) -> None:
        """Append one trace record."""
        flags = KIND_TO_CODE[trace.kind]
        if trace.status is not OpStatus.OK:
            flags |= _F_STATUS
        if trace.for_update:
            flags |= _F_FOR_UPDATE
        if trace.predicate is not None:
            flags |= _F_PREDICATE
        if trace.reads:
            flags |= _F_READS
        if trace.writes:
            flags |= _F_WRITES
        self.u8(flags)
        self.string(trace.txn_id)
        interval = trace.interval
        self.double_pair(interval.ts_bef, interval.ts_aft)
        self.zigzag(trace.client_id)
        self.varint(trace.op_index)
        if trace.reads:
            self._sets(trace.reads)
        if trace.writes:
            self._sets(trace.writes)
        predicate = trace.predicate
        if predicate is not None:
            self.value(tuple(predicate.prefix))
            self.zigzag(predicate.lo)
            self.zigzag(predicate.hi)
        self._records += 1

    # -- assembly ----------------------------------------------------------

    def finish(self) -> bytes:
        """Assemble ``string table + body`` and reset for the next frame."""
        head = bytearray()
        strings = self._strings
        n = len(strings)
        while n > 0x7F:
            head.append((n & 0x7F) | 0x80)
            n >>= 7
        head.append(n)
        for encoded in strings:
            m = len(encoded)
            while m > 0x7F:
                head.append((m & 0x7F) | 0x80)
                m >>= 7
            head.append(m)
            head += encoded
        payload = bytes(head) + bytes(self._body)
        self._body = bytearray()
        self._strings = []
        self._index = {}
        self._records = 0
        return payload


class PayloadDecoder:
    """Streaming reader over one frame payload (table read up front)."""

    __slots__ = ("_data", "_pos", "_strings")

    def __init__(self, data: Union[bytes, memoryview]) -> None:
        self._data = bytes(data)
        self._pos = 0
        count = self.varint()
        strings: List[str] = []
        for _ in range(count):
            length = self.varint()
            end = self._pos + length
            strings.append(self._data[self._pos : end].decode("utf-8"))
            self._pos = end
        self._strings = strings

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    # -- primitives --------------------------------------------------------

    def varint(self) -> int:
        data = self._data
        pos = self._pos
        shift = 0
        result = 0
        try:
            while True:
                byte = data[pos]
                pos += 1
                result |= (byte & 0x7F) << shift
                if not byte & 0x80:
                    break
                shift += 7
        except IndexError:
            raise CodecError("truncated varint") from None
        self._pos = pos
        return result

    def zigzag(self) -> int:
        zz = self.varint()
        return (zz >> 1) ^ -(zz & 1)

    def u8(self) -> int:
        try:
            byte = self._data[self._pos]
        except IndexError:
            raise CodecError("truncated record") from None
        self._pos += 1
        return byte

    def double(self) -> float:
        end = self._pos + 8
        if end > len(self._data):
            raise CodecError("truncated double")
        (value,) = _D.unpack_from(self._data, self._pos)
        self._pos = end
        return value

    def double_pair(self):
        end = self._pos + 16
        if end > len(self._data):
            raise CodecError("truncated doubles")
        pair = _DD.unpack_from(self._data, self._pos)
        self._pos = end
        return pair

    def string(self) -> str:
        index = self.varint()
        try:
            return self._strings[index]
        except IndexError:
            raise CodecError(f"string table index {index} out of range") from None

    def raw(self) -> bytes:
        length = self.varint()
        end = self._pos + length
        if end > len(self._data):
            raise CodecError("truncated raw bytes")
        data = self._data[self._pos : end]
        self._pos = end
        return data

    def value(self):
        tag = self.u8()
        if tag == _V_NONE:
            return None
        if tag == _V_TRUE:
            return True
        if tag == _V_FALSE:
            return False
        if tag == _V_INT:
            return self.zigzag()
        if tag == _V_FLOAT:
            end = self._pos + 8
            if end > len(self._data):
                raise CodecError("truncated float")
            (value,) = _D.unpack_from(self._data, self._pos)
            self._pos = end
            return value
        if tag == _V_STR:
            return self.string()
        if tag == _V_TUPLE:
            return tuple(self.value() for _ in range(self.varint()))
        raise CodecError(f"unknown value tag {tag}")

    def _sets(self) -> dict:
        out = {}
        for _ in range(self.varint()):
            key = self.value()
            columns = {}
            for _ in range(self.varint()):
                column = self.string()
                columns[column] = self.value()
            out[key] = columns
        return out

    # -- records -----------------------------------------------------------

    def trace(self) -> Trace:
        flags = self.u8()
        kind = CODE_TO_KIND.get(flags & 0x03)
        if kind is None:  # pragma: no cover - 2-bit code is always mapped
            raise CodecError(f"unknown op kind code {flags & 0x03}")
        txn_id = self.string()
        ts_bef, ts_aft = self.double_pair()
        client_id = self.zigzag()
        op_index = self.varint()
        reads = self._sets() if flags & _F_READS else {}
        writes = self._sets() if flags & _F_WRITES else {}
        predicate = None
        if flags & _F_PREDICATE:
            prefix = self.value()
            lo = self.zigzag()
            hi = self.zigzag()
            predicate = KeyRange(prefix=prefix, lo=lo, hi=hi)
        return Trace(
            interval=Interval(ts_bef, ts_aft),
            kind=kind,
            txn_id=txn_id,
            client_id=client_id,
            reads=reads,
            writes=writes,
            status=CODE_TO_STATUS[1 if flags & _F_STATUS else 0],
            for_update=bool(flags & _F_FOR_UPDATE),
            predicate=predicate,
            op_index=op_index,
        )


# -- batch API ------------------------------------------------------------------


def encode_batch(traces: Sequence[Trace]) -> bytes:
    """Encode one batch of traces into a frame payload (no length prefix;
    file framing is the writer's job, pipe framing is the transport's)."""
    encoder = PayloadEncoder()
    encoder.varint(len(traces))
    for trace in traces:
        encoder.trace(trace)
    return encoder.finish()


def decode_batch(
    payload: Union[bytes, memoryview],
    first_trace_id: Optional[int] = None,
) -> List[Trace]:
    """Decode one frame payload back into traces.

    This is the ingestion hot loop, so the record grammar is decoded
    inline over local variables instead of through
    :class:`PayloadDecoder` method calls -- the grammar itself is
    identical (``PayloadDecoder.trace`` is the readable reference and the
    equivalence is pinned by the codec tests).  Varints take a
    single-byte fast path because ids, counts and table refs almost
    always fit seven bits.

    ``first_trace_id`` stamps deterministic ids during construction:
    record ``i`` gets ``first_trace_id + i`` instead of a fresh
    process-local counter value.  The service's forwarding tier uses this
    to materialise the session registry's ``client_id << SEQ_BITS | seq``
    stamps without a second per-trace ``dataclasses.replace`` pass.
    """
    data = bytes(payload)
    size = len(data)
    pos = 0

    def _varint(pos: int):
        byte = data[pos]
        if byte < 0x80:
            return byte, pos + 1
        result = byte & 0x7F
        shift = 7
        while True:
            pos += 1
            byte = data[pos]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, pos + 1
            shift += 7

    def _value(pos: int):
        tag = data[pos]
        pos += 1
        if tag == _V_STR:
            index = data[pos]
            if index < 0x80:
                return strings[index], pos + 1
            index, pos = _varint(pos)
            return strings[index], pos
        if tag == _V_INT:
            zz = data[pos]
            if zz < 0x80:
                return (zz >> 1) ^ -(zz & 1), pos + 1
            zz, pos = _varint(pos)
            return (zz >> 1) ^ -(zz & 1), pos
        if tag == _V_NONE:
            return None, pos
        if tag == _V_TRUE:
            return True, pos
        if tag == _V_FALSE:
            return False, pos
        if tag == _V_FLOAT:
            return _D.unpack_from(data, pos)[0], pos + 8
        if tag == _V_TUPLE:
            count, pos = _varint(pos)
            parts = []
            for _ in range(count):
                part, pos = _value(pos)
                parts.append(part)
            return tuple(parts), pos
        raise CodecError(f"unknown value tag {tag}")

    def _sets(pos: int):
        count = data[pos]
        if count < 0x80:
            pos += 1
        else:
            count, pos = _varint(pos)
        out = {}
        for _ in range(count):
            key, pos = _value(pos)
            n_cols = data[pos]
            if n_cols < 0x80:
                pos += 1
            else:
                n_cols, pos = _varint(pos)
            columns = {}
            for _ in range(n_cols):
                index = data[pos]
                if index < 0x80:
                    pos += 1
                else:
                    index, pos = _varint(pos)
                column = strings[index]
                columns[column], pos = _value(pos)
            out[key] = columns
        return out, pos

    try:
        n_strings, pos = _varint(pos)
        strings = []
        for _ in range(n_strings):
            length, pos = _varint(pos)
            end = pos + length
            strings.append(data[pos:end].decode("utf-8"))
            pos = end
        n_records, pos = _varint(pos)
        traces: List[Trace] = []
        append = traces.append
        next_id = (
            _trace_counter.__next__ if first_trace_id is None else None
        )
        unpack_dd = _DD.unpack_from
        code_to_kind = CODE_TO_KIND
        status_ok = OpStatus.OK
        status_failed = CODE_TO_STATUS[1]
        for record_index in range(n_records):
            flags = data[pos]
            index = data[pos + 1]
            if index < 0x80:
                pos += 2
            else:
                index, pos = _varint(pos + 1)
            txn_id = strings[index]
            ts_bef, ts_aft = unpack_dd(data, pos)
            pos += 16
            zz = data[pos]
            if zz < 0x80:
                pos += 1
            else:
                zz, pos = _varint(pos)
            client_id = (zz >> 1) ^ -(zz & 1)
            op_index = data[pos]
            if op_index < 0x80:
                pos += 1
            else:
                op_index, pos = _varint(pos)
            if flags & _F_READS:
                reads, pos = _sets(pos)
            else:
                reads = {}
            if flags & _F_WRITES:
                writes, pos = _sets(pos)
            else:
                writes = {}
            predicate = None
            if flags & _F_PREDICATE:
                prefix, pos = _value(pos)
                zz, pos = _varint(pos)
                lo = (zz >> 1) ^ -(zz & 1)
                zz, pos = _varint(pos)
                hi = (zz >> 1) ^ -(zz & 1)
                predicate = KeyRange(prefix=prefix, lo=lo, hi=hi)
            append(
                Trace(
                    interval=Interval(ts_bef, ts_aft),
                    kind=code_to_kind[flags & 0x03],
                    txn_id=txn_id,
                    client_id=client_id,
                    reads=reads,
                    writes=writes,
                    status=status_failed if flags & _F_STATUS else status_ok,
                    for_update=bool(flags & _F_FOR_UPDATE),
                    predicate=predicate,
                    op_index=op_index,
                    trace_id=(
                        next_id()
                        if next_id is not None
                        else first_trace_id + record_index
                    ),
                )
            )
    except (IndexError, struct.error):
        raise CodecError("truncated batch payload") from None
    if pos != size:
        raise CodecError(
            f"trailing bytes after batch: {size - pos} of {size}"
        )
    return traces


# -- streaming file surface -----------------------------------------------------


class BinaryTraceWriter:
    """Streaming writer: magic header, then one frame per ``batch_size``
    traces (or per explicit :meth:`flush`).  Usable as a context manager.
    """

    def __init__(
        self,
        sink: Union[str, Path, IO[bytes]],
        batch_size: int = 512,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self._own = isinstance(sink, (str, Path))
        self._stream = open(sink, "wb") if self._own else sink
        self._batch: List[Trace] = []
        self._batch_size = batch_size
        self.count = 0
        metrics = metrics or NULL_REGISTRY
        self._m_frames = metrics.counter("codec.encode.frames")
        self._m_traces = metrics.counter("codec.encode.traces")
        self._m_bytes = metrics.counter("codec.encode.bytes")
        self._stream.write(MAGIC)

    def write(self, trace: Trace) -> None:
        self._batch.append(trace)
        if len(self._batch) >= self._batch_size:
            self.flush()

    def write_batch(self, traces: Iterable[Trace]) -> None:
        for trace in traces:
            self.write(trace)

    def flush(self) -> None:
        if self._batch:
            payload = encode_batch(self._batch)
            self._stream.write(_U32.pack(len(payload)))
            self._stream.write(payload)
            self.count += len(self._batch)
            self._m_frames.inc()
            self._m_traces.inc(len(self._batch))
            self._m_bytes.inc(_U32.size + len(payload))
            self._batch.clear()

    def close(self) -> None:
        self.flush()
        if self._own:
            self._stream.close()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def dump_traces_binary(
    traces: Iterable[Trace],
    sink: Union[str, Path, IO[bytes]],
    batch_size: int = 512,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Binary counterpart of :func:`repro.core.io.dump_traces`."""
    with BinaryTraceWriter(sink, batch_size=batch_size, metrics=metrics) as writer:
        writer.write_batch(traces)
        writer.flush()
        return writer.count


def iter_binary_frames(
    source: Union[str, Path, IO[bytes]],
    metrics: Optional[MetricsRegistry] = None,
) -> Iterator[List[Trace]]:
    """Stream decoded batches from a ``repro.traces/v1b`` file: the frame
    granularity is preserved, so batch consumers (``process_batch``) skip
    the per-trace hop entirely."""
    own = isinstance(source, (str, Path))
    stream = open(source, "rb") if own else source
    metrics = metrics or NULL_REGISTRY
    m_frames = metrics.counter("codec.decode.frames")
    m_traces = metrics.counter("codec.decode.traces")
    m_bytes = metrics.counter("codec.decode.bytes")
    try:
        header = stream.read(len(MAGIC))
        if header != MAGIC:
            raise CodecError(
                f"not a {MAGIC[:-1].decode('ascii')} file "
                f"(header {header[:24]!r})"
            )
        while True:
            prefix = stream.read(_U32.size)
            if not prefix:
                return
            if len(prefix) < _U32.size:
                raise CodecError("truncated frame length")
            (length,) = _U32.unpack(prefix)
            payload = stream.read(length)
            if len(payload) < length:
                raise CodecError("truncated frame payload")
            batch = decode_batch(payload)
            m_frames.inc()
            m_traces.inc(len(batch))
            m_bytes.inc(_U32.size + length)
            yield batch
    finally:
        if own:
            stream.close()


def load_traces_binary(
    source: Union[str, Path, IO[bytes]],
    metrics: Optional[MetricsRegistry] = None,
) -> Iterator[Trace]:
    """Binary counterpart of :func:`repro.core.io.load_traces`."""
    for batch in iter_binary_frames(source, metrics=metrics):
        yield from batch


def payload_stats(payload: bytes) -> dict:
    """Cheap introspection used by benchmarks and tests."""
    decoder = PayloadDecoder(payload)
    return {
        "bytes": len(payload),
        "strings": len(decoder._strings),
        "traces": decoder.varint(),
    }
