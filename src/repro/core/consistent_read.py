"""Consistent-read verification (Algorithm 2, lines 1-9).

For every read the mechanism computes the minimal candidate version set of
the record against the read's snapshot-generation interval (transaction- or
statement-level, per the spec) and checks that the observation matches at
least one candidate -- additionally folding in the transaction's own
earlier writes, the first CR case of Section V-A.

Reads are checked when their transaction's terminal trace arrives.  By
Theorem 1 the dispatch order is monotone in before-timestamps, and every
write whose version could fall in the candidate set has a before-timestamp
smaller than the reader's terminal before-timestamp, so deferral makes the
check complete without ever waiting on a timeout.

Besides detecting violations the mechanism *deduces* ``wr`` dependencies:
when exactly one candidate matches, the write that installed it must have
happened before the read even if their trace intervals overlap.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .dependencies import Dependency
from .intervals import Interval
from .mechanism import MechanismContext, MechanismVerifier, register_mechanism
from .report import Mechanism, Violation, ViolationKind
from .spec import CRLevel, IsolationSpec
from .state import PendingRead, PendingScan, TxnState, VerifierState
from .trace import (
    TOMBSTONE_COLUMN as _TOMB,
    Trace,
    apply_delta,
    is_tombstone,
    reads_match,
)
from .versions import Version

EmitFn = Callable[[Dependency], None]


@register_mechanism("CR", order=40)
class ConsistentReadVerifier(MechanismVerifier):
    """Mirrors the consistent-read mechanism of the DBMS under test."""

    name = "CR"

    def __init__(
        self,
        state: VerifierState,
        spec: IsolationSpec,
        emit: EmitFn,
        on_read_match=None,
        minimal: bool = True,
        check_aborted_reads: bool = True,
        metrics=None,
    ):
        from .metrics import NULL_REGISTRY

        self._state = state
        self._spec = spec
        self._emit = emit
        #: stable per-state handles pre-bound for the per-read hot path
        #: (the dict and stats objects live as long as the state; only
        #: ``state.ww_order`` stays dynamically resolved -- the
        #: exchange-dependencies ablation swaps it after assembly).
        self._chains_get = state.chains.get
        self._stats = state.stats
        registry = metrics if metrics is not None else NULL_REGISTRY
        #: size of the (minimal) candidate version set per checked read --
        #: the quantity the Fig. 6 optimisation shrinks.
        self._m_candidates = registry.histogram("cr.candidate_set.size")
        self._m_reads = registry.counter("cr.reads.checked")
        self._m_unique = registry.counter("cr.reads.unique_match")
        self._m_ambiguous = registry.counter("cr.reads.ambiguous")
        self._m_scans = registry.counter("cr.scans.checked")
        #: use the Fig. 6 minimal candidate set (False = naive ablation:
        #: every committed version is a candidate, weakening the check).
        self._minimal = minimal
        #: transaction-level CR: snapshots are generated at the first
        #: operation (Definition 2), hoisted out of the per-read check.
        self._txn_snapshot = spec.cr is CRLevel.TRANSACTION
        #: called with (version, reader_txn_id) when a read is uniquely
        #: matched to a version; the Fig. 9 deriver uses it to record the
        #: wr dependency and derive the rw anti-dependency.
        self._on_read_match = on_read_match
        #: stale/future reads are violations only when the spec claims CR;
        #: dirty reads and reads of never-written values are always bugs.
        self._flag_stale = spec.uses_cr
        #: whether reads of aborted transactions are still checked (they
        #: must be by default: an engine may not serve inconsistent data
        #: even to a transaction that later rolls back).
        self._check_aborted = check_aborted_reads
        #: uniquely-matched reads awaiting delivery to the deriver as
        #: ``(version, reader_txn_id)`` pairs.  By default they are drained
        #: at the end of :meth:`on_terminal`; the verifier flips
        #: :meth:`enable_deferred_matches` so it can drain them *after*
        #: CR's timed window closes -- the derivation (and the certifier
        #: work it triggers) is then billed to the deriver instead of
        #: inflating the CR bucket.  Delivery order and the position of the
        #: drain relative to the certifier's terminal hook are unchanged,
        #: so reports are byte-identical either way.
        self._match_queue: list = []
        self._defer_matches = False

    @classmethod
    def build(cls, ctx: MechanismContext) -> "ConsistentReadVerifier":
        deriver = ctx.shared.get("rw_deriver")
        return cls(
            ctx.state,
            ctx.spec,
            ctx.bus.publish,
            on_read_match=(
                deriver.on_read_match
                if deriver is not None
                else ctx.options.get("on_read_match")
            ),
            minimal=ctx.options.get("minimize_candidates", True),
            check_aborted_reads=ctx.options.get("check_aborted_reads", True),
            metrics=ctx.metrics,
        )

    # -- trace handlers ---------------------------------------------------------

    def on_read(self, trace: Trace, txn: TxnState) -> None:
        """Defer the read until the transaction finishes, capturing the
        own-write context visible at this point of the program."""
        append = txn.pending_reads.append
        own_delta_for = txn.own_delta_for
        for key, observed in trace.reads.items():
            append((trace, key, observed, own_delta_for(key)))
        if trace.predicate is not None:
            txn.pending_scans.append(
                PendingScan(
                    trace=trace, observed_keys=frozenset(trace.reads)
                )
            )

    def on_terminal(self, txn: TxnState, trace=None, installed=None) -> None:
        if not txn.committed and not self._check_aborted:
            # Ablation: aborted transactions' reads go unchecked.
            txn.pending_reads.clear()
            return
        pending_reads = txn.pending_reads
        if pending_reads:
            # Per-read counters batched here so the check itself stays
            # free of bookkeeping (every pending read is checked exactly
            # once, early returns included).
            self._stats.reads_checked += len(pending_reads)
            self._m_reads.inc(len(pending_reads))
            check = self._check_read
            for pending in pending_reads:
                check(txn, pending)
            pending_reads.clear()
        if txn.pending_scans:
            for scan in txn.pending_scans:
                self._check_scan(txn, scan)
            txn.pending_scans.clear()
        if self._match_queue and not self._defer_matches:
            self.drain_matches()

    def enable_deferred_matches(self):
        """Switch unique-match delivery from inline (end of
        :meth:`on_terminal`) to caller-drained, and hand back the drain
        hook.  Used by the verifier's terminal dispatch to attribute
        derivation time to the deriver rather than to CR."""
        self._defer_matches = True
        return self.drain_matches

    def drain_matches(self) -> None:
        """Deliver queued unique matches to the deriver, in check order."""
        queue = self._match_queue
        if queue:
            deliver = self._on_read_match
            for version, reader in queue:
                deliver(version, reader)
            queue.clear()

    # -- the CR check -------------------------------------------------------------

    def _snapshot_interval(self, txn: TxnState, pending: PendingRead) -> Interval:
        if self._spec.cr is CRLevel.TRANSACTION and txn.first_interval is not None:
            return txn.first_interval
        # Statement-level CR, and the fallback when no CR is claimed: the
        # snapshot is generated during the read operation itself.
        return pending[0].interval

    def _check_read(self, txn: TxnState, pending: PendingRead) -> None:
        # Counters are batch-incremented by :meth:`on_terminal`.
        trace, key, observed, own_delta = pending
        # Inline _snapshot_interval for the per-read hot path.
        if self._txn_snapshot and txn.first_interval is not None:
            snapshot = txn.first_interval
        else:
            snapshot = trace.interval

        # First CR case: columns covered by the transaction's own earlier
        # writes must reflect them exactly.
        own_covered = own_delta and all(col in own_delta for col in observed)
        if own_covered:
            if all(own_delta[col] == val for col, val in observed.items()):
                return
            self._violation(
                ViolationKind.OWN_WRITE_LOST,
                txn,
                pending,
                f"read {dict(observed)!r} but the transaction previously "
                f"wrote {own_delta!r}",
            )
            return

        state = self._state
        chain = self._chains_get(key)
        if chain is None:
            chain = state.chain(key)
        if not chain._chain and observed.get(_TOMB):
            # The row never existed and the read observed its absence.
            # (``chain._chain``/``_TOMB`` dodge the ``__len__`` and
            # ``is_tombstone`` calls on this per-read path.)
            return
        minimal = self._minimal
        if minimal:
            raw_candidates = chain.classify(
                snapshot, state.ww_order
            ).candidates
        else:
            raw_candidates = chain.committed_versions()
        snap_aft = snapshot.ts_aft
        if minimal and not own_delta and len(raw_candidates) == 1:
            # The dominant shape under the Fig. 6 minimal set: exactly one
            # candidate (the pivot) and no own writes.  Same checks and
            # bookkeeping as the general pass below, without the list and
            # loop machinery; ``reads_match`` is inlined (tombstone guards,
            # then per-column comparison).
            version = raw_candidates[0]
            commit = version.commit
            if commit is not None and snap_aft <= commit.ts_bef:
                self._m_candidates.observe(0)
                self._diagnose_miss(txn, pending, snapshot, chain, observed)
                return
            self._m_candidates.observe(1)
            image = version.image
            if observed.get(_TOMB):
                matched = bool(image.get(_TOMB))
            elif image.get(_TOMB):
                matched = False
            else:
                matched = True
                image_get = image.get
                for column, value in observed.items():
                    if image_get(column) != value:
                        matched = False
                        break
            if not matched:
                self._diagnose_miss(txn, pending, snapshot, chain, observed)
                return
            stats = self._stats
            stats.conflict_pairs += 1
            installed = commit if commit is not None else version.install
            if not (
                installed.ts_aft <= snapshot.ts_bef
                or snap_aft <= installed.ts_bef
            ):
                stats.overlapped_pairs += 1
                stats.deduced_overlapped_pairs += 1
            self._m_unique.inc()
            if txn.committed and self._on_read_match is not None:
                self._match_queue.append((version, txn.txn_id))
            return
        # One pass: visibility filter (minimal mode only, inlined
        # _definitely_invisible) and observation matching together.
        n_candidates = 0
        matches = []
        for version in raw_candidates:
            if minimal:
                commit = version.commit
                if commit is not None and snap_aft <= commit.ts_bef:
                    continue
            n_candidates += 1
            if own_delta:
                if self._matches_with_own(version, observed, own_delta):
                    matches.append(version)
            elif reads_match(observed, version.image):
                matches.append(version)
        self._m_candidates.observe(n_candidates)
        if not matches:
            self._diagnose_miss(txn, pending, snapshot, chain, observed)
            return
        stats = self._stats
        stats.conflict_pairs += 1
        # Inlined Interval.overlaps over the (usually single-element) match
        # list: three method calls per read otherwise.
        snap_bef = snapshot.ts_bef
        overlapped = False
        for v in matches:
            installed = v.effective_install
            if not (
                installed.ts_aft <= snap_bef or snap_aft <= installed.ts_bef
            ):
                overlapped = True
                break
        if overlapped:
            stats.overlapped_pairs += 1
        if len(matches) == 1:
            self._m_unique.inc()
            version = matches[0]
            if overlapped:
                stats.deduced_overlapped_pairs += 1
            # Dependencies are defined between *committed* transactions
            # (Section II-A); an aborted reader's checks still ran above,
            # but it contributes no graph node.  Queued rather than
            # delivered inline; see :meth:`drain_matches`.
            if txn.committed and self._on_read_match is not None:
                self._match_queue.append((version, txn.txn_id))
        else:
            # More than one match: the read is legal but the exact version
            # read is uncertain (duplicate values, Fig. 13's SmallBank
            # residue).
            self._m_ambiguous.inc()

    # -- scan completeness (phantom rows) -----------------------------------------

    def _check_scan(self, txn: TxnState, scan: PendingScan) -> None:
        """Every row *definitely visible* at the scan's snapshot and
        matching its predicate must appear in the result set; a miss is a
        phantom-class CR violation (the scan did not evaluate against a
        consistent snapshot)."""
        if not self._flag_stale:
            return  # no CR claim: scan freshness is not promised
        self._m_scans.inc()
        predicate = scan.trace.predicate
        snapshot = self._snapshot_interval(txn, (scan.trace, None, {}, {}))
        missing = []
        for key, chain in self._state.chains.items():
            if key in scan.observed_keys or not predicate.matches(key):
                continue
            classification = chain.classify(snapshot)
            # The row must appear iff its visible version is live in every
            # possible world: a pivot exists (something is certainly
            # visible) and no candidate is a tombstone (whatever is
            # visible, it is live).
            if classification.pivot is not None and all(
                not is_tombstone(version.image)
                for version in classification.candidates
            ):
                missing.append((key, classification.pivot.txn_id))
        for key in self._state.initial_only_keys():
            if predicate.matches(key) and key not in scan.observed_keys:
                missing.append((key, "__init__"))
        for key, writer in missing:
            self._state.descriptor.record(
                Violation(
                    mechanism=Mechanism.CONSISTENT_READ,
                    kind=ViolationKind.PHANTOM,
                    txns=tuple(sorted({txn.txn_id, writer})),
                    key=key,
                    details=(
                        f"scan {predicate} missed row {key!r}, whose version "
                        f"by {writer} was committed before the snapshot "
                        f"{snapshot}"
                    ),
                    evidence={"scan_interval": scan.trace.interval},
                )
            )

    @staticmethod
    def _definitely_invisible(version: Version, snapshot: Interval) -> bool:
        """A committed version whose commit interval lies entirely after the
        snapshot-generation interval can never be visible (the snapshot was
        complete before the version existed)."""
        return version.commit is not None and snapshot.precedes(version.commit)

    @staticmethod
    def _matches_with_own(
        version: Version, observed, own_delta: Dict[str, object]
    ) -> bool:
        if not own_delta:
            return version.matches(observed)
        from .trace import reads_match

        image = dict(version.image)
        apply_delta(image, own_delta)
        return reads_match(observed, image)

    # -- diagnosis ----------------------------------------------------------------

    def _diagnose_miss(
        self,
        txn: TxnState,
        pending: PendingRead,
        snapshot: Interval,
        chain,
        observed,
    ) -> None:
        """No candidate matched: name the violation as precisely as the
        traces allow."""
        if is_tombstone(observed):
            # The read claims the row was absent, yet a live version is in
            # the candidate set (or the row never died): a missing-row
            # violation of the phantom family.
            if self._flag_stale:
                self._violation(
                    ViolationKind.PHANTOM,
                    txn,
                    pending,
                    "read observed the row as absent although a visible "
                    "version was committed before the snapshot",
                )
            return
        committed_matches = chain.find_matching_committed(observed)
        if committed_matches:
            version = committed_matches[0]
            if snapshot.precedes(version.effective_install):
                if self._flag_stale:
                    self._violation(
                        ViolationKind.FUTURE_READ,
                        txn,
                        pending,
                        f"read version installed by {version.txn_id} whose "
                        f"installation {version.install} lies after the "
                        f"snapshot {snapshot}",
                        other=version.txn_id,
                    )
            else:
                if self._flag_stale:
                    self._violation(
                        ViolationKind.STALE_READ,
                        txn,
                        pending,
                        f"read an overwritten (garbage) version installed "
                        f"by {version.txn_id}",
                        other=version.txn_id,
                    )
            return
        pending_matches = chain.find_matching_pending(observed)
        if pending_matches:
            version = pending_matches[0]
            self._violation(
                ViolationKind.DIRTY_READ,
                txn,
                pending,
                f"read uncommitted/aborted data written by {version.txn_id}",
                other=version.txn_id,
            )
            return
        self._violation(
            ViolationKind.UNKNOWN_VERSION,
            txn,
            pending,
            f"observed {dict(observed)!r}, which no traced write produced",
        )

    def _violation(
        self,
        kind: ViolationKind,
        txn: TxnState,
        pending: PendingRead,
        details: str,
        other: Optional[str] = None,
    ) -> None:
        txns = (txn.txn_id,) if other is None else tuple(sorted((txn.txn_id, other)))
        self._state.descriptor.record(
            Violation(
                mechanism=Mechanism.CONSISTENT_READ,
                kind=kind,
                txns=txns,
                key=pending[1],
                details=details,
                evidence={
                    "read_interval": pending[0].interval,
                    "observed": dict(pending[2]),
                },
            )
        )
