"""Isolation specifications and the Fig. 1 DBMS profile registry.

The paper's key generalisation is that every isolation level shipped by a
commercial DBMS is assembled from four mechanisms -- consistent read (CR),
mutual exclusion (ME), first updater wins (FUW) and serialization certifier
(SC).  An :class:`IsolationSpec` captures one such assembly; the
:data:`DBMS_PROFILES` registry reproduces Fig. 1's table of which DBMS
implements which level with which mechanisms.

The same spec object drives both sides of this repository:

* ``repro.dbsim.engine`` *implements* the spec (the simulated DBMS), and
* ``repro.core.verifier`` *verifies* the spec against black-box traces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple


class IsolationLevel(enum.Enum):
    READ_COMMITTED = "RC"
    REPEATABLE_READ = "RR"
    SNAPSHOT_ISOLATION = "SI"
    SERIALIZABLE = "SR"


class CRLevel(enum.Enum):
    """Consistent-read granularity (Section II-B)."""

    NONE = "none"
    #: snapshot taken at the beginning of each statement (read committed).
    STATEMENT = "statement"
    #: snapshot taken at the beginning of the transaction (RR/SI/SR).
    TRANSACTION = "transaction"


class CertifierKind(enum.Enum):
    """Which certifier the SC mechanism mirrors (Section V-D)."""

    NONE = "none"
    #: SSI: prohibit two consecutive rw anti-dependencies (PostgreSQL).
    SSI = "ssi"
    #: generic conflict-serializability: dependency cycles are prohibited
    #: (mirrors OCC validation and timestamp-ordering engines, whose
    #: committed histories are cycle-free by construction).
    CYCLE = "cycle"
    #: first-committer-wins write certification (Percolator-style SI).
    FIRST_COMMITTER = "first-committer"


@dataclass(frozen=True)
class IsolationSpec:
    """One assembly of the four mechanisms."""

    name: str
    level: IsolationLevel
    cr: CRLevel = CRLevel.NONE
    me: bool = False
    #: whether reads also take (shared) locks -- pure 2PL engines only.
    me_read_locks: bool = False
    fuw: bool = False
    certifier: CertifierKind = CertifierKind.NONE

    @property
    def uses_cr(self) -> bool:
        return self.cr is not CRLevel.NONE

    @property
    def uses_sc(self) -> bool:
        return self.certifier is not CertifierKind.NONE

    def mechanisms(self) -> Tuple[str, ...]:
        """Checkmark row as in Fig. 1."""
        marks: List[str] = []
        if self.me:
            marks.append("ME")
        if self.uses_cr:
            marks.append("CR")
        if self.fuw:
            marks.append("FUW")
        if self.uses_sc:
            marks.append("SC")
        return tuple(marks)

    def without(self, mechanism: str) -> "IsolationSpec":
        """A copy with one mechanism disabled -- used for fault injection
        (run the engine on the weakened spec, verify against the full one)
        and ablation benches."""
        mechanism = mechanism.upper()
        if mechanism == "ME":
            return replace(self, me=False, me_read_locks=False)
        if mechanism == "CR":
            return replace(self, cr=CRLevel.NONE)
        if mechanism == "FUW":
            return replace(self, fuw=False)
        if mechanism == "SC":
            return replace(self, certifier=CertifierKind.NONE)
        raise ValueError(f"unknown mechanism {mechanism!r}")


# ---------------------------------------------------------------------------
# Canonical specs (PostgreSQL naming, used as defaults throughout).
# ---------------------------------------------------------------------------

PG_READ_COMMITTED = IsolationSpec(
    name="postgresql/RC",
    level=IsolationLevel.READ_COMMITTED,
    cr=CRLevel.STATEMENT,
    me=True,
)
PG_REPEATABLE_READ = IsolationSpec(
    # PostgreSQL's REPEATABLE READ is snapshot isolation: txn-level CR + FUW.
    name="postgresql/SI",
    level=IsolationLevel.SNAPSHOT_ISOLATION,
    cr=CRLevel.TRANSACTION,
    me=True,
    fuw=True,
)
PG_SERIALIZABLE = IsolationSpec(
    name="postgresql/SR",
    level=IsolationLevel.SERIALIZABLE,
    cr=CRLevel.TRANSACTION,
    me=True,
    fuw=True,
    certifier=CertifierKind.SSI,
)

SERIALIZABLE = PG_SERIALIZABLE
SNAPSHOT_ISOLATION = PG_REPEATABLE_READ
READ_COMMITTED = PG_READ_COMMITTED


def _spec(
    dbms: str,
    level: IsolationLevel,
    cr: CRLevel,
    me: bool,
    fuw: bool,
    certifier: CertifierKind,
    me_read_locks: bool = False,
) -> IsolationSpec:
    return IsolationSpec(
        name=f"{dbms}/{level.value}",
        level=level,
        cr=cr,
        me=me,
        me_read_locks=me_read_locks,
        fuw=fuw,
        certifier=certifier,
    )


IL = IsolationLevel
_T, _S, _N = CRLevel.TRANSACTION, CRLevel.STATEMENT, CRLevel.NONE
_NONE, _SSI, _CYC, _FCW = (
    CertifierKind.NONE,
    CertifierKind.SSI,
    CertifierKind.CYCLE,
    CertifierKind.FIRST_COMMITTER,
)

#: Reproduction of Fig. 1: (dbms, level) -> mechanisms.  Where Fig. 1 lists
#: several DBMSs on one row they share the entry.
DBMS_PROFILES: Dict[Tuple[str, IsolationLevel], IsolationSpec] = {
    # PostgreSQL / OpenGauss: 2PL + MVCC + SSI.
    ("postgresql", IL.SERIALIZABLE): _spec("postgresql", IL.SERIALIZABLE, _T, True, True, _SSI),
    ("postgresql", IL.SNAPSHOT_ISOLATION): _spec("postgresql", IL.SNAPSHOT_ISOLATION, _T, True, True, _NONE),
    ("postgresql", IL.READ_COMMITTED): _spec("postgresql", IL.READ_COMMITTED, _S, True, False, _NONE),
    ("opengauss", IL.SERIALIZABLE): _spec("opengauss", IL.SERIALIZABLE, _T, True, True, _SSI),
    ("opengauss", IL.SNAPSHOT_ISOLATION): _spec("opengauss", IL.SNAPSHOT_ISOLATION, _T, True, True, _NONE),
    ("opengauss", IL.READ_COMMITTED): _spec("opengauss", IL.READ_COMMITTED, _S, True, False, _NONE),
    # InnoDB / Aurora / PolarDB / SQL Server: 2PL + MVCC (no FUW: lost
    # updates are possible under RR, as the paper notes in the intro).
    ("innodb", IL.SERIALIZABLE): _spec("innodb", IL.SERIALIZABLE, _T, True, False, _NONE, me_read_locks=True),
    ("innodb", IL.REPEATABLE_READ): _spec("innodb", IL.REPEATABLE_READ, _T, True, False, _NONE),
    ("innodb", IL.READ_COMMITTED): _spec("innodb", IL.READ_COMMITTED, _S, True, False, _NONE),
    ("sqlserver", IL.SERIALIZABLE): _spec("sqlserver", IL.SERIALIZABLE, _T, True, False, _NONE, me_read_locks=True),
    ("sqlserver", IL.REPEATABLE_READ): _spec("sqlserver", IL.REPEATABLE_READ, _T, True, False, _NONE),
    ("sqlserver", IL.READ_COMMITTED): _spec("sqlserver", IL.READ_COMMITTED, _S, True, False, _NONE),
    # TiDB: 2PL + MVCC for RR/RC; Percolator for SI.
    ("tidb", IL.REPEATABLE_READ): _spec("tidb", IL.REPEATABLE_READ, _T, True, False, _NONE),
    ("tidb", IL.READ_COMMITTED): _spec("tidb", IL.READ_COMMITTED, _S, True, False, _NONE),
    ("tidb", IL.SNAPSHOT_ISOLATION): _spec("tidb", IL.SNAPSHOT_ISOLATION, _T, False, False, _FCW),
    # RocksDB: pessimistic (2PL+MVCC) or optimistic (OCC+MVCC) transactions.
    ("rocksdb", IL.SERIALIZABLE): _spec("rocksdb", IL.SERIALIZABLE, _T, True, False, _NONE, me_read_locks=True),
    ("rocksdb-occ", IL.SERIALIZABLE): _spec("rocksdb-occ", IL.SERIALIZABLE, _T, False, False, _CYC),
    # SQLite: whole-database 2PL, no MVCC.
    ("sqlite", IL.SERIALIZABLE): _spec("sqlite", IL.SERIALIZABLE, _N, True, False, _NONE, me_read_locks=True),
    # FoundationDB: OCC + MVCC.
    ("foundationdb", IL.SERIALIZABLE): _spec("foundationdb", IL.SERIALIZABLE, _T, False, False, _CYC),
    # SingleStore.
    ("singlestore", IL.READ_COMMITTED): _spec("singlestore", IL.READ_COMMITTED, _S, True, False, _NONE),
    # CockroachDB: timestamp ordering + MVCC.
    ("cockroachdb", IL.SERIALIZABLE): _spec("cockroachdb", IL.SERIALIZABLE, _T, False, False, _CYC),
    # Spanner: 2PL + MVCC.
    ("spanner", IL.SERIALIZABLE): _spec("spanner", IL.SERIALIZABLE, _T, True, False, _NONE, me_read_locks=True),
    # YugabyteDB: all four mechanisms.
    ("yugabytedb", IL.SERIALIZABLE): _spec("yugabytedb", IL.SERIALIZABLE, _T, True, True, _SSI),
    ("yugabytedb", IL.REPEATABLE_READ): _spec("yugabytedb", IL.REPEATABLE_READ, _T, True, True, _NONE),
    ("yugabytedb", IL.READ_COMMITTED): _spec("yugabytedb", IL.READ_COMMITTED, _S, True, False, _NONE),
    # Oracle / NuoDB / SAP HANA.
    ("oracle", IL.SNAPSHOT_ISOLATION): _spec("oracle", IL.SNAPSHOT_ISOLATION, _T, True, True, _NONE),
    ("oracle", IL.READ_COMMITTED): _spec("oracle", IL.READ_COMMITTED, _S, True, False, _NONE),
    ("nuodb", IL.SNAPSHOT_ISOLATION): _spec("nuodb", IL.SNAPSHOT_ISOLATION, _T, True, True, _NONE),
    ("saphana", IL.SNAPSHOT_ISOLATION): _spec("saphana", IL.SNAPSHOT_ISOLATION, _T, True, True, _NONE),
    ("saphana", IL.READ_COMMITTED): _spec("saphana", IL.READ_COMMITTED, _S, True, False, _NONE),
}


def profile(dbms: str, level: IsolationLevel) -> IsolationSpec:
    """Look up the Fig. 1 mechanism assembly for a DBMS and level."""
    try:
        return DBMS_PROFILES[(dbms.lower(), level)]
    except KeyError:
        raise KeyError(
            f"{dbms!r} does not document isolation level {level.value} "
            "in the Fig. 1 registry"
        ) from None


def profiles_for(dbms: str) -> List[IsolationSpec]:
    return [
        spec for (name, _), spec in DBMS_PROFILES.items() if name == dbms.lower()
    ]


def supported_dbms() -> List[str]:
    return sorted({name for name, _ in DBMS_PROFILES})
