"""Trace persistence: JSON-lines and binary serialisation of traces.

The tracer side of a real deployment runs inside application clients and
ships traces to the verifier as an append-only stream.  This module defines
the self-describing text format -- one JSON object per line, ordered per
client (each client appends to its own file or stream) -- and routes to the
compact binary sibling (:mod:`repro.core.codec`, ``repro.traces/v1b``)
when a path carries the :data:`BINARY_SUFFIX` extension or the caller asks
for ``fmt="binary"`` explicitly.

Format (one line per trace)::

    {"k": "read", "t": "t42", "c": 3, "b": 12.000001, "a": 12.000420,
     "i": 0, "r": {"x": {"v": 1}}, "fu": false}

Keys are shortened because trace volume dominates storage:  ``k`` kind,
``t`` txn id, ``c`` client id, ``b``/``a`` before/after timestamps, ``i``
op index, ``r``/``w`` read/write sets, ``s`` status (omitted when ok),
``fu`` for-update flag (omitted when false).

Record keys may be any hashable; tuples (the relational convention) are
encoded as JSON arrays tagged with ``"\\u0000t"`` to round-trip exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, IO, Iterable, Iterator, List, Mapping, Optional, Union

from .trace import Key, KeyRange, OpKind, OpStatus, Trace

#: Extension that selects the binary codec (``repro.traces/v1b``).
BINARY_SUFFIX = ".rtb"

#: Recognised trace serialisation formats.
FORMATS = ("jsonl", "binary")


def resolve_format(
    target: Union[str, Path, IO, None], fmt: Optional[str] = None
) -> str:
    """Pick the serialisation format for ``target``.

    An explicit ``fmt`` always wins; otherwise paths ending in
    :data:`BINARY_SUFFIX` select the binary codec and everything else
    (including bare file objects) stays JSONL.
    """
    if fmt is not None:
        if fmt not in FORMATS:
            raise ValueError(f"unknown trace format {fmt!r}; expected {FORMATS}")
        return fmt
    if isinstance(target, (str, Path)) and str(target).endswith(BINARY_SUFFIX):
        return "binary"
    return "jsonl"

_TUPLE_TAG = "\u0000t"


def _encode_key(key: Key):
    if isinstance(key, tuple):
        return [_TUPLE_TAG, *[_encode_key(part) for part in key]]
    return key


def _decode_key(raw) -> Key:
    if isinstance(raw, list):
        if raw and raw[0] == _TUPLE_TAG:
            return tuple(_decode_key(part) for part in raw[1:])
        return tuple(_decode_key(part) for part in raw)
    return raw


def _encode_sets(sets: Mapping[Key, Mapping[str, object]]) -> List[List]:
    return [[_encode_key(key), dict(columns)] for key, columns in sets.items()]


def _decode_sets(raw) -> Dict[Key, Dict[str, object]]:
    return {_decode_key(key): dict(columns) for key, columns in raw}


def trace_to_dict(trace: Trace) -> dict:
    """Lower a trace to its JSON-serialisable dictionary form."""
    payload: dict = {
        "k": trace.kind.value,
        "t": trace.txn_id,
        "c": trace.client_id,
        "b": trace.ts_bef,
        "a": trace.ts_aft,
        "i": trace.op_index,
    }
    if trace.reads:
        payload["r"] = _encode_sets(trace.reads)
    if trace.writes:
        payload["w"] = _encode_sets(trace.writes)
    if trace.status is not OpStatus.OK:
        payload["s"] = trace.status.value
    if trace.for_update:
        payload["fu"] = True
    if trace.predicate is not None:
        payload["p"] = [
            _encode_key(tuple(trace.predicate.prefix)),
            trace.predicate.lo,
            trace.predicate.hi,
        ]
    return payload


def trace_from_dict(payload: Mapping) -> Trace:
    """Rebuild a trace from its dictionary form."""
    from .intervals import Interval

    return Trace(
        interval=Interval(float(payload["b"]), float(payload["a"])),
        kind=OpKind(payload["k"]),
        txn_id=str(payload["t"]),
        client_id=int(payload.get("c", 0)),
        reads=_decode_sets(payload.get("r", [])),
        writes=_decode_sets(payload.get("w", [])),
        status=OpStatus(payload.get("s", OpStatus.OK.value)),
        for_update=bool(payload.get("fu", False)),
        predicate=(
            KeyRange(
                prefix=_decode_key(payload["p"][0]),
                lo=int(payload["p"][1]),
                hi=int(payload["p"][2]),
            )
            if "p" in payload
            else None
        ),
        op_index=int(payload.get("i", 0)),
    )


def dump_traces(
    traces: Iterable[Trace],
    sink: Union[str, Path, IO],
    fmt: Optional[str] = None,
) -> int:
    """Write traces in the resolved format; returns the number written.

    Paths ending in :data:`BINARY_SUFFIX` (or an explicit
    ``fmt="binary"``) use the length-prefixed binary codec; everything
    else writes JSON lines.
    """
    if resolve_format(sink, fmt) == "binary":
        from .codec import dump_traces_binary

        return dump_traces_binary(traces, sink)
    own = isinstance(sink, (str, Path))
    stream = open(sink, "w", encoding="utf-8") if own else sink
    count = 0
    try:
        for trace in traces:
            stream.write(json.dumps(trace_to_dict(trace), separators=(",", ":")))
            stream.write("\n")
            count += 1
    finally:
        if own:
            stream.close()
    return count


def load_traces(
    source: Union[str, Path, IO],
    fmt: Optional[str] = None,
) -> Iterator[Trace]:
    """Stream traces back from a JSONL or binary file (resolved like
    :func:`dump_traces`)."""
    if resolve_format(source, fmt) == "binary":
        from .codec import load_traces_binary

        yield from load_traces_binary(source)
        return
    own = isinstance(source, (str, Path))
    stream = open(source, "r", encoding="utf-8") if own else source
    try:
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                yield trace_from_dict(json.loads(line))
            except (ValueError, KeyError) as exc:
                raise ValueError(
                    f"malformed trace on line {line_no}: {exc}"
                ) from exc
    finally:
        if own:
            stream.close()


def dump_client_streams(
    streams: Mapping[int, Iterable[Trace]],
    directory: Union[str, Path],
    prefix: str = "client",
    fmt: str = "jsonl",
) -> List[Path]:
    """Write one file per client (the natural tracer layout), JSONL by
    default or binary frames with ``fmt="binary"``."""
    if fmt not in FORMATS:
        raise ValueError(f"unknown trace format {fmt!r}; expected {FORMATS}")
    suffix = BINARY_SUFFIX if fmt == "binary" else ".jsonl"
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for client_id, traces in sorted(streams.items()):
        path = directory / f"{prefix}-{client_id}{suffix}"
        dump_traces(traces, path, fmt=fmt)
        paths.append(path)
    return paths


def load_client_streams(
    directory: Union[str, Path], prefix: str = "client"
) -> Dict[int, List[Trace]]:
    """Read back the per-client layout written by
    :func:`dump_client_streams` (either format; a client captured in both
    is an error)."""
    directory = Path(directory)
    streams: Dict[int, List[Trace]] = {}
    for pattern in (f"{prefix}-*.jsonl", f"{prefix}-*{BINARY_SUFFIX}"):
        for path in sorted(directory.glob(pattern)):
            client_id = int(path.stem.rsplit("-", 1)[1])
            if client_id in streams:
                raise ValueError(
                    f"client {client_id} captured in both formats under "
                    f"{directory}"
                )
            streams[client_id] = list(load_traces(path))
    if not streams:
        raise FileNotFoundError(
            f"no {prefix}-*.jsonl or {prefix}-*{BINARY_SUFFIX} files "
            f"under {directory}"
        )
    return streams


def dump_initial_db(
    initial_db: Mapping[Key, Mapping[str, object]],
    sink: Union[str, Path],
) -> None:
    """Persist the initial database image alongside a trace capture."""
    payload = [[_encode_key(key), dict(image)] for key, image in initial_db.items()]
    Path(sink).write_text(json.dumps(payload), encoding="utf-8")


def load_initial_db(source: Union[str, Path]) -> Dict[Key, Dict[str, object]]:
    payload = json.loads(Path(source).read_text(encoding="utf-8"))
    return {_decode_key(key): dict(image) for key, image in payload}
