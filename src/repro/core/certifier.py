"""Serialization-certifier verification (Algorithm 2, lines 27-31).

The SC mechanism maintains the dependency graph built from the edges all
mechanisms deduce and mirrors the *certifier* the DBMS claims to run:

* ``SSI`` (PostgreSQL serializable): two consecutive rw anti-dependencies
  between concurrent transactions form the dangerous structure the engine
  must have aborted -- observing one among committed transactions is a
  violation, and so is any dependency cycle.
* ``CYCLE`` (OCC validation, timestamp ordering): committed histories are
  conflict-serializable by construction, so any cycle is a violation.
* ``FIRST_COMMITTER`` (Percolator-style SI): concurrent committed writers
  on the same record are prohibited.
* ``NONE``: no serializability claim; only *time-contradictory* cycles are
  flagged -- a cycle whose every edge is ww or wr asserts a circular
  happens-before order of real events, which no bug-free engine of any
  isolation level can produce.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .dependencies import Dependency, DepType
from .mechanism import MechanismContext, MechanismVerifier, register_mechanism
from .report import Mechanism, Violation, ViolationKind
from .spec import CertifierKind, IsolationSpec
from .state import VerifierState


@register_mechanism("SC", order=50)
class SerializationCertifier(MechanismVerifier):
    """Mirrors the certifier of the DBMS under test.

    Unlike the other mechanisms the certifier consumes no traces directly:
    it subscribes to the dependency bus (first in delivery order) and
    certifies the graph the exchange builds.
    """

    name = "SC"
    subscribes = True
    subscribe_priority = 0

    def __init__(self, state: VerifierState, spec: IsolationSpec, metrics=None):
        from .metrics import NULL_REGISTRY

        self._state = state
        self._spec = spec
        self._kind = spec.certifier
        registry = metrics if metrics is not None else NULL_REGISTRY
        #: dependencies certified (graph insertions driven by the bus).
        self._m_certified = registry.counter("sc.deps.certified")
        self._m_cycles = registry.counter("sc.cycles.reported")
        self._m_dangerous = registry.counter("sc.dangerous_structures.reported")
        #: transactions with an incoming/outgoing rw edge whose endpoints
        #: were *necessarily concurrent* -- the precondition for the SSI
        #: dangerous structure.  Sticky: once observed, the fact remains
        #: true even if the peer transaction is later pruned.
        self._in_crw: Set[str] = set()
        self._out_crw: Set[str] = set()

    @classmethod
    def build(cls, ctx: MechanismContext) -> "SerializationCertifier":
        return cls(ctx.state, ctx.spec, metrics=ctx.metrics)

    # -- dependency intake ---------------------------------------------------------

    def on_dependency(self, dep: Dependency) -> None:
        self._m_certified.inc()
        graph = self._state.graph
        cycle = graph.add_dependency(dep)
        if cycle is not None:
            self._report_cycle(dep, cycle)
        if dep.dep_type is DepType.RW:
            self._check_dangerous_structure(dep)
        elif dep.dep_type is DepType.WW and self._kind is CertifierKind.FIRST_COMMITTER:
            self._check_first_committer(dep)

    # -- cycles ---------------------------------------------------------------------

    def _report_cycle(self, dep: Dependency, cycle: List[str]) -> None:
        """Classify a cycle closed by ``dep`` (path ``dep.dst .. dep.src``
        through the graph, closed by the new edge)."""
        contradictory = self._cycle_is_time_contradictory(dep, cycle)
        prohibits_cycles = self._kind in (CertifierKind.SSI, CertifierKind.CYCLE)
        if not contradictory and not prohibits_cycles:
            return
        kind = (
            ViolationKind.CONTRADICTORY_DEPENDENCIES
            if contradictory
            else ViolationKind.DEPENDENCY_CYCLE
        )
        self._m_cycles.inc()
        self._state.descriptor.record(
            Violation(
                mechanism=Mechanism.SERIALIZATION_CERTIFIER,
                kind=kind,
                txns=tuple(sorted(set(cycle))),
                key=dep.key,
                details=(
                    f"dependency {dep} closes the cycle {' -> '.join(cycle)}"
                    f" -> {cycle[0]}"
                ),
            )
        )

    def _cycle_is_time_contradictory(
        self, dep: Dependency, cycle: List[str]
    ) -> bool:
        """Whether every edge of the cycle carries a ww or wr type.

        ww and wr dependencies order real events (version installations and
        the reads of them), so such a cycle contradicts physical time and is
        a bug under *any* isolation level.  rw edges carry no time
        implication (a reader may commit after the overwriter), so cycles
        through them are only judged by the claimed certifier.
        """
        time_types = {DepType.WW, DepType.WR, DepType.SO}
        if dep.dep_type not in time_types:
            return False
        graph = self._state.graph
        edges = list(zip(cycle, cycle[1:]))
        return all(graph.edge_types(src, dst) & time_types for src, dst in edges)

    # -- SSI dangerous structure --------------------------------------------------------

    def _check_dangerous_structure(self, dep: Dependency) -> None:
        if self._kind is not CertifierKind.SSI:
            return
        if not self._necessarily_concurrent(dep.src, dep.dst):
            return
        structure: Optional[tuple] = None
        if dep.src in self._in_crw:
            structure = ("?", dep.src, dep.dst)
        elif dep.dst in self._out_crw:
            structure = (dep.src, dep.dst, "?")
        self._out_crw.add(dep.src)
        self._in_crw.add(dep.dst)
        if structure is None:
            return
        self._m_dangerous.inc()
        self._state.descriptor.record(
            Violation(
                mechanism=Mechanism.SERIALIZATION_CERTIFIER,
                kind=ViolationKind.DANGEROUS_STRUCTURE,
                txns=tuple(sorted((dep.src, dep.dst))),
                key=dep.key,
                details=(
                    "two consecutive rw anti-dependencies between concurrent "
                    f"transactions around {dep}: the SSI certifier must have "
                    "aborted one of them"
                ),
            )
        )

    # -- first committer wins --------------------------------------------------------------

    def _check_first_committer(self, dep: Dependency) -> None:
        if self._necessarily_concurrent(dep.src, dep.dst):
            self._state.descriptor.record(
                Violation(
                    mechanism=Mechanism.SERIALIZATION_CERTIFIER,
                    kind=ViolationKind.LOST_UPDATE,
                    txns=tuple(sorted((dep.src, dep.dst))),
                    key=dep.key,
                    details=(
                        f"concurrent committed writers {dep.src} and "
                        f"{dep.dst}: the first-committer-wins certifier must "
                        "have aborted the later one"
                    ),
                )
            )

    # -- helpers --------------------------------------------------------------------------------

    def _necessarily_concurrent(self, a: str, b: str) -> bool:
        """Whether no serial order of the two transactions is feasible:
        each one's snapshot was definitely generated before the other's
        commit completed."""
        txn_a = self._state.get_txn(a)
        txn_b = self._state.get_txn(b)
        if txn_a is None or txn_b is None:
            return False
        if (
            txn_a.first_interval is None
            or txn_b.first_interval is None
            or txn_a.terminal_interval is None
            or txn_b.terminal_interval is None
        ):
            return False
        a_first = txn_a.terminal_interval.can_precede(txn_b.first_interval)
        b_first = txn_b.terminal_interval.can_precede(txn_a.first_interval)
        return not a_first and not b_first

    # -- garbage collection hook -------------------------------------------------------------------

    def on_gc(self, txn_id: str) -> None:
        self._in_crw.discard(txn_id)
        self._out_crw.discard(txn_id)

    #: kept as an alias -- the GC layer historically called this name.
    on_txn_pruned = on_gc
