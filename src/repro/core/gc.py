"""Garbage collection of mirrored verifier structures.

Long-running workloads grow every mirrored structure without bound; the
paper prunes asynchronously (Sections V-A, V-B, V-D).  This module
implements the three pruning rules behind the flat memory curves of
Figs. 10 and 14:

* **garbage transactions** (Definition 4 / Theorem 5): in-degree zero in
  the dependency graph and finished before the earliest snapshot timestamp
  ``S_e`` any unverified trace can still reference -- provably never part
  of a future cycle;
* **garbage lock entries**: released definitely before ``S_e`` by a pruned
  transaction -- they can only ever order *before* future locks, never
  conflict;
* **garbage versions** (Fig. 6 applied at the GC horizon): definitely
  overwritten before any live snapshot; cumulative images keep surviving
  versions self-contained.
"""

from __future__ import annotations

from typing import Callable, Optional

from .intervals import Interval
from .metrics import NULL_REGISTRY, MetricsRegistry
from .state import VerifierState


class GarbageCollector:
    """Periodic pruner driven by the trace stream."""

    def __init__(
        self,
        state: VerifierState,
        every: int = 512,
        on_txn_pruned: Optional[Callable[[str], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if every < 1:
            raise ValueError("GC period must be positive")
        self._state = state
        self._every = every
        self._since_last = 0
        self._on_txn_pruned = on_txn_pruned
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_collect = registry.histogram("gc.collect.seconds")

    def maybe_collect(self) -> bool:
        """Called once per processed trace; runs a collection every
        ``every`` traces."""
        self._since_last += 1
        if self._since_last < self._every:
            return False
        self._since_last = 0
        self.collect()
        return True

    def collect(self) -> None:
        state = self._state
        horizon_ts = state.earliest_unverified_snapshot()
        if horizon_ts == float("-inf"):
            return
        with self._m_collect.time():
            self._prune_graph(horizon_ts)
            # Lock and version pruning share the releasability predicate
            # and neither mutates the graph or transaction table, so one
            # memo serves both: a transaction's verdict is computed once
            # per collection instead of once per lock entry / version.
            can_prune = self._make_can_prune()
            self._prune_locks(horizon_ts, can_prune)
            self._prune_versions(horizon_ts, can_prune)
            self._prune_txn_states(horizon_ts)

    def _make_can_prune(self):
        state = self._state
        cache: dict = {}

        def can_prune(txn_id: str) -> bool:
            verdict = cache.get(txn_id)
            if verdict is None:
                if txn_id in state.graph:
                    verdict = False
                else:
                    txn = state.get_txn(txn_id)
                    verdict = txn is None or txn.finished
                cache[txn_id] = verdict
            return verdict

        return can_prune

    # -- Definition 4 / Theorem 5 -------------------------------------------------

    def _prune_graph(self, horizon_ts: float) -> None:
        state = self._state
        graph = state.graph
        # Removing a garbage node deletes its outgoing edges, which can turn
        # successors into garbage; iterate to a fixpoint.
        changed = True
        while changed:
            changed = False
            for txn_id in graph.nodes():
                if graph.in_degree(txn_id) != 0:
                    continue
                node = graph.node(txn_id)
                txn = state.get_txn(txn_id)
                commit = node.commit_interval
                if commit is None and txn is not None:
                    commit = txn.terminal_interval
                if commit is None or commit.ts_aft > horizon_ts:
                    continue
                if txn is not None and not txn.finished:
                    continue
                graph.remove_txn(txn_id)
                if self._on_txn_pruned is not None:
                    self._on_txn_pruned(txn_id)
                state.stats.gc_txns_pruned += 1
                changed = True

    # -- lock table -----------------------------------------------------------------

    def _prune_locks(self, horizon_ts: float, can_prune=None) -> None:
        state = self._state
        if can_prune is None:
            can_prune = self._make_can_prune()
        state.stats.gc_locks_pruned += state.locks.prune(horizon_ts, can_prune)

    # -- version chains ----------------------------------------------------------------

    def _prune_versions(self, horizon_ts: float, can_prune=None) -> None:
        state = self._state
        horizon = Interval(horizon_ts, horizon_ts)
        if can_prune is None:
            can_prune = self._make_can_prune()
        # Only chains the verifier marked as candidates (two or more
        # committed versions, or aborted residue) can prune anything;
        # everything else is skipped without even a length check.  A chain
        # GC'd back to a single version leaves the candidate set until its
        # next commit re-marks it.
        candidates = state.gc_version_candidates
        if not candidates:
            return
        pruned = 0
        for key in list(candidates):
            chain = candidates[key]
            pruned += chain.prune_garbage(horizon, can_prune)
            if len(chain) < 2:
                del candidates[key]
        state.stats.gc_versions_pruned += pruned

    # -- transaction metadata -------------------------------------------------------------

    def _prune_txn_states(self, horizon_ts: float) -> None:
        """Drop metadata for transactions no mirrored structure references.

        A transaction state is still needed while it is active, while its
        node sits in the dependency graph (certifier concurrency checks), or
        while a version it installed could pair with a future FUW check --
        bounded by its terminal after-timestamp against the horizon.
        """
        state = self._state
        for txn_id in list(state.txns):
            txn = state.txns[txn_id]
            if not txn.finished or txn_id in state.graph:
                continue
            terminal = txn.terminal_interval
            if terminal is not None and terminal.ts_aft >= horizon_ts:
                continue
            del state.txns[txn_id]
