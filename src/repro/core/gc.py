"""Garbage collection of mirrored verifier structures.

Long-running workloads grow every mirrored structure without bound; the
paper prunes asynchronously (Sections V-A, V-B, V-D).  This module
implements the three pruning rules behind the flat memory curves of
Figs. 10 and 14:

* **garbage transactions** (Definition 4 / Theorem 5): in-degree zero in
  the dependency graph and finished before the earliest snapshot timestamp
  ``S_e`` any unverified trace can still reference -- provably never part
  of a future cycle;
* **garbage lock entries**: released definitely before ``S_e`` by a pruned
  transaction -- they can only ever order *before* future locks, never
  conflict;
* **garbage versions** (Fig. 6 applied at the GC horizon): definitely
  overwritten before any live snapshot; cumulative images keep surviving
  versions self-contained.

Collections are indexed rather than exhaustive: graph pruning seeds its
worklist from the zero-in-degree frontier the graph maintains (Definition 4
requires in-degree zero, so only frontier members can be garbage), and
transaction-metadata pruning pops a terminal-timestamp heap instead of
sweeping the whole transaction table.  Both indexes make a collection cost
O(candidates), not O(live state) -- the property the Fig. 10/14 flat-memory
runs depend on once steady state is mostly non-garbage.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from .intervals import Interval
from .metrics import NULL_REGISTRY, MetricsRegistry
from .state import VerifierState


class GarbageCollector:
    """Periodic pruner driven by the trace stream."""

    def __init__(
        self,
        state: VerifierState,
        every: int = 512,
        on_txn_pruned: Optional[Callable[[str], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        metric_prefix: str = "gc",
    ):
        if every < 1:
            raise ValueError("GC period must be positive")
        self._state = state
        self._every = every
        self._since_last = 0
        self._on_txn_pruned = on_txn_pruned
        registry = metrics if metrics is not None else NULL_REGISTRY
        # ``metric_prefix`` keeps independent collector instances apart in
        # one registry: the verifier's own collector reports plain ``gc.*``
        # while the streaming merge's replay-state collector reports
        # ``parallel.stream.gc.*``.
        self._m_collect = registry.histogram(f"{metric_prefix}.collect.seconds")
        #: frontier size observed at the start of each graph pruning pass.
        self._m_frontier = registry.gauge(f"{metric_prefix}.frontier.candidates")
        #: worklist pops -- the actual per-collection scan cost.
        self._m_scanned = registry.counter(f"{metric_prefix}.frontier.scanned")
        #: terminal-timestamp heap size (metadata-GC index backlog).
        self._m_heap = registry.gauge(f"{metric_prefix}.frontier.heap")
        #: heap entries popped but re-pushed because the transaction's node
        #: still sits in the dependency graph.
        self._m_retained = registry.counter(f"{metric_prefix}.frontier.retained")

    def maybe_collect(self) -> bool:
        """Called once per processed trace; runs a collection every
        ``every`` traces."""
        self._since_last += 1
        if self._since_last < self._every:
            return False
        self._since_last = 0
        self.collect()
        return True

    def collect(self, horizon_ts: Optional[float] = None) -> None:
        """Run one collection.

        ``horizon_ts`` overrides the state-derived ``S_e`` horizon.  The
        streaming parallel merge needs this: its replay state never advances
        its own dispatch watermark (events arrive pre-ordered from shards),
        so the coordinator supplies the merged shard horizon instead.
        """
        state = self._state
        if horizon_ts is None:
            horizon_ts = state.earliest_unverified_snapshot()
        if horizon_ts == float("-inf"):
            return
        with self._m_collect.time():
            self._prune_graph(horizon_ts)
            # Lock and version pruning share the releasability predicate
            # and neither mutates the graph or transaction table, so one
            # memo serves both: a transaction's verdict is computed once
            # per collection instead of once per lock entry / version.
            can_prune = self._make_can_prune()
            self._prune_locks(horizon_ts, can_prune)
            self._prune_versions(horizon_ts, can_prune)
            self._prune_txn_states(horizon_ts)

    def _make_can_prune(self):
        state = self._state
        cache: dict = {}

        def can_prune(txn_id: str) -> bool:
            verdict = cache.get(txn_id)
            if verdict is None:
                if txn_id in state.graph:
                    verdict = False
                else:
                    txn = state.get_txn(txn_id)
                    verdict = txn is None or txn.finished
                cache[txn_id] = verdict
            return verdict

        return can_prune

    # -- Definition 4 / Theorem 5 -------------------------------------------------

    def _garbage(self, txn_id: str, horizon_ts: float) -> bool:
        """Definition 4 body checks for an in-degree-zero node."""
        state = self._state
        node = state.graph.node(txn_id)
        txn = state.get_txn(txn_id)
        commit = node.commit_interval
        if commit is None and txn is not None:
            commit = txn.terminal_interval
        if commit is None or commit.ts_aft > horizon_ts:
            return False
        if txn is not None and not txn.finished:
            return False
        return True

    def _prune_graph(self, horizon_ts: float) -> None:
        """Frontier-indexed pruning.

        Only zero-in-degree nodes can be garbage, and the graph maintains
        exactly that set, so the worklist starts from the frontier snapshot
        and grows only by the successors each removal promotes to in-degree
        zero.  Nodes that fail the horizon checks stay in the frontier and
        are retried (against a larger horizon) next collection.  Reaches the
        same fixpoint as :meth:`_prune_graph_scan` without touching nodes
        that still have predecessors.
        """
        state = self._state
        graph = state.graph
        worklist: List[str] = graph.zero_in_degree_frontier()
        self._m_frontier.set(len(worklist))
        scanned = 0
        while worklist:
            txn_id = worklist.pop()
            scanned += 1
            # A promoted successor may appear both in the initial snapshot
            # and in a removal's promotion list; membership re-check makes
            # duplicates harmless.
            if txn_id not in graph or graph.in_degree(txn_id) != 0:
                continue
            if not self._garbage(txn_id, horizon_ts):
                continue
            worklist.extend(graph.remove_txn(txn_id))
            if self._on_txn_pruned is not None:
                self._on_txn_pruned(txn_id)
            state.stats.gc_txns_pruned += 1
        self._m_scanned.inc(scanned)

    def _prune_graph_scan(self, horizon_ts: float) -> None:
        """Scan-to-fixpoint reference implementation (pre-frontier).

        Kept as the oracle the equivalence tests compare
        :meth:`_prune_graph` against; not called on any production path.
        """
        state = self._state
        graph = state.graph
        # Removing a garbage node deletes its outgoing edges, which can turn
        # successors into garbage; iterate to a fixpoint.
        changed = True
        while changed:
            changed = False
            for txn_id in graph.nodes():
                if graph.in_degree(txn_id) != 0:
                    continue
                if not self._garbage(txn_id, horizon_ts):
                    continue
                graph.remove_txn(txn_id)
                if self._on_txn_pruned is not None:
                    self._on_txn_pruned(txn_id)
                state.stats.gc_txns_pruned += 1
                changed = True

    # -- lock table -----------------------------------------------------------------

    def _prune_locks(self, horizon_ts: float, can_prune=None) -> None:
        state = self._state
        if can_prune is None:
            can_prune = self._make_can_prune()
        state.stats.gc_locks_pruned += state.locks.prune(horizon_ts, can_prune)

    # -- version chains ----------------------------------------------------------------

    def _prune_versions(self, horizon_ts: float, can_prune=None) -> None:
        state = self._state
        horizon = Interval(horizon_ts, horizon_ts)
        if can_prune is None:
            can_prune = self._make_can_prune()
        # Only chains the verifier marked as candidates (two or more
        # committed versions, or aborted residue) can prune anything;
        # everything else is skipped without even a length check.  A chain
        # GC'd back to a single version leaves the candidate set until its
        # next commit re-marks it.
        candidates = state.gc_version_candidates
        if not candidates:
            return
        pruned = 0
        for key in list(candidates):
            chain = candidates[key]
            # Inline the indexed chain's O(1) garbage precheck (at least
            # two committed versions definitely behind the horizon, or
            # aborted residue to drop) so chains with nothing to prune do
            # not even pay the ``prune_garbage`` call.  Linear chains keep
            # the call (their precheck is the scan inside).
            if chain._use_index and not chain._aborted:
                keys = chain._keys
                if len(keys) < 2:
                    del candidates[key]
                    continue
                if keys[1][0] > horizon_ts:
                    continue
            pruned += chain.prune_garbage(horizon, can_prune)
            if len(chain) < 2:
                del candidates[key]
        state.stats.gc_versions_pruned += pruned

    # -- transaction metadata -------------------------------------------------------------

    def _prune_txn_states(self, horizon_ts: float) -> None:
        """Drop metadata for transactions no mirrored structure references.

        A transaction state is still needed while it is active, while its
        node sits in the dependency graph (certifier concurrency checks), or
        while a version it installed could pair with a future FUW check --
        bounded by its terminal after-timestamp against the horizon.

        Candidates come off the terminal-timestamp heap the state maintains
        (:meth:`VerifierState.note_terminal`): only entries strictly behind
        the horizon are popped, so a collection never looks at transactions
        that cannot be pruned yet.  Entries whose node is still in the graph
        are re-pushed and retried once graph pruning releases them.
        """
        state = self._state
        heap = state.terminal_heap
        retained: List = []
        while heap and heap[0][0] < horizon_ts:
            entry = heapq.heappop(heap)
            txn_id = entry[1]
            txn = state.txns.get(txn_id)
            if txn is None:
                # Already pruned (or never materialised here): drop entry.
                continue
            if txn_id in state.graph:
                retained.append(entry)
                continue
            del state.txns[txn_id]
        for entry in retained:
            heapq.heappush(heap, entry)
        self._m_retained.inc(len(retained))
        self._m_heap.set(len(heap))
