"""Witness extraction: minimal replayable sub-histories for violations.

The bug descriptor names the transactions and record involved in each
violation; for filing a bug report (the paper's workflow with the TiDB
bugs) one wants the *smallest trace fragment that still exhibits it*.
:func:`extract_witness` slices a full capture down to the implicated
transactions plus every transaction that touched the implicated record, so
the fragment re-verifies to the same violation and can be attached to a
report or replayed against the real system.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from .report import Violation
from .trace import OpKind, Trace


def transactions_touching(
    traces: Sequence[Trace], key
) -> Set[str]:
    """Transactions that read or wrote ``key`` (including via scans)."""
    touching: Set[str] = set()
    for trace in traces:
        if key in trace.reads or key in trace.writes:
            touching.add(trace.txn_id)
        elif trace.predicate is not None and trace.predicate.matches(key):
            touching.add(trace.txn_id)
    return touching


def extract_witness(
    violation: Violation,
    traces: Sequence[Trace],
    include_key_history: bool = True,
) -> List[Trace]:
    """The sub-history relevant to one violation, in dispatch order.

    Includes every trace of the implicated transactions and -- when the
    violation names a record and ``include_key_history`` is set -- every
    transaction that touched that record (the version history context a CR
    or FUW violation is judged against).
    """
    wanted: Set[str] = set(violation.txns)
    wanted.discard("__init__")
    if include_key_history and violation.key is not None:
        wanted |= transactions_touching(traces, violation.key)
    witness = [trace for trace in traces if trace.txn_id in wanted]
    witness.sort(key=Trace.sort_key)
    return witness


def witness_summary(witness: Sequence[Trace]) -> str:
    """A compact human-readable schedule of a witness fragment."""
    lines = []
    for trace in witness:
        if trace.kind is OpKind.READ:
            body = f"r{dict(trace.reads)!r}"
            if trace.predicate is not None:
                body = f"scan[{trace.predicate}] -> {sorted(trace.reads)}"
        elif trace.kind is OpKind.WRITE:
            body = f"w{dict(trace.writes)!r}"
        else:
            body = trace.kind.value.upper()
        lines.append(
            f"[{trace.ts_bef:12.6f},{trace.ts_aft:12.6f}] "
            f"c{trace.client_id}/{trace.txn_id:<10s} {body}"
        )
    return "\n".join(lines)


def witnesses_for(
    violations: Iterable[Violation],
    traces: Sequence[Trace],
    limit: Optional[int] = None,
) -> List[tuple]:
    """``(violation, witness)`` pairs for a batch of violations (first
    ``limit``)."""
    out: List[tuple] = []
    for index, violation in enumerate(violations):
        if limit is not None and index >= limit:
            break
        out.append((violation, extract_witness(violation, traces)))
    return out
