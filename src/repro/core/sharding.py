"""Key-partitioned verifier state for the parallel verification path.

Leopard's CR/ME/FUW checks are *per-record*: every candidate set, lock
pair and write-conflict pair involves versions of a single key.  Hash-
partitioning the key space therefore splits those checks into independent
shards that never need each other's version chains or lock tables; only
the serialization certifier is global (cycles cross keys), so the parallel
path (:mod:`repro.core.parallel`) runs it once over the merged dependency
stream.

This module provides the partitioning primitives:

* :func:`stable_hash` / :class:`ShardRouter` -- deterministic key-to-shard
  assignment (stable across processes and runs, unlike the salted builtin
  ``hash``) and per-trace routing: data operations are *split* so each
  shard receives only its keys, while terminals, predicate scans and
  keyless traces broadcast to every shard;
* :class:`ShardedState` -- a facade over N :class:`VerifierState`
  partitions with key-routed chain access and aggregated accounting.
"""

from __future__ import annotations

import zlib
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Tuple

from .state import TxnState, VerifierState
from .trace import Key, Trace


def stable_hash(key: Key) -> int:
    """Process-stable hash of a record key.

    The builtin ``hash`` is salted per interpreter process (PYTHONHASHSEED),
    so it cannot be used to agree on a partition between the coordinator
    and its workers; CRC-32 over the key's repr is stable and fast, and the
    keys this repository produces (strings, ints, tuples of both) all have
    canonical reprs.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


class ShardRouter:
    """Deterministic key-to-shard assignment and trace routing."""

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards

    def shard_of(self, key: Key) -> int:
        return stable_hash(key) % self.shards

    def partition_initial_db(
        self, initial_db: Optional[Mapping[Key, Mapping[str, object]]]
    ) -> List[Dict[Key, Mapping[str, object]]]:
        """Split the initial database image by key ownership."""
        parts: List[Dict[Key, Mapping[str, object]]] = [
            {} for _ in range(self.shards)
        ]
        for key, image in (initial_db or {}).items():
            parts[self.shard_of(key)][key] = image
        return parts

    def split(self, trace: Trace) -> Dict[int, Trace]:
        """Route one trace: shard index -> the trace that shard processes.

        * terminal traces broadcast unchanged -- every shard must close the
          transaction's locks and run its deferred checks;
        * predicate scans broadcast with the observed rows filtered to each
          shard's keys -- the scan-completeness check compares against the
          shard's own chains, so foreign observations are irrelevant there;
        * plain data operations are split by key ownership, and shards with
          no owned key do not see the trace at all;
        * keyless data traces (e.g. failed operations, which carry their
          interval but no read/write set) broadcast so every shard's
          dispatch watermark advances identically.

        With one shard every trace routes whole to shard 0 as the original
        object -- the single-shard parallel path replays exactly the serial
        stream.
        """
        if self.shards == 1:
            return {0: trace}
        if trace.is_terminal:
            return {shard: trace for shard in range(self.shards)}
        if trace.predicate is not None:
            out: Dict[int, Trace] = {}
            for shard in range(self.shards):
                reads = {
                    key: obs
                    for key, obs in trace.reads.items()
                    if self.shard_of(key) == shard
                }
                out[shard] = replace(trace, reads=reads)
            return out
        if not trace.reads and not trace.writes:
            return {shard: trace for shard in range(self.shards)}
        by_shard: Dict[int, Tuple[Dict, Dict]] = {}
        for key, obs in trace.reads.items():
            by_shard.setdefault(self.shard_of(key), ({}, {}))[0][key] = obs
        for key, delta in trace.writes.items():
            by_shard.setdefault(self.shard_of(key), ({}, {}))[1][key] = delta
        out = {}
        for shard, (reads, writes) in by_shard.items():
            if len(by_shard) == 1:
                # Single-owner trace: forward the original object.
                out[shard] = trace
            else:
                out[shard] = replace(trace, reads=reads, writes=writes)
        return out


class ShardedState:
    """Facade over N hash-partitioned :class:`VerifierState` instances.

    The facade is intentionally thin: mechanisms never see it (each shard
    verifier owns exactly one partition), but the orchestration layer uses
    it for key-routed access and whole-run accounting, and the inline
    parallel backend exposes it for memory instrumentation.
    """

    def __init__(
        self,
        shards: int,
        initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
        incremental_graph: bool = True,
    ):
        self.router = ShardRouter(shards)
        parts = self.router.partition_initial_db(initial_db)
        self.partitions: List[VerifierState] = [
            VerifierState(initial_db=part, incremental_graph=incremental_graph)
            for part in parts
        ]

    @property
    def shards(self) -> int:
        return self.router.shards

    def partition(self, shard: int) -> VerifierState:
        return self.partitions[shard]

    def partition_for(self, key: Key) -> VerifierState:
        return self.partitions[self.router.shard_of(key)]

    def chain(self, key: Key):
        """Version chain of ``key`` in its owning partition."""
        return self.partition_for(key).chain(key)

    def get_txn(self, txn_id: str) -> Optional[TxnState]:
        """Transaction state as seen by shard 0 (begin/terminal controls
        broadcast, so every shard tracks every transaction's lifecycle)."""
        return self.partitions[0].get_txn(txn_id)

    def live_structure_count(self) -> int:
        """Total retained structures across all partitions (the memory
        axis of the scaling experiments)."""
        return sum(part.live_structure_count() for part in self.partitions)
