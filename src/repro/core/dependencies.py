"""Transaction dependencies and the verifier-side dependency graph.

Section II-A defines three dependency types between committed transactions:

* ``ww`` -- t_n installed the direct successor of a version t_m installed;
* ``wr`` -- t_n read a version t_m installed;
* ``rw`` -- t_n installed the direct successor of a version t_m read
  (anti-dependency).

The verifier deduces ``wr`` in the CR mechanism, ``ww`` in ME/FUW, and
derives ``rw`` from the two (Fig. 9).  All deduced dependencies flow into a
single :class:`DependencyGraph`, which the SC mechanism checks against the
certifier the DBMS claims to implement.

Edge direction convention: an edge ``u -> v`` means *v depends on u*, i.e.
``u`` is (or must be serialised) before ``v``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from .intervals import Interval
from .report import Mechanism
from .topo import IncrementalTopology


class DepType(enum.Enum):
    WW = "ww"
    WR = "wr"
    RW = "rw"
    #: session order: same-client program order (a real-time edge).
    SO = "so"


@dataclass(slots=True)
class Dependency:
    """A deduced dependency edge ``src -> dst`` (dst depends on src).

    Treated as immutable by every consumer but not ``frozen``: one is
    built per deduced edge on the hot path, and the frozen-dataclass
    ``__init__`` (``object.__setattr__`` per field) costs ~3x a plain
    one.  Nothing hashes dependencies; equality stays field-wise."""

    src: str
    dst: str
    dep_type: DepType
    key: Optional[Any] = None
    #: mechanism that deduced the edge (provenance for bug reports).
    source: Optional[Mechanism] = None

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.src} --{self.dep_type.value}--> {self.dst}"


@dataclass
class TxnNode:
    """Per-transaction metadata kept alongside the graph node."""

    txn_id: str
    commit_interval: Optional[Interval] = None
    committed: bool = True
    #: incoming/outgoing rw edge presence, used by the SSI dangerous
    #: structure check without scanning adjacency lists.
    has_in_rw: bool = False
    has_out_rw: bool = False


class DependencyGraph:
    """Typed multigraph over committed transactions with an incremental
    acyclicity oracle.

    The graph deduplicates parallel edges of the same type (two conflicts on
    different keys between the same pair add one logical edge) but records
    all types present between a pair, since the certifier checks are
    type-sensitive.
    """

    def __init__(self, incremental: bool = True) -> None:
        #: incremental mode keeps a dynamic topological order and reports
        #: cycles at edge insertion (Leopard's SC).  Raw mode just stores
        #: adjacency -- the representation the naive cycle-search baseline
        #: re-scans after every commit.
        self._incremental = incremental
        self._topo = IncrementalTopology()
        self._raw_succ: Dict[str, Set[str]] = {}
        self._raw_pred: Dict[str, Set[str]] = {}
        self._nodes: Dict[str, TxnNode] = {}
        #: (src, dst) -> set of DepType
        self._edge_types: Dict[Tuple[str, str], Set[DepType]] = {}
        self.edge_count = 0
        #: zero-in-degree frontier: every node with no incoming structural
        #: edge.  Maintained on node/edge mutation so garbage collection
        #: (Definition 4 needs in-degree zero as its entry condition) can
        #: seed its candidate worklist without re-scanning the whole node
        #: table -- see :meth:`GarbageCollector._prune_graph`.
        self._zero_in: Set[str] = set()

    # -- nodes ----------------------------------------------------------------

    def add_txn(
        self, txn_id: str, commit_interval: Optional[Interval] = None
    ) -> TxnNode:
        node = self._nodes.get(txn_id)
        if node is None:
            node = TxnNode(txn_id=txn_id, commit_interval=commit_interval)
            self._nodes[txn_id] = node
            self._zero_in.add(txn_id)
            if self._incremental:
                self._topo.add_node(txn_id)
            else:
                self._raw_succ.setdefault(txn_id, set())
                self._raw_pred.setdefault(txn_id, set())
        elif commit_interval is not None and node.commit_interval is None:
            node.commit_interval = commit_interval
        return node

    def __contains__(self, txn_id: str) -> bool:
        return txn_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, txn_id: str) -> TxnNode:
        return self._nodes[txn_id]

    def nodes(self) -> List[str]:
        return list(self._nodes)

    def in_degree(self, txn_id: str) -> int:
        if self._incremental:
            return self._topo.in_degree(txn_id)
        return len(self._raw_pred.get(txn_id, ()))

    def successors(self, txn_id: str) -> Set[str]:
        if self._incremental:
            return self._topo.successors(txn_id)
        return set(self._raw_succ.get(txn_id, ()))

    def predecessors(self, txn_id: str) -> Set[str]:
        if self._incremental:
            return self._topo.predecessors(txn_id)
        return set(self._raw_pred.get(txn_id, ()))

    def edge_types(self, src: str, dst: str) -> Set[DepType]:
        return set(self._edge_types.get((src, dst), ()))

    def has_edge_type(self, src: str, dst: str, dep_type: DepType) -> bool:
        """Membership test without materialising the :meth:`edge_types`
        copy -- the ww-order oracle calls this per candidate pair."""
        return dep_type in self._edge_types.get((src, dst), ())

    # -- edges ----------------------------------------------------------------

    def add_dependency(self, dep: Dependency) -> Optional[List[str]]:
        """Insert a dependency edge.

        Returns ``None`` when the graph stays acyclic, or the cycle path
        (list of transaction ids, closing edge implied) when this edge
        would close one.  A cyclic edge still gets its type recorded so that
        certifier diagnostics can name the contradictory dependencies, but
        the structural edge is rejected, keeping the oracle consistent.
        """
        if dep.src == dep.dst:
            # Self-dependencies (a txn reading its own write) are not
            # inter-transaction dependencies; ignore them.
            return None
        self.add_txn(dep.src)
        self.add_txn(dep.dst)
        pair = (dep.src, dep.dst)
        types = self._edge_types.setdefault(pair, set())
        is_new_type = dep.dep_type not in types
        if is_new_type:
            types.add(dep.dep_type)
        if dep.dep_type is DepType.RW and is_new_type:
            self._nodes[dep.src].has_out_rw = True
            self._nodes[dep.dst].has_in_rw = True
        if not self._incremental:
            if dep.dst not in self._raw_succ[dep.src]:
                self._raw_succ[dep.src].add(dep.dst)
                self._raw_pred[dep.dst].add(dep.src)
                self._zero_in.discard(dep.dst)
            if is_new_type:
                self.edge_count += 1
            return None
        if self._topo.has_edge(dep.src, dep.dst):
            if is_new_type:
                self.edge_count += 1
            return None
        cycle = self._topo.add_edge(dep.src, dep.dst)
        if cycle is None:
            # The structural edge went in: dst gained an incoming edge.
            # Cycle-rejected edges are *not* inserted, so dst stays put.
            self._zero_in.discard(dep.dst)
            if is_new_type:
                self.edge_count += 1
        return cycle

    # -- pruning (Definition 4 support) ----------------------------------------

    def remove_txn(self, txn_id: str) -> List[str]:
        """Remove a garbage transaction and its outgoing edges.

        Returns the successors whose in-degree dropped to zero -- the nodes
        the removal promoted into the pruning frontier, which the garbage
        collector feeds straight back into its candidate worklist."""
        if txn_id not in self._nodes:
            return []
        successors = self.successors(txn_id)
        for succ in successors:
            types = self._edge_types.pop((txn_id, succ), set())
            self.edge_count -= len(types)
        for pred in self.predecessors(txn_id):
            types = self._edge_types.pop((pred, txn_id), set())
            self.edge_count -= len(types)
        if self._incremental:
            self._topo.remove_node(txn_id)
        else:
            for succ in self._raw_succ.pop(txn_id, set()):
                self._raw_pred[succ].discard(txn_id)
            for pred in self._raw_pred.pop(txn_id, set()):
                self._raw_succ[pred].discard(txn_id)
        del self._nodes[txn_id]
        self._zero_in.discard(txn_id)
        promoted = [succ for succ in successors if self.in_degree(succ) == 0]
        self._zero_in.update(promoted)
        return promoted

    def zero_in_degree_frontier(self) -> List[str]:
        """Snapshot of the zero-in-degree frontier (pruning candidates)."""
        return list(self._zero_in)

    @property
    def frontier_size(self) -> int:
        return len(self._zero_in)

    def _refresh_rw_flags(self, txn_id: str) -> None:
        node = self._nodes.get(txn_id)
        if node is None:
            return
        node.has_in_rw = any(
            DepType.RW in self._edge_types.get((pred, txn_id), ())
            for pred in self._topo.predecessors(txn_id)
        )
        node.has_out_rw = any(
            DepType.RW in self._edge_types.get((txn_id, succ), ())
            for succ in self._topo.successors(txn_id)
        )

    # -- whole-graph queries (used by baselines and tests) ----------------------

    def find_cycle(self) -> Optional[List[str]]:
        """Full DFS cycle search -- the expensive operation the incremental
        oracle avoids; exposed for cross-checking in tests."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in self._nodes}
        parent: Dict[str, Optional[str]] = {}
        for root in self._nodes:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[str, Any]] = [(root, iter(self.successors(root)))]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if colour.get(succ, WHITE) == WHITE:
                        colour[succ] = GREY
                        parent[succ] = node
                        stack.append((succ, iter(self.successors(succ))))
                        advanced = True
                        break
                    if colour.get(succ) == GREY:
                        path = [node]
                        while path[-1] != succ:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return path
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def verify_acyclic_invariant(self) -> bool:
        return self._topo.verify_invariant()
