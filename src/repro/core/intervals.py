"""Interval algebra for black-box isolation verification.

Every quantity Leopard reasons about -- version installation, snapshot
generation, lock acquisition and release, transaction commit -- is observed
only as a *time interval* ``(ts_bef, ts_aft)`` recorded at the client: the
true instant at which the database acted lies somewhere strictly inside the
interval, but is never known exactly.

This module provides the small algebra the verification mechanisms are built
on: precedence ("does every point of A precede every point of B?"),
overlap, and *feasibility* ("is there any choice of hidden instants for
which A's instant precedes B's?").  All mechanism theorems in the paper
(Theorems 2-4) reduce to compositions of these predicates.

Intervals are treated as **open**: the hidden instant satisfies
``ts_bef < t < ts_aft``.  With open intervals, ``a.ts_aft == b.ts_bef``
still means "A definitely before B", which matches how client-side
timestamps are taken (before the request is sent / after the response is
received).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

#: Timestamp used for versions that exist before any traced operation
#: (initial database population).  Using -inf keeps all comparison
#: predicates total without special cases.
NEG_INF = -math.inf

#: Timestamp for events that have not happened yet (e.g. the release time of
#: a lock held by a still-active transaction).
POS_INF = math.inf


@dataclass(frozen=True, order=True, slots=True)
class Interval:
    """An open time interval ``(ts_bef, ts_aft)`` observed at a client.

    The default ordering (``order=True``) sorts by ``ts_bef`` first, which is
    the sort key used throughout the two-level pipeline and the verifier.
    ``slots=True`` because intervals are the single most-allocated object in
    a verification run and every mechanism predicate reads their fields.
    """

    ts_bef: float
    ts_aft: float

    def __post_init__(self) -> None:
        if self.ts_aft < self.ts_bef:
            raise ValueError(
                f"interval end {self.ts_aft} precedes start {self.ts_bef}"
            )

    # -- basic predicates -------------------------------------------------

    def contains(self, t: float) -> bool:
        """Whether the hidden instant ``t`` could lie in this interval."""
        return self.ts_bef < t < self.ts_aft

    def precedes(self, other: "Interval") -> bool:
        """Definitely-before: every point of self precedes every point of
        ``other``.  Open intervals make the boundary case unambiguous."""
        return self.ts_aft <= other.ts_bef

    def follows(self, other: "Interval") -> bool:
        """Definitely-after: every point of self follows every point of
        ``other``."""
        return other.precedes(self)

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one instant, i.e. the
        relative order of the hidden instants cannot be determined."""
        return not self.precedes(other) and not other.precedes(self)

    def duration(self) -> float:
        return self.ts_aft - self.ts_bef

    # -- feasibility ------------------------------------------------------

    def can_precede(self, other: "Interval") -> bool:
        """Whether there exists a choice of hidden instants ``a`` in self
        and ``b`` in ``other`` with ``a < b``.

        This is the building block of the "possible orders" enumeration in
        the ME and FUW mechanisms: an order is *feasible* iff every
        happens-before constraint it imposes satisfies ``can_precede``.
        """
        return self.ts_bef < other.ts_aft

    def must_precede(self, other: "Interval") -> bool:
        """Whether every choice of hidden instants orders self first.
        Equivalent to :meth:`precedes` for open intervals."""
        return self.precedes(other)

    # -- convenience ------------------------------------------------------

    def union_span(self, other: "Interval") -> "Interval":
        """The smallest interval covering both operands."""
        return Interval(
            min(self.ts_bef, other.ts_bef), max(self.ts_aft, other.ts_aft)
        )

    def shift(self, delta: float) -> "Interval":
        return Interval(self.ts_bef + delta, self.ts_aft + delta)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"({self.ts_bef:.6f}, {self.ts_aft:.6f})"


#: The interval of the initial (pre-loaded) database state.
INITIAL_INTERVAL = Interval(NEG_INF, NEG_INF)

#: The interval of an event that has not been observed yet.
UNFINISHED_INTERVAL = Interval(POS_INF, POS_INF)


def overlap_ratio(intervals: Iterable[Interval]) -> float:
    """Fraction of adjacent (sorted by ``ts_bef``) interval pairs that
    overlap.  Used by the Fig. 4 experiment as a cheap summary statistic."""
    ordered = sorted(intervals)
    if len(ordered) < 2:
        return 0.0
    overlapping = sum(
        1 for a, b in zip(ordered, ordered[1:]) if a.overlaps(b)
    )
    return overlapping / (len(ordered) - 1)


def merge_spans(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Smallest interval covering all operands, or ``None`` when empty."""
    span: Optional[Interval] = None
    for interval in intervals:
        span = interval if span is None else span.union_span(interval)
    return span
