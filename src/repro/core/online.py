"""Online verification: push-based tracing with immediate alerting.

The batch path (:class:`~repro.core.pipeline.TwoLevelPipeline` +
:class:`~repro.core.verifier.Verifier`) pulls complete client streams.  A
deployment wants the opposite direction: clients *push* traces as they
happen and the operator is alerted the moment a violation is detected
(challenge C3: "bugs can be reported and fixed as soon as possible").

:class:`OnlineVerifier` implements the push side of the two-level pipeline:
each client feeds its own monotone stream; traces are staged per client,
and whenever the watermark (the smallest head timestamp across client
stages) advances, everything older is dispatched to the verifier in sorted
order.  New violations fire the ``on_violation`` callback immediately after
the dispatching call that detected them.

A client that stops sending would freeze the watermark; deployments send
periodic heartbeats (empty progress marks) for idle clients --
:meth:`heartbeat` models exactly that.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .report import VerificationReport, Violation
from .spec import IsolationSpec, PG_SERIALIZABLE
from .trace import Trace
from .verifier import Verifier

ViolationCallback = Callable[[Violation], None]


class OnlineVerifier:
    """Streaming verification facade with at-dispatch alerting."""

    def __init__(
        self,
        spec: IsolationSpec = PG_SERIALIZABLE,
        initial_db=None,
        on_violation: Optional[ViolationCallback] = None,
        verifier=None,
        **verifier_kwargs,
    ):
        """``verifier`` injects any verifier-shaped backend (``process`` /
        ``finish`` plus either a ``violations_so_far()`` accessor or the
        serial ``state.descriptor``) -- the parallel path plugs in a
        :class:`~repro.core.parallel.ParallelVerifier` this way.  When
        omitted, a serial :class:`Verifier` is built from the remaining
        arguments."""
        if verifier is not None and verifier_kwargs:
            raise ValueError(
                "pass construction kwargs or an injected verifier, not both"
            )
        self._verifier = verifier if verifier is not None else Verifier(
            spec=spec, initial_db=initial_db, **verifier_kwargs
        )
        self._on_violation = on_violation
        #: per-client staged traces (each client's stream is monotone).
        self._stages: Dict[int, List[Trace]] = {}
        #: watermark floor per client: last timestamp the client vouched
        #: that it will never send anything older than.
        self._floors: Dict[int, float] = {}
        self._heap: List[Tuple[float, int, Trace]] = []
        self._alerted = 0
        self._dispatched = 0
        #: timestamp of the newest trace already handed to the backend --
        #: the point of no return: the dispatch stream is globally sorted,
        #: so a trace behind it can never be merged soundly.
        self._emitted = float("-inf")
        self._finished = False

    # -- client-facing ingestion --------------------------------------------------

    def register_client(self, client_id: int) -> None:
        """Announce a client before its first trace so the watermark can
        account for it (unregistered clients are registered on first
        feed)."""
        self._stages.setdefault(client_id, [])
        self._floors.setdefault(client_id, float("-inf"))

    def feed(self, trace: Trace) -> int:
        """Push one trace from its client; returns how many traces the
        resulting watermark advance dispatched to the verifier."""
        if self._finished:
            raise RuntimeError("online verifier already finished")
        stage = self._stages.setdefault(trace.client_id, [])
        floor = self._floors.setdefault(trace.client_id, float("-inf"))
        if trace.ts_bef < floor:
            raise ValueError(
                f"client {trace.client_id} pushed trace at {trace.ts_bef} "
                f"behind its progress mark {floor}"
            )
        if trace.ts_bef < self._emitted:
            raise ValueError(
                f"client {trace.client_id} pushed trace at {trace.ts_bef} "
                f"behind the dispatched watermark {self._emitted}; sessions "
                f"must join before verification passes their first timestamp"
            )
        if stage and trace.ts_bef < stage[-1].ts_bef:
            raise ValueError(
                f"client {trace.client_id} stream is not monotone"
            )
        stage.append(trace)
        self._floors[trace.client_id] = trace.ts_bef
        return self._advance()

    def feed_batch(self, client_id: int, traces: Sequence[Trace]) -> int:
        """Push a whole run of traces from one client -- the service
        gateway's per-frame entry point.  Equivalent to calling
        :meth:`feed` per trace, but the run is validated and staged first
        and the watermark advances once, so a thousand-trace frame costs
        one dispatch pass instead of a thousand.  Returns the number of
        traces the advance dispatched."""
        if self._finished:
            raise RuntimeError("online verifier already finished")
        if not traces:
            return 0
        stage = self._stages.setdefault(client_id, [])
        floor = self._floors.setdefault(client_id, float("-inf"))
        if traces[0].ts_bef < self._emitted:
            raise ValueError(
                f"client {client_id} pushed trace at {traces[0].ts_bef} "
                f"behind the dispatched watermark {self._emitted}; sessions "
                f"must join before verification passes their first timestamp"
            )
        last = stage[-1].ts_bef if stage else floor
        for trace in traces:
            if trace.client_id != client_id:
                raise ValueError(
                    f"trace from client {trace.client_id} pushed on "
                    f"client {client_id}'s stream"
                )
            ts = trace.ts_bef
            if ts < floor:
                raise ValueError(
                    f"client {client_id} pushed trace at {ts} "
                    f"behind its progress mark {floor}"
                )
            if ts < last:
                raise ValueError(f"client {client_id} stream is not monotone")
            last = ts
        stage.extend(traces)
        self._floors[client_id] = last
        return self._advance()

    def feed_validated(self, client_id: int, traces: Sequence[Trace]) -> int:
        """Push a pre-validated run of traces from one client.

        The multi-loop service's acceptor workers already enforce the
        per-trace contract (ownership, monotonicity, the floor) before
        forwarding, so the hot verifier loop only re-checks the O(1)
        endpoints -- the late-join guard against the dispatched watermark
        and the batch-head floor -- then stages the run and advances.
        Behaviour is otherwise identical to :meth:`feed_batch`; callers
        that cannot vouch for the run must use :meth:`feed_batch`.
        """
        if self._finished:
            raise RuntimeError("online verifier already finished")
        if not traces:
            return 0
        stage = self._stages.setdefault(client_id, [])
        floor = self._floors.setdefault(client_id, float("-inf"))
        first = traces[0].ts_bef
        if first < self._emitted:
            raise ValueError(
                f"client {client_id} pushed trace at {first} "
                f"behind the dispatched watermark {self._emitted}; sessions "
                f"must join before verification passes their first timestamp"
            )
        last = stage[-1].ts_bef if stage else floor
        if first < max(floor, last):
            raise ValueError(
                f"client {client_id} pushed trace at {first} "
                f"behind its progress mark {max(floor, last)}"
            )
        stage.extend(traces)
        self._floors[client_id] = traces[-1].ts_bef
        return self._advance()

    def evict_client(self, client_id: int) -> int:
        """Forget a client entirely: drop its staged traces and remove it
        from watermark accounting.  The gateway evicts sessions that sent
        a poison frame, so one bad client cannot freeze everyone else's
        watermark.  Returns the number of staged traces dropped; the
        eviction itself may advance the watermark and dispatch other
        clients' traces."""
        stage = self._stages.pop(client_id, None)
        self._floors.pop(client_id, None)
        dropped = len(stage) if stage else 0
        if not self._finished and self._stages:
            self._advance()
        return dropped

    def heartbeat(self, client_id: int, now: float) -> int:
        """An idle client vouches that all its future traces begin after
        ``now``; unblocks the watermark without sending data."""
        if self._finished:
            raise RuntimeError("online verifier already finished")
        self.register_client(client_id)
        self._floors[client_id] = max(self._floors[client_id], now)
        return self._advance()

    # -- dispatch -------------------------------------------------------------------

    def _watermark(self) -> float:
        """Smallest timestamp any client could still produce: its staged
        head if it has one, else its progress floor."""
        marks = []
        for client_id, stage in self._stages.items():
            marks.append(stage[0].ts_bef if stage else self._floors[client_id])
        return min(marks) if marks else float("-inf")

    def _dispatch(self, batch: List[Trace]) -> None:
        """Feed one dispatch batch to the backend (batch entry point when
        it has one; both bundled verifiers do), then alert on anything
        new.  Alerts keep their documented granularity -- they fire
        inside the ``feed`` / ``heartbeat`` call whose watermark advance
        detected them."""
        process_batch = getattr(self._verifier, "process_batch", None)
        if process_batch is not None:
            process_batch(batch)
        else:
            process = self._verifier.process
            for trace in batch:
                process(trace)
        self._dispatched += len(batch)
        self._emitted = batch[-1].ts_bef
        self._alert_new()

    def _advance(self) -> int:
        stages = self._stages
        if not stages:
            return 0
        floors = self._floors
        # K-way merge to a fixpoint: the globally smallest staged trace
        # dispatches whenever its timestamp is covered by every client's
        # progress mark (staged head, or idle floor once the stage is
        # empty).  Dispatching it raises its client's mark -- and with it
        # possibly the watermark -- so the merge keeps going until an
        # idle client's floor bounds progress.  Staged entries sort ahead
        # of equal floors and tie-break on trace id, so the dispatch
        # order is the offline pipeline's ``(ts_bef, trace_id)`` order
        # exactly.
        cursors = {client_id: 0 for client_id in stages}
        entries = []
        for client_id, stage in stages.items():
            if stage:
                entries.append(
                    (stage[0].ts_bef, 0, stage[0].trace_id, client_id)
                )
            else:
                entries.append((floors[client_id], 1, 0, client_id))
        heapq.heapify(entries)
        batch: List[Trace] = []
        while entries:
            _ts, idle, _tid, client_id = entries[0]
            if idle:
                break
            stage = stages[client_id]
            cursor = cursors[client_id]
            batch.append(stage[cursor])
            cursor += 1
            cursors[client_id] = cursor
            if cursor < len(stage):
                head = stage[cursor]
                heapq.heapreplace(
                    entries, (head.ts_bef, 0, head.trace_id, client_id)
                )
            else:
                heapq.heapreplace(
                    entries, (floors[client_id], 1, 0, client_id)
                )
        for client_id, cursor in cursors.items():
            if cursor:
                del stages[client_id][:cursor]
        if batch:
            self._dispatch(batch)
        return len(batch)

    def _current_violations(self) -> List[Violation]:
        """Violations detected so far, across verifier backends: the
        parallel verifier exposes ``violations_so_far()``, the serial one
        its shared descriptor."""
        getter = getattr(self._verifier, "violations_so_far", None)
        if callable(getter):
            return getter()
        return self._verifier.state.descriptor.violations

    def _alert_new(self) -> None:
        violations = self._current_violations()
        while self._alerted < len(violations):
            violation = violations[self._alerted]
            self._alerted += 1
            if self._on_violation is not None:
                self._on_violation(violation)

    # -- introspection / completion ----------------------------------------------------

    @property
    def pending(self) -> int:
        """Traces staged but not yet dispatched (waiting on the watermark)."""
        return sum(len(s) for s in self._stages.values()) + len(self._heap)

    @property
    def dispatched(self) -> int:
        return self._dispatched

    def staged_count(self, client_id: int) -> int:
        """Traces currently staged (undispatched) for one client."""
        return len(self._stages.get(client_id, ()))

    @property
    def watermark(self) -> float:
        """The current dispatch bound (-inf before any client vouched)."""
        return self._watermark()

    def client_mark(self, client_id: int) -> float:
        """The smallest timestamp one client could still produce: its
        staged head if any, else its progress floor (+inf for unknown
        clients -- they cannot hold the watermark back)."""
        stage = self._stages.get(client_id)
        if stage:
            return stage[0].ts_bef
        return self._floors.get(client_id, float("inf"))

    @property
    def violations_so_far(self) -> List[Violation]:
        return self._current_violations()

    def live_structure_count(self) -> int:
        counter = getattr(self._verifier, "live_structure_count", None)
        if callable(counter):
            return counter()
        return self._verifier.state.live_structure_count()

    def snapshot(self) -> Dict[str, object]:
        """Live operator view: streaming state plus the backend registry's
        instruments (empty maps when the backend is not instrumented).
        Safe to call at any time; it never advances the watermark.
        Documented in ``docs/observability.md``."""
        registry = getattr(self._verifier, "metrics", None)
        watermark = self._watermark()
        # Classification-memo effectiveness gauge (docs/observability.md):
        # the hit rate answers "is the frontier/memo layer actually
        # absorbing the read traffic" without shipping the whole registry.
        memo = {"hits": 0, "misses": 0, "hit_rate": 0.0}
        if registry is not None and registry.enabled:
            # Sharded backends own the memo counters in their workers; the
            # coordinator's registry only absorbs them at finish.  The
            # backend accessor surfaces the mid-run values the workers ship
            # with every journal segment, so a status poll during the soak
            # sees real numbers instead of zeros.
            counts = getattr(self._verifier, "chain_memo_counts", None)
            live = counts() if callable(counts) else None
            if live is not None:
                memo["hits"], memo["misses"] = live
            else:
                memo["hits"] = sum(
                    registry.counters_with_name("chain.memo.hits").values()
                )
                memo["misses"] = sum(
                    registry.counters_with_name("chain.memo.misses").values()
                )
            lookups = memo["hits"] + memo["misses"]
            memo["hit_rate"] = (
                round(memo["hits"] / lookups, 4) if lookups else 0.0
            )
            registry.gauge("chain.memo.hit_rate").set(memo["hit_rate"])
        return {
            "chain_memo": memo,
            "clients": len(self._stages),
            "pending": self.pending,
            "dispatched": self._dispatched,
            # Neither -inf (no client has vouched yet) nor +inf (every
            # client said goodbye) is JSON-representable.
            "watermark": (
                watermark
                if float("-inf") < watermark < float("inf")
                else None
            ),
            "violations": len(self._current_violations()),
            "alerted": self._alerted,
            "live_structures": self.live_structure_count(),
            "metrics": (
                registry.snapshot()
                if registry is not None and registry.enabled
                else {"counters": {}, "gauges": {}, "histograms": {}}
            ),
        }

    def finish(self) -> VerificationReport:
        """Drain everything staged (all clients are declared done) and
        return the final report."""
        self._finished = True
        remaining: List[Trace] = list(
            trace for _, _, trace in self._heap
        )
        self._heap.clear()
        for stage in self._stages.values():
            remaining.extend(stage)
            stage.clear()
        remaining.sort(key=Trace.sort_key)
        if remaining:
            self._dispatch(remaining)
        report = self._verifier.finish()
        # Backends that defer global certification to finish (the parallel
        # merge pass) surface their remaining violations only now.
        violations = report.violations
        while self._alerted < len(violations):
            violation = violations[self._alerted]
            self._alerted += 1
            if self._on_violation is not None:
                self._on_violation(violation)
        return report
