"""Mutual-exclusion verification (Algorithm 2, lines 10-17).

Writes acquire exclusive locks during their trace intervals; under pure-2PL
specs reads additionally acquire shared locks.  All locks are released
during the transaction's commit/abort interval.  When a transaction
finishes, each of its locks is compared against the conflicting locks of
other already-finished transactions: if no serial order of the hidden lock
instants is feasible, mutual exclusion was violated (Fig. 7a); if exactly
one is, a ``ww`` dependency is deduced (Fig. 7b, Theorem 3).
"""

from __future__ import annotations

from typing import Callable

from .dependencies import Dependency, DepType
from .locktable import LockEntry, LockMode, OrderOutcome, classify_pair
from .mechanism import MechanismContext, MechanismVerifier, register_mechanism
from .report import Mechanism, Violation, ViolationKind
from .spec import IsolationSpec
from .state import TxnState, VerifierState
from .trace import Trace

EmitFn = Callable[[Dependency], None]


@register_mechanism("ME", order=10)
class MutualExclusionVerifier(MechanismVerifier):
    """Mirrors the lock manager of the DBMS under test.

    Lock acquisition is mirrored under every spec (``FOR UPDATE`` claims
    exclusive locks regardless of the level, and the lock table feeds the
    memory accounting); the terminal pair checks and their ww deductions
    only run when the spec claims mutual exclusion.
    """

    name = "ME"

    def __init__(
        self,
        state: VerifierState,
        spec: IsolationSpec,
        emit: EmitFn,
        metrics=None,
        emit_many=None,
    ):
        from .metrics import NULL_REGISTRY

        self._state = state
        self._spec = spec
        self._emit = emit
        #: batch publication (``bus.publish_many``): deduced ww edges are
        #: collected across a terminal's pair checks and handed to the bus
        #: as one group.  The pair checks read only lock intervals, so
        #: deferring delivery to the end of the terminal preserves the
        #: dependency sequence exactly.
        self._emit_many = emit_many
        #: reused deduction buffer for the terminal batch.
        self._dep_batch: list = []
        registry = metrics if metrics is not None else NULL_REGISTRY
        #: conflicting lock pairs whose hidden-instant orders were
        #: enumerated at a terminal (Fig. 7 / Theorem 3).
        self._m_pairs = registry.counter("me.lock_pairs.checked")
        self._m_locks = registry.counter("me.locks.acquired")
        self._m_deduced = registry.counter("me.ww.deduced")

    @classmethod
    def build(cls, ctx: MechanismContext) -> "MutualExclusionVerifier":
        return cls(
            ctx.state,
            ctx.spec,
            ctx.bus.publish,
            metrics=ctx.metrics,
            emit_many=ctx.bus.publish_many,
        )

    # -- trace handlers ------------------------------------------------------

    def on_write(self, trace: Trace, txn: TxnState) -> None:
        writes = trace.writes
        self._m_locks.inc(len(writes))
        acquire = self._state.locks.acquire
        txn_id = txn.txn_id
        interval = trace.interval
        for key in writes:
            acquire(txn_id, key, LockMode.EXCLUSIVE, interval)

    def on_read(self, trace: Trace, txn: TxnState) -> None:
        if trace.for_update:
            # SELECT ... FOR UPDATE claims exclusive locks under every spec
            # with a lock manager -- the paper's Bug 3 trigger.
            for key in trace.reads:
                self._state.locks.acquire(
                    txn.txn_id, key, LockMode.EXCLUSIVE, trace.interval
                )
            return
        if not self._spec.me_read_locks:
            return
        for key in trace.reads:
            self._state.locks.acquire(
                txn.txn_id, key, LockMode.SHARED, trace.interval
            )

    def on_terminal(self, txn: TxnState, trace: Trace, installed=None) -> None:
        """Close the transaction's locks and check each against conflicting
        finished locks (each conflicting pair is examined exactly once, by
        whichever transaction finishes second)."""
        if not self._spec.me:
            # The spec claims no lock manager: nothing to verify, and the
            # deduced orders would duplicate what FUW already provides.
            return
        released = self._state.locks.release_all(
            txn.txn_id, trace.interval, committed=txn.committed
        )
        if not released:
            return
        for entry, conflicts in released:
            for other in conflicts:
                self._check_pair(entry, other)
        batch = self._dep_batch
        if batch:
            if self._emit_many is not None:
                self._emit_many(batch)
            else:
                for dep in batch:
                    self._emit(dep)
            batch.clear()

    # -- pair analysis ------------------------------------------------------------

    def _check_pair(self, entry: LockEntry, other: LockEntry) -> None:
        outcome = classify_pair(entry, other)
        overlapped = self._spans_overlap(entry, other)
        self._state.stats.conflict_pairs += 1
        self._m_pairs.inc()
        if overlapped:
            self._state.stats.overlapped_pairs += 1
        if outcome is OrderOutcome.VIOLATION:
            self._state.descriptor.record(
                Violation(
                    mechanism=Mechanism.MUTUAL_EXCLUSION,
                    kind=ViolationKind.INCOMPATIBLE_LOCKS,
                    txns=tuple(sorted((entry.txn_id, other.txn_id))),
                    key=entry.key,
                    details=(
                        f"{entry.mode.value} lock of {entry.txn_id} "
                        f"(acquired {entry.acquire}, released {entry.release}) "
                        f"necessarily overlaps {other.mode.value} lock of "
                        f"{other.txn_id} (acquired {other.acquire}, released "
                        f"{other.release})"
                    ),
                )
            )
            return
        if outcome is OrderOutcome.UNCERTAIN:
            return
        if overlapped:
            self._state.stats.deduced_overlapped_pairs += 1
        if entry.mode is not LockMode.EXCLUSIVE or other.mode is not LockMode.EXCLUSIVE:
            # Shared/exclusive orders correspond to wr or rw dependencies,
            # which the CR mechanism deduces with version information; the
            # lock order alone does not identify which version was read.
            return
        if not (entry.committed and other.committed):
            return
        if outcome is OrderOutcome.FIRST_BEFORE_SECOND:
            src, dst = entry.txn_id, other.txn_id
        else:
            src, dst = other.txn_id, entry.txn_id
        self._m_deduced.inc()
        self._dep_batch.append(
            Dependency(
                src=src,
                dst=dst,
                dep_type=DepType.WW,
                key=entry.key,
                source=Mechanism.MUTUAL_EXCLUSION,
            )
        )

    @staticmethod
    def _spans_overlap(entry: LockEntry, other: LockEntry) -> bool:
        """Whether the two lock *lifetimes* (acquire begin to release end)
        overlap -- the Fig. 13 notion of conflicting traces overlapping."""
        return not (
            entry.release.ts_aft <= other.acquire.ts_bef
            or other.release.ts_aft <= entry.acquire.ts_bef
        )
