"""Leopard core: black-box isolation-level verification.

Public surface of the paper's contribution: interval-based traces, the
two-level pipeline, and the mechanism-mirrored verifier.
"""

from .anomalies import Anomaly, AnomalySummary, anomalies_of, classify
from .intervals import INITIAL_INTERVAL, Interval
from .io import (
    dump_client_streams,
    dump_initial_db,
    dump_traces,
    load_client_streams,
    load_initial_db,
    load_traces,
)
from .bus import DependencyBus, VersionOrderDeriver
from .dependencies import Dependency, DependencyGraph, DepType
from .mechanism import (
    MechanismContext,
    MechanismVerifier,
    build_mechanisms,
    register_mechanism,
    registered_mechanisms,
    unregister_mechanism,
)
from .online import OnlineVerifier
from .parallel import (
    GraphOnlyCertifier,
    ParallelVerifier,
    ShardResult,
    ShardVerifier,
    verify_traces_parallel,
)
from .sharding import ShardedState, ShardRouter, stable_hash
from .pipeline import (
    ClientFeed,
    NaiveGlobalSorter,
    TwoLevelPipeline,
    pipeline_from_client_streams,
    sorted_traces,
)
from .report import (
    BugDescriptor,
    Mechanism,
    VerificationReport,
    VerificationStats,
    Violation,
    ViolationKind,
)
from .spec import (
    DBMS_PROFILES,
    CertifierKind,
    CRLevel,
    IsolationLevel,
    IsolationSpec,
    PG_READ_COMMITTED,
    PG_REPEATABLE_READ,
    PG_SERIALIZABLE,
    READ_COMMITTED,
    SERIALIZABLE,
    SNAPSHOT_ISOLATION,
    profile,
    profiles_for,
    supported_dbms,
)
from .trace import KeyRange, OpKind, OpStatus, Trace, apply_delta, is_tombstone, tombstone
from .verifier import Verifier, verify_traces
from .versions import Version, VersionChain

__all__ = [
    "Anomaly",
    "AnomalySummary",
    "anomalies_of",
    "classify",
    "dump_client_streams",
    "dump_initial_db",
    "dump_traces",
    "load_client_streams",
    "load_initial_db",
    "load_traces",
    "INITIAL_INTERVAL",
    "Interval",
    "Dependency",
    "DependencyBus",
    "DependencyGraph",
    "DepType",
    "VersionOrderDeriver",
    "MechanismContext",
    "MechanismVerifier",
    "build_mechanisms",
    "register_mechanism",
    "registered_mechanisms",
    "unregister_mechanism",
    "GraphOnlyCertifier",
    "ParallelVerifier",
    "ShardResult",
    "ShardVerifier",
    "verify_traces_parallel",
    "ShardedState",
    "ShardRouter",
    "stable_hash",
    "OnlineVerifier",
    "ClientFeed",
    "NaiveGlobalSorter",
    "TwoLevelPipeline",
    "pipeline_from_client_streams",
    "sorted_traces",
    "BugDescriptor",
    "Mechanism",
    "VerificationReport",
    "VerificationStats",
    "Violation",
    "ViolationKind",
    "DBMS_PROFILES",
    "CertifierKind",
    "CRLevel",
    "IsolationLevel",
    "IsolationSpec",
    "PG_READ_COMMITTED",
    "PG_REPEATABLE_READ",
    "PG_SERIALIZABLE",
    "READ_COMMITTED",
    "SERIALIZABLE",
    "SNAPSHOT_ISOLATION",
    "profile",
    "profiles_for",
    "supported_dbms",
    "KeyRange",
    "apply_delta",
    "is_tombstone",
    "tombstone",
    "OpKind",
    "OpStatus",
    "Trace",
    "Verifier",
    "verify_traces",
    "Version",
    "VersionChain",
]
