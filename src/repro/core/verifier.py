"""Mechanism-mirrored verification: the Leopard Verifier (Section V).

The Verifier consumes traces in monotone before-timestamp order (from the
two-level pipeline) and mirrors the internal state of the DBMS -- version
chains, lock table, dependency graph.  Each trace is executed against that
state exactly as the engine would have executed the operation, and the four
mechanism verifiers check the result:

* data operations stage their effects and defer their checks;
* commit/abort traces trigger the per-transaction checks of all four
  mechanisms (by dispatch-order monotonicity, every trace able to influence
  those checks has already arrived);
* deduced dependencies are exchanged between mechanisms (wr from CR, ww
  from ME/FUW, rw derived per Fig. 9) and fed to the certifier;
* garbage structures are pruned periodically (Definition 4, Theorem 5).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from .certifier import SerializationCertifier
from .consistent_read import ConsistentReadVerifier
from .dependencies import Dependency, DepType
from .first_updater_wins import FirstUpdaterWinsVerifier
from .gc import GarbageCollector
from .mutual_exclusion import MutualExclusionVerifier
from .report import Mechanism, VerificationReport
from .spec import IsolationSpec, PG_SERIALIZABLE
from .state import TxnState, TxnStatus, VerifierState
from .trace import INIT_TXN, Key, OpKind, OpStatus, Trace
from .versions import Version


class Verifier:
    """Verifies one isolation spec against a stream of interval traces.

    Parameters
    ----------
    spec:
        The isolation level (mechanism assembly) the DBMS claims.
    initial_db:
        Record images loaded before the traced run started.
    gc_every:
        Run garbage collection every N traces (0 disables GC -- used by the
        memory ablation benchmarks).
    exchange_dependencies:
        Whether mechanisms share deduced dependencies (Section V-A).  The
        ablation value ``False`` still feeds the certifier but stops CR from
        using deduced ww orders to shrink candidate sets.
    minimize_candidates:
        Whether CR uses the Fig. 6 minimal candidate set (``False`` checks
        reads against every committed version -- the naive ablation).
    check_aborted_reads:
        Whether reads of aborted transactions are still CR-checked (they
        must be: an engine may not serve inconsistent data even to a
        transaction that later rolls back).
    """

    def __init__(
        self,
        spec: IsolationSpec = PG_SERIALIZABLE,
        initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
        gc_every: int = 512,
        exchange_dependencies: bool = True,
        minimize_candidates: bool = True,
        check_aborted_reads: bool = True,
        incremental_graph: bool = True,
        session_order: bool = True,
    ):
        """``session_order`` adds same-client program-order edges to the
        dependency graph (strong-session guarantee).  Sound for every
        snapshot-based engine -- a transaction beginning after its session
        predecessor committed always sees its effects -- and it lets the
        certifier catch "time-travel" bugs where a session's later
        transaction serialises before its earlier one."""
        self.spec = spec
        self._session_order = session_order
        self._session_tail: dict = {}
        self.state = VerifierState(
            initial_db=initial_db, incremental_graph=incremental_graph
        )
        self._exchange = exchange_dependencies
        self._minimize = minimize_candidates
        self._check_aborted_reads = check_aborted_reads
        self._cr = ConsistentReadVerifier(
            self.state,
            spec,
            self._emit,
            on_read_match=self._on_read_match,
            minimal=minimize_candidates,
        )
        self._me = MutualExclusionVerifier(self.state, spec, self._emit)
        self._fuw = FirstUpdaterWinsVerifier(self.state, spec, self._emit)
        self._sc = SerializationCertifier(self.state, spec)
        self._gc: Optional[GarbageCollector] = None
        if gc_every:
            self._gc = GarbageCollector(
                self.state, every=gc_every, on_txn_pruned=self._sc.on_txn_pruned
            )
        self._finished = False
        if not exchange_dependencies:
            # Ablation: mechanisms stop sharing deduced ww orders, so CR's
            # candidate sets cannot be shrunk by other mechanisms' findings.
            self.state.ww_order = lambda a, b: None  # type: ignore[method-assign]

    # -- trace intake -----------------------------------------------------------

    def process(self, trace: Trace) -> None:
        """Execute one dispatched trace against the mirrored state."""
        if self._finished:
            raise RuntimeError("verifier already finished")
        state = self.state
        state.stats.traces_processed += 1
        state.watermark = max(state.watermark, trace.ts_bef)
        txn = state.txn(trace)
        if txn.finished:
            raise ValueError(
                f"trace for already-terminated transaction {trace.txn_id}"
            )
        txn.note_operation(trace)
        if trace.kind is OpKind.READ:
            if trace.status is OpStatus.OK:
                self._cr.on_read(trace, txn)
                self._me.on_read(trace, txn)
        elif trace.kind is OpKind.WRITE:
            if trace.status is OpStatus.OK:
                self._me.on_write(trace, txn)
                for key, columns in trace.writes.items():
                    version = state.chain(key).stage_write(
                        txn.txn_id, columns, trace.interval
                    )
                    txn.staged_versions.append(version)
                    txn.merge_own_write(key, columns)
        elif trace.kind is OpKind.COMMIT:
            self._on_commit(trace, txn)
        elif trace.kind is OpKind.ABORT:
            self._on_abort(trace, txn)
        if self._gc is not None:
            self._gc.maybe_collect()

    def process_all(self, traces: Iterable[Trace]) -> "Verifier":
        for trace in traces:
            self.process(trace)
        return self

    # -- terminal handling ---------------------------------------------------------

    def _on_commit(self, trace: Trace, txn: TxnState) -> None:
        state = self.state
        txn.status = TxnStatus.COMMITTED
        txn.terminal_interval = trace.interval
        state.stats.txns_committed += 1
        state.graph.add_txn(txn.txn_id, trace.interval)
        if self._session_order:
            predecessor = self._session_tail.get(trace.client_id)
            if predecessor is not None and predecessor in state.graph:
                self._emit(
                    Dependency(
                        src=predecessor,
                        dst=txn.txn_id,
                        dep_type=DepType.SO,
                        source=Mechanism.SERIALIZATION_CERTIFIER,
                    )
                )
            self._session_tail[trace.client_id] = txn.txn_id
        installed: List[Version] = []
        for key in {v.key for v in txn.staged_versions}:
            installed.extend(state.chain(key).commit_txn(txn.txn_id, trace.interval))
        # Order matters: ME and FUW deduce the ww edges that confirm version
        # adjacency before the rw derivation and the CR checks consume them.
        if self.spec.me:
            self._timed("ME", lambda: self._me.on_terminal(txn, trace))
        self._timed("FUW", lambda: self._fuw.on_commit(txn, installed))
        for version in installed:
            self._derive_rw_for_new_version(version)
        self._timed("CR", lambda: self._cr.on_terminal(txn))

    def _on_abort(self, trace: Trace, txn: TxnState) -> None:
        state = self.state
        txn.status = TxnStatus.ABORTED
        txn.terminal_interval = trace.interval
        state.stats.txns_aborted += 1
        for key in {v.key for v in txn.staged_versions}:
            state.chain(key).abort_txn(txn.txn_id)
        if self.spec.me:
            self._timed("ME", lambda: self._me.on_terminal(txn, trace))
        if self._check_aborted_reads:
            self._timed("CR", lambda: self._cr.on_terminal(txn))
        else:
            txn.pending_reads.clear()

    def _timed(self, mechanism: str, fn) -> None:
        """Run a mechanism step, accumulating its wall time for the
        time-breakdown experiment.  Nested calls (a mechanism emitting a
        dependency that the certifier times as SC) double-count by design:
        each bucket answers "how long did this mechanism's code run"."""
        import time

        start = time.perf_counter()
        try:
            fn()
        finally:
            bucket = self.state.stats.mechanism_seconds
            bucket[mechanism] = bucket.get(mechanism, 0.0) + (
                time.perf_counter() - start
            )

    # -- dependency exchange (Section V-A / Fig. 9) ------------------------------------

    def _emit(self, dep: Dependency) -> None:
        # A dependency endpoint that is neither a live graph node nor a
        # tracked transaction refers to a transaction already pruned as
        # garbage (Definition 4).  By Theorem 5 it cannot join any future
        # cycle, so the edge carries no information -- and inserting it
        # would resurrect a zombie node the GC could never release.
        for endpoint in (dep.src, dep.dst):
            if endpoint not in self.state.graph and self.state.get_txn(endpoint) is None:
                return
        stats = self.state.stats
        if dep.dep_type is DepType.WR:
            stats.deps_wr += 1
        elif dep.dep_type is DepType.WW:
            stats.deps_ww += 1
        elif dep.dep_type is DepType.SO:
            stats.deps_so += 1
        else:
            stats.deps_rw += 1
        self._timed("SC", lambda: self._sc.on_dependency(dep))
        if dep.dep_type is DepType.WW:
            self._derive_rw_from_ww(dep)

    def _order_confirmed(self, earlier: Version, later: Version) -> bool:
        """Whether the chain adjacency ``earlier -> later`` reflects a
        certain installation order: non-overlapping installation intervals,
        or a deduced ww dependency between the installers."""
        if earlier.effective_install.precedes(later.effective_install):
            return True
        return self.state.ww_order(earlier, later) is True

    def _on_read_match(self, version: Version, reader: str) -> None:
        """A read was uniquely matched to ``version``: record the reader,
        emit the wr dependency, and derive the rw anti-dependency towards
        the version's confirmed successor (Fig. 9).  The rw derivation also
        applies to reads of the initial database state, which produce no wr
        edge but still anti-depend on the first overwriter."""
        version.readers.add(reader)
        if version.txn_id != INIT_TXN:
            self._emit(
                Dependency(
                    src=version.txn_id,
                    dst=reader,
                    dep_type=DepType.WR,
                    key=version.key,
                    source=Mechanism.CONSISTENT_READ,
                )
            )
        chain = self.state.chains.get(version.key)
        if chain is None:
            return
        successor = chain.successor_of(version)
        if (
            successor is not None
            and successor.txn_id != reader
            and self._order_confirmed(version, successor)
        ):
            self._emit(
                Dependency(
                    src=reader,
                    dst=successor.txn_id,
                    dep_type=DepType.RW,
                    key=version.key,
                    source=Mechanism.SERIALIZATION_CERTIFIER,
                )
            )

    def _derive_rw_from_ww(self, dep: Dependency) -> None:
        """A deduced ww edge confirms version adjacency; readers of the
        earlier version anti-depend on the later installer (Fig. 9)."""
        if dep.key is None:
            return
        chain = self.state.chains.get(dep.key)
        if chain is None:
            return
        for version in chain.committed_versions():
            if version.txn_id != dep.src:
                continue
            successor = chain.successor_of(version)
            if successor is None or successor.txn_id != dep.dst:
                continue
            for reader in version.readers:
                if reader == dep.dst or reader == version.txn_id:
                    continue
                self._emit(
                    Dependency(
                        src=reader,
                        dst=dep.dst,
                        dep_type=DepType.RW,
                        key=dep.key,
                        source=Mechanism.SERIALIZATION_CERTIFIER,
                    )
                )

    def _derive_rw_for_new_version(self, version: Version) -> None:
        """When a version lands in the chain, readers of its now-confirmed
        predecessor anti-depend on it."""
        chain = self.state.chains.get(version.key)
        if chain is None:
            return
        predecessor = chain.predecessor_of(version)
        if predecessor is None or not self._order_confirmed(predecessor, version):
            return
        for reader in predecessor.readers:
            if reader == version.txn_id:
                continue
            self._emit(
                Dependency(
                    src=reader,
                    dst=version.txn_id,
                    dep_type=DepType.RW,
                    key=version.key,
                    source=Mechanism.SERIALIZATION_CERTIFIER,
                )
            )

    # -- completion -----------------------------------------------------------------

    def finish(self) -> VerificationReport:
        """Finalise the run and return the report.  Transactions still
        active when the stream ends stay unverified, exactly as a real
        online verifier must leave in-flight transactions pending."""
        self._finished = True
        if self._gc is not None:
            self._gc.collect()
        return VerificationReport(
            descriptor=self.state.descriptor,
            stats=self.state.stats,
            isolation_level=self.spec.name,
        )


def verify_traces(
    traces: Iterable[Trace],
    spec: IsolationSpec = PG_SERIALIZABLE,
    initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
    **kwargs,
) -> VerificationReport:
    """One-shot convenience API: verify an already-sorted trace stream."""
    verifier = Verifier(spec=spec, initial_db=initial_db, **kwargs)
    verifier.process_all(traces)
    return verifier.finish()
