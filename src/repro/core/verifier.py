"""Mechanism-mirrored verification: the Leopard Verifier (Section V).

The Verifier consumes traces in monotone before-timestamp order (from the
two-level pipeline) and mirrors the internal state of the DBMS -- version
chains, lock table, dependency graph.  Each trace is executed against that
state exactly as the engine would have executed the operation, and the
mechanism verifiers check the result:

* data operations stage their effects and defer their checks;
* commit/abort traces trigger the per-transaction checks of all
  mechanisms (by dispatch-order monotonicity, every trace able to influence
  those checks has already arrived);
* deduced dependencies are exchanged between mechanisms over the
  :class:`~repro.core.bus.DependencyBus` (wr from CR, ww from ME/FUW, rw
  derived per Fig. 9) and fed to the certifier;
* garbage structures are pruned periodically (Definition 4, Theorem 5).

The Verifier itself is an *orchestrator*: the mechanism assembly is built
from the :class:`~repro.core.spec.IsolationSpec` through the registry in
:mod:`repro.core.mechanism`, so new mechanisms plug in without touching
this module, and the parallel path (:mod:`repro.core.parallel`) swaps the
certifier per shard through the same seam.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Mapping, Optional, Sequence

from .bus import DependencyBus
from .dependencies import Dependency, DepType
from .gc import GarbageCollector
from .mechanism import (
    MechanismContext,
    MechanismVerifier,
    build_mechanisms,
)
from .metrics import NULL_REGISTRY, MetricsRegistry
from .report import Mechanism, VerificationReport
from .spec import IsolationSpec, PG_SERIALIZABLE
from .state import TxnState, TxnStatus, VerifierState
from .trace import Key, OpKind, OpStatus, Trace
from .versions import Version

# The mechanism implementations register themselves on import; pulling the
# modules in here guarantees the registry is populated before any Verifier
# is constructed (bus brings the Fig. 9 deriver).
from . import certifier as _certifier  # noqa: F401
from . import consistent_read as _consistent_read  # noqa: F401
from . import first_updater_wins as _first_updater_wins  # noqa: F401
from . import mutual_exclusion as _mutual_exclusion  # noqa: F401


class Verifier:
    """Verifies one isolation spec against a stream of interval traces.

    Parameters
    ----------
    spec:
        The isolation level (mechanism assembly) the DBMS claims.
    initial_db:
        Record images loaded before the traced run started.
    gc_every:
        Run garbage collection every N traces (0 disables GC -- used by the
        memory ablation benchmarks).
    exchange_dependencies:
        Whether mechanisms share deduced dependencies (Section V-A).  The
        ablation value ``False`` still feeds the certifier but stops CR from
        using deduced ww orders to shrink candidate sets.
    minimize_candidates:
        Whether CR uses the Fig. 6 minimal candidate set (``False`` checks
        reads against every committed version -- the naive ablation).
    check_aborted_reads:
        Whether reads of aborted transactions are still CR-checked (they
        must be: an engine may not serve inconsistent data even to a
        transaction that later rolls back).
    state:
        Inject a pre-built :class:`VerifierState` (the sharded facade hands
        each shard verifier its partition this way); default builds one.
    mechanism_overrides:
        Per-name factory substitutions applied on top of the registry
        (``{"SC": factory}`` swaps the certifier without re-registering).
    metrics:
        A :class:`~repro.core.metrics.MetricsRegistry` to instrument the
        run with (``docs/observability.md``).  ``None`` (the default)
        wires every layer to the shared disabled registry: zero side
        effects, report output byte-identical to an uninstrumented build.
    chain_index:
        Whether version chains keep the bisect-maintained key index and
        classification memo (``docs/architecture.md``).  ``None`` (the
        default) defers to the ``REPRO_CR_INDEX`` environment escape
        hatch; ignored when ``state`` is injected (the state owns its
        chains).
    chain_frontier:
        Whether indexed chains take the committed-version frontier fast
        path with frontier-local memo invalidation.  ``None`` (the
        default) defers to ``REPRO_CR_FRONTIER``; ignored when ``state``
        is injected, and moot when the chain index is off.
    """

    def __init__(
        self,
        spec: IsolationSpec = PG_SERIALIZABLE,
        initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
        gc_every: int = 512,
        exchange_dependencies: bool = True,
        minimize_candidates: bool = True,
        check_aborted_reads: bool = True,
        incremental_graph: bool = True,
        session_order: bool = True,
        state: Optional[VerifierState] = None,
        mechanism_overrides=None,
        metrics: Optional[MetricsRegistry] = None,
        chain_index: Optional[bool] = None,
        chain_frontier: Optional[bool] = None,
    ):
        """``session_order`` adds same-client program-order edges to the
        dependency graph (strong-session guarantee).  Sound for every
        snapshot-based engine -- a transaction beginning after its session
        predecessor committed always sees its effects -- and it lets the
        certifier catch "time-travel" bugs where a session's later
        transaction serialises before its earlier one."""
        self.spec = spec
        self._session_order = session_order
        self._session_tail: dict = {}
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.state = state if state is not None else VerifierState(
            initial_db=initial_db,
            incremental_graph=incremental_graph,
            chain_index=chain_index,
            chain_frontier=chain_frontier,
        )
        self.state.attach_metrics(self.metrics)
        self.bus = DependencyBus(self.state, metrics=self.metrics)
        context = MechanismContext(
            state=self.state,
            spec=spec,
            bus=self.bus,
            options={
                "minimize_candidates": minimize_candidates,
                "check_aborted_reads": check_aborted_reads,
            },
            metrics=self.metrics,
        )
        self.mechanisms: List[MechanismVerifier] = build_mechanisms(
            context, overrides=mechanism_overrides
        )
        base = MechanismVerifier
        self._read_hooks = [
            m for m in self.mechanisms if type(m).on_read is not base.on_read
        ]
        self._write_hooks = [
            m for m in self.mechanisms if type(m).on_write is not base.on_write
        ]
        self._gc_hooks = [
            m for m in self.mechanisms if type(m).on_gc is not base.on_gc
        ]
        #: pre-bound hook methods: the per-trace loop calls these without
        #: re-resolving ``on_read``/``on_write`` attributes per operation.
        self._read_hook_fns = tuple(m.on_read for m in self._read_hooks)
        self._write_hook_fns = tuple(m.on_write for m in self._write_hooks)
        #: precompiled terminal dispatch: (mechanism, name, histogram,
        #: drain) with name/histogram None for untimed mechanisms.
        #: Computing this once keeps the per-terminal loop free of closures
        #: and branches on mechanism flags (the histogram handles are
        #: no-ops when the registry is disabled, so timing needs no enabled
        #: check).  ``drain`` is the mechanism's deferred dependency-
        #: delivery hook (CR's unique-match queue): it runs right after the
        #: mechanism's timed window closes, before the next mechanism's
        #: hook, so attribution improves while delivery order is unchanged.
        def _deferred_drain(m):
            enable = getattr(m, "enable_deferred_matches", None)
            return enable() if enable is not None else None

        self._terminal_dispatch = tuple(
            (
                m,
                m.name if m.timed else None,
                self.metrics.histogram(
                    "mechanism.terminal.seconds", mechanism=m.name
                )
                if m.timed
                else None,
                _deferred_drain(m),
            )
            for m in self.mechanisms
        )
        self._m_txns_pruned = self.metrics.counter("gc.txns.pruned")
        self._gc: Optional[GarbageCollector] = None
        if gc_every:
            self._gc = GarbageCollector(
                self.state,
                every=gc_every,
                on_txn_pruned=self._on_txn_pruned,
                metrics=self.metrics,
            )
        self._finished = False
        if not exchange_dependencies:
            # Ablation: mechanisms stop sharing deduced ww orders, so CR's
            # candidate sets cannot be shrunk by other mechanisms' findings.
            self.state.ww_order = lambda a, b: None  # type: ignore[method-assign]

    def mechanism(self, name: str) -> MechanismVerifier:
        """Look up an assembled mechanism by registry name."""
        for m in self.mechanisms:
            if m.name == name:
                return m
        raise KeyError(name)

    # -- trace intake -----------------------------------------------------------

    def process(self, trace: Trace) -> None:
        """Execute one dispatched trace against the mirrored state.

        This is the hottest function in the serial verifier; the cheap
        per-trace bookkeeping (watermark, first-interval capture, the GC
        countdown) is inlined rather than delegated."""
        if self._finished:
            raise RuntimeError("verifier already finished")
        state = self.state
        state.stats.traces_processed += 1
        ts_bef = trace.ts_bef
        if ts_bef > state.watermark:
            state.watermark = ts_bef
        # Inline VerifierState.txn.
        txn_id = trace.txn_id
        txn = state.txns.get(txn_id)
        if txn is None:
            txn = TxnState(txn_id=txn_id, client_id=trace.client_id)
            state.txns[txn_id] = txn
        if txn.status is not TxnStatus.ACTIVE:
            raise ValueError(
                f"trace for already-terminated transaction {trace.txn_id}"
            )
        # Inline TxnState.note_operation.
        if txn.first_interval is None:
            txn.first_interval = trace.interval
        txn.op_count += 1
        kind = trace.kind
        if kind is OpKind.READ:
            if trace.status is OpStatus.OK:
                for hook in self._read_hook_fns:
                    hook(trace, txn)
        elif kind is OpKind.WRITE:
            if trace.status is OpStatus.OK:
                for hook in self._write_hook_fns:
                    hook(trace, txn)
                txn_id = txn.txn_id
                interval = trace.interval
                staged = txn.staged_versions.append
                chains = state.chains
                for key, columns in trace.writes.items():
                    chain = chains.get(key)
                    if chain is None:
                        chain = state.chain(key)
                    staged(chain.stage_write(txn_id, columns, interval))
                    txn.merge_own_write(key, columns)
        elif kind is OpKind.COMMIT:
            self._on_commit(trace, txn)
        elif kind is OpKind.ABORT:
            self._on_abort(trace, txn)
        gc = self._gc
        if gc is not None:
            # Inline GarbageCollector.maybe_collect (a call per trace).
            gc._since_last += 1
            if gc._since_last >= gc._every:
                gc._since_last = 0
                gc.collect()

    def process_batch(self, traces: Sequence[Trace]) -> None:
        """Execute one dispatched batch against the mirrored state.

        Semantically identical to calling :meth:`process` per trace (the
        equivalence tests pin this); the batched ingestion spine lands
        here, so the loop invariants -- state, hook tuples, the GC
        countdown -- are bound once per batch instead of re-resolved
        through ``self`` on every trace.  :meth:`process` is the readable
        single-trace reference for the loop body.
        """
        if self._finished:
            raise RuntimeError("verifier already finished")
        state = self.state
        stats = state.stats
        txns_get = state.txns.get
        txns = state.txns
        chains_get = state.chains.get
        state_chain = state.chain
        read_hooks = self._read_hook_fns
        write_hooks = self._write_hook_fns
        # The common assemblies have exactly one read hook (CR) and one
        # write hook (ME); dispatching through a bound local skips the
        # tuple iteration per operation.
        read_hook = read_hooks[0] if len(read_hooks) == 1 else None
        write_hook = write_hooks[0] if len(write_hooks) == 1 else None
        on_commit = self._on_commit
        on_abort = self._on_abort
        gc = self._gc
        ok = OpStatus.OK
        read_kind, write_kind = OpKind.READ, OpKind.WRITE
        commit_kind = OpKind.COMMIT
        active = TxnStatus.ACTIVE
        new_txn = TxnState
        watermark = state.watermark
        stats.traces_processed += len(traces)
        # GC countdown as a plain local, pre-sliced so collections fire at
        # exactly the trace indices the per-trace reference fires them at;
        # the residue is written back after the loop.
        remaining = (gc._every - gc._since_last) if gc is not None else -1
        for trace in traces:
            interval = trace.interval
            ts_bef = interval.ts_bef
            if ts_bef > watermark:
                # Kept in a local and written back lazily: the only mid-run
                # reader is the collector (synced right before it fires).
                watermark = ts_bef
            txn_id = trace.txn_id
            txn = txns_get(txn_id)
            if txn is None:
                txn = new_txn(txn_id=txn_id, client_id=trace.client_id)
                txns[txn_id] = txn
            if txn.status is not active:
                raise ValueError(
                    f"trace for already-terminated transaction {trace.txn_id}"
                )
            if txn.first_interval is None:
                txn.first_interval = interval
            txn.op_count += 1
            kind = trace.kind
            if kind is read_kind:
                if trace.status is ok:
                    if read_hook is not None:
                        read_hook(trace, txn)
                    else:
                        for hook in read_hooks:
                            hook(trace, txn)
            elif kind is write_kind:
                if trace.status is ok:
                    if write_hook is not None:
                        write_hook(trace, txn)
                    else:
                        for hook in write_hooks:
                            hook(trace, txn)
                    staged = txn.staged_versions.append
                    for key, columns in trace.writes.items():
                        chain = chains_get(key)
                        if chain is None:
                            chain = state_chain(key)
                        staged(chain.stage_write(txn_id, columns, interval))
                        txn.merge_own_write(key, columns)
            elif kind is commit_kind:
                on_commit(trace, txn)
            else:
                on_abort(trace, txn)
            if remaining > 0:
                remaining -= 1
                if not remaining:
                    state.watermark = watermark
                    gc._since_last = 0
                    gc.collect()
                    remaining = gc._every
        state.watermark = watermark
        if gc is not None:
            gc._since_last = gc._every - remaining

    def process_all(self, traces: Iterable[Trace]) -> "Verifier":
        for trace in traces:
            self.process(trace)
        return self

    # -- terminal handling ---------------------------------------------------------

    def _dispatch_terminal(
        self, txn: TxnState, trace: Trace, installed: List[Version]
    ) -> None:
        """Run every mechanism's terminal hook in registry order.  The
        order is load-bearing: ME and FUW deduce the ww edges that confirm
        version adjacency before the Fig. 9 rw derivation and the CR
        checks consume them.

        CR's unique-match deliveries (the Fig. 9 wr recording and rw
        derivation, plus the certifier work those publications trigger)
        are drained *between* CR's timed window and the certifier's hook
        and billed to the ``RW-DERIVE`` bucket: same delivery order, same
        reports, but the CR bucket now answers "how long did the CR checks
        themselves run".  Other nesting (e.g. a commit-hook publication the
        certifier consumes inline) still double-counts by design."""
        bucket = self.state.stats.mechanism_seconds
        for mechanism, name, hist, drain in self._terminal_dispatch:
            if name is None:
                mechanism.on_terminal(txn, trace, installed)
            else:
                start = time.perf_counter()
                try:
                    mechanism.on_terminal(txn, trace, installed)
                finally:
                    elapsed = time.perf_counter() - start
                    bucket[name] = bucket.get(name, 0.0) + elapsed
                    hist.observe(elapsed)
            if drain is not None:
                start = time.perf_counter()
                drain()
                elapsed = time.perf_counter() - start
                bucket["RW-DERIVE"] = bucket.get("RW-DERIVE", 0.0) + elapsed

    def _on_commit(self, trace: Trace, txn: TxnState) -> None:
        state = self.state
        txn.status = TxnStatus.COMMITTED
        txn.terminal_interval = trace.interval
        state.note_terminal(txn.txn_id, trace.interval.ts_aft)
        state.stats.txns_committed += 1
        state.graph.add_txn(txn.txn_id, trace.interval)
        if self._session_order:
            predecessor = self._session_tail.get(trace.client_id)
            if predecessor is not None and predecessor in state.graph:
                self.bus.publish(
                    Dependency(
                        src=predecessor,
                        dst=txn.txn_id,
                        dep_type=DepType.SO,
                        source=Mechanism.SERIALIZATION_CERTIFIER,
                    )
                )
            self._session_tail[trace.client_id] = txn.txn_id
        installed: List[Version] = []
        if txn.staged_versions:
            for key in {v.key for v in txn.staged_versions}:
                chain = state.chain(key)
                installed.extend(chain.commit_txn(txn.txn_id, trace.interval))
                if len(chain) >= 2:
                    state.gc_version_candidates[key] = chain
        self._dispatch_terminal(txn, trace, installed)

    def _on_abort(self, trace: Trace, txn: TxnState) -> None:
        state = self.state
        txn.status = TxnStatus.ABORTED
        txn.terminal_interval = trace.interval
        state.note_terminal(txn.txn_id, trace.interval.ts_aft)
        state.stats.txns_aborted += 1
        if txn.staged_versions:
            for key in {v.key for v in txn.staged_versions}:
                chain = state.chain(key)
                if chain.abort_txn(txn.txn_id):
                    # Aborted residue is dropped by the next version GC pass.
                    state.gc_version_candidates[key] = chain
        self._dispatch_terminal(txn, trace, [])

    # -- dependency exchange (Section V-A / Fig. 9) ------------------------------------

    def _emit(self, dep: Dependency) -> None:
        """Historical emission entry point; now a bus publication."""
        self.bus.publish(dep)

    # -- garbage collection fan-out -------------------------------------------------

    def _on_txn_pruned(self, txn_id: str) -> None:
        self._m_txns_pruned.inc()
        for mechanism in self._gc_hooks:
            mechanism.on_gc(txn_id)

    # -- completion -----------------------------------------------------------------

    def finish(self) -> VerificationReport:
        """Finalise the run and return the report.  Transactions still
        active when the stream ends stay unverified, exactly as a real
        online verifier must leave in-flight transactions pending."""
        self._finished = True
        if self._gc is not None:
            self._gc.collect()
        return VerificationReport(
            descriptor=self.state.descriptor,
            stats=self.state.stats,
            isolation_level=self.spec.name,
        )


def verify_traces(
    traces: Iterable[Trace],
    spec: IsolationSpec = PG_SERIALIZABLE,
    initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
    **kwargs,
) -> VerificationReport:
    """One-shot convenience API: verify an already-sorted trace stream."""
    verifier = Verifier(spec=spec, initial_db=initial_db, **kwargs)
    verifier.process_all(traces)
    return verifier.finish()
