"""Incremental cycle detection over a growing dependency graph.

The SC mechanism feeds dependencies into the graph one at a time as commits
stream past, so the cycle check must be *incremental*: re-running a full
DFS per edge would reintroduce exactly the superlinear cost the paper's
mechanism-mirrored design avoids.

This module implements the Pearce-Kelly dynamic topological ordering
algorithm (Pearce & Kelly, *A Dynamic Topological Sort Algorithm for
Directed Acyclic Graphs*, JEA 2007).  Each node carries an order index;
inserting an edge ``u -> v`` with ``ord[v] < ord[u]`` triggers a search
restricted to the *affected region* ``[ord[v], ord[u]]``.  If the forward
search from ``v`` reaches ``u`` a cycle exists and its path is reported;
otherwise the affected nodes are locally reordered.  Node deletion (used by
the garbage-transaction pruning of Definition 4) is O(degree).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

Node = Hashable


class IncrementalTopology:
    """Dynamic topological order with O(affected-region) edge insertion."""

    def __init__(self) -> None:
        self._ord: Dict[Node, int] = {}
        self._out: Dict[Node, Set[Node]] = {}
        self._in: Dict[Node, Set[Node]] = {}
        self._next_index = 0
        #: forward-search scratch shared between :meth:`_discover` (which
        #: fills it) and :meth:`_reorder` (which consumes it).  One list is
        #: reused across insertions instead of reallocating per affected-
        #: region search.
        self._delta_f: List[Node] = []

    # -- structure ----------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._ord

    def __len__(self) -> int:
        return len(self._ord)

    @property
    def edge_count(self) -> int:
        return sum(len(succ) for succ in self._out.values())

    def nodes(self) -> List[Node]:
        return list(self._ord)

    def successors(self, node: Node) -> Set[Node]:
        return set(self._out.get(node, ()))

    def predecessors(self, node: Node) -> Set[Node]:
        return set(self._in.get(node, ()))

    def in_degree(self, node: Node) -> int:
        return len(self._in.get(node, ()))

    def add_node(self, node: Node) -> None:
        """Append a node at the end of the current order (new transactions
        commit later than everything already ordered, so this is the common
        no-reorder case)."""
        if node in self._ord:
            return
        self._ord[node] = self._next_index
        self._next_index += 1
        self._out[node] = set()
        self._in[node] = set()

    def remove_node(self, node: Node) -> None:
        """Delete a node and all incident edges; order indices of the other
        nodes are untouched, so the invariant is preserved."""
        if node not in self._ord:
            return
        for succ in self._out.pop(node):
            self._in[succ].discard(node)
        for pred in self._in.pop(node):
            self._out[pred].discard(node)
        del self._ord[node]

    def has_edge(self, u: Node, v: Node) -> bool:
        return v in self._out.get(u, ())

    # -- edge insertion -------------------------------------------------------

    def add_edge(self, u: Node, v: Node) -> Optional[List[Node]]:
        """Insert ``u -> v``.

        Returns ``None`` when the graph stays acyclic, or the cycle as a
        node list ``[v, ..., u]`` (following edges forward, with the implicit
        closing edge ``u -> v``) when the insertion would create one.  On a
        cycle the edge is *not* inserted, so the structure remains a DAG and
        verification can continue reporting further violations.
        """
        self.add_node(u)
        self.add_node(v)
        if u == v:
            return [u]
        if v in self._out[u]:
            return None
        lower, upper = self._ord[v], self._ord[u]
        if lower > upper:
            # Already consistent with the order: no search needed.
            self._out[u].add(v)
            self._in[v].add(u)
            return None
        # Affected region search.
        cycle = self._discover(v, u, upper)
        if cycle is not None:
            return cycle
        self._reorder(u, v, lower)
        self._out[u].add(v)
        self._in[v].add(u)
        return None

    def _discover(self, start: Node, target: Node, upper: int) -> Optional[List[Node]]:
        """Forward DFS from ``start`` restricted to ord <= upper.  Fills
        ``self._delta_f`` with visited nodes; returns a cycle path if
        ``target`` is reachable."""
        delta_f = self._delta_f
        delta_f.clear()
        parent: Dict[Node, Node] = {}
        stack = [start]
        seen = {start}
        while stack:
            node = stack.pop()
            delta_f.append(node)
            for succ in self._out[node]:
                if succ == target:
                    # Path start -> ... -> node -> target exists; with the
                    # new edge target -> start this closes a cycle.
                    path = [node]
                    while path[-1] != start:
                        path.append(parent[path[-1]])
                    path.reverse()  # start ... node
                    path.append(target)
                    return path
                if succ not in seen and self._ord[succ] <= upper:
                    seen.add(succ)
                    parent[succ] = node
                    stack.append(succ)
        return None

    def _reorder(self, u: Node, v: Node, lower: int) -> None:
        """Pearce-Kelly local reordering of the affected region."""
        # Backward search from u restricted to ord >= lower.
        delta_b: List[Node] = []
        stack = [u]
        seen = {u}
        while stack:
            node = stack.pop()
            delta_b.append(node)
            for pred in self._in[node]:
                if pred not in seen and self._ord[pred] >= lower:
                    seen.add(pred)
                    stack.append(pred)
        delta_f = self._delta_f
        # Sort both deltas by current order and merge: backward region first.
        delta_b.sort(key=self._ord.__getitem__)
        delta_f.sort(key=self._ord.__getitem__)
        affected = delta_b + delta_f
        slots = sorted(self._ord[node] for node in affected)
        for node, slot in zip(affected, slots):
            self._ord[node] = slot

    # -- queries ---------------------------------------------------------------

    def order_of(self, node: Node) -> int:
        return self._ord[node]

    def topological_order(self) -> List[Node]:
        return sorted(self._ord, key=self._ord.__getitem__)

    def verify_invariant(self) -> bool:
        """Debug/property-test helper: every edge goes forward in the order."""
        return all(
            self._ord[u] < self._ord[v]
            for u, succs in self._out.items()
            for v in succs
        )
