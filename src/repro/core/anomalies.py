"""Adya-style anomaly catalogue and report classification.

The paper speaks the language of *mechanism violations* (a CR stale read,
an ME lock overlap, ...), while most of the isolation literature -- and the
Elle baseline -- speaks Adya's anomaly taxonomy (G0, G1a, ...).  This
module maps between the two: every :class:`~repro.core.report.Violation`
kind is assigned the anomalies it witnesses, and a report can be summarised
as the set of classic anomalies it exposes together with the strongest
isolation level that still tolerates the history.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from .report import VerificationReport, ViolationKind
from .spec import IsolationLevel


class Anomaly(enum.Enum):
    """Classic isolation anomalies (Adya / Berenson et al.)."""

    DIRTY_WRITE = "G0"          # write cycle / overlapping writes
    DIRTY_READ = "G1a"          # read of an aborted or uncommitted write
    INTERMEDIATE_READ = "G1b"   # read of a non-final version of a txn
    CIRCULAR_INFO_FLOW = "G1c"  # ww/wr dependency cycle
    NON_REPEATABLE_READ = "fuzzy-read"
    LOST_UPDATE = "P4"
    READ_SKEW = "A5A"
    WRITE_SKEW = "A5B"
    SERIALIZATION_FAILURE = "G2"
    PHANTOM = "P3"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS: Dict[Anomaly, str] = {
    Anomaly.DIRTY_WRITE: "two transactions wrote the same record concurrently",
    Anomaly.DIRTY_READ: "a transaction read data that was never committed",
    Anomaly.INTERMEDIATE_READ: "a transaction read a non-final version",
    Anomaly.CIRCULAR_INFO_FLOW: "committed information flow forms a cycle",
    Anomaly.NON_REPEATABLE_READ: "a re-read returned a different committed value",
    Anomaly.LOST_UPDATE: "a committed update was silently overwritten",
    Anomaly.READ_SKEW: "a transaction observed an inconsistent mix of versions",
    Anomaly.WRITE_SKEW: "disjoint writes based on overlapping reads broke an invariant",
    Anomaly.SERIALIZATION_FAILURE: "no serial order explains the history",
    Anomaly.PHANTOM: "a re-evaluated predicate returned an inconsistent row set",
}

#: which anomalies each violation kind witnesses.
VIOLATION_ANOMALIES: Dict[ViolationKind, Tuple[Anomaly, ...]] = {
    ViolationKind.STALE_READ: (Anomaly.READ_SKEW,),
    ViolationKind.FUTURE_READ: (Anomaly.NON_REPEATABLE_READ,),
    ViolationKind.DIRTY_READ: (Anomaly.DIRTY_READ,),
    ViolationKind.OWN_WRITE_LOST: (Anomaly.INTERMEDIATE_READ,),
    ViolationKind.UNKNOWN_VERSION: (Anomaly.DIRTY_READ,),
    ViolationKind.NON_MONOTONIC_READ: (Anomaly.NON_REPEATABLE_READ,),
    ViolationKind.PHANTOM: (Anomaly.PHANTOM,),
    ViolationKind.INCOMPATIBLE_LOCKS: (Anomaly.DIRTY_WRITE,),
    ViolationKind.LOST_UPDATE: (Anomaly.LOST_UPDATE,),
    ViolationKind.DEPENDENCY_CYCLE: (Anomaly.SERIALIZATION_FAILURE,),
    ViolationKind.DANGEROUS_STRUCTURE: (
        Anomaly.WRITE_SKEW,
        Anomaly.SERIALIZATION_FAILURE,
    ),
    ViolationKind.TIMESTAMP_INVERSION: (Anomaly.SERIALIZATION_FAILURE,),
    ViolationKind.CONTRADICTORY_DEPENDENCIES: (Anomaly.CIRCULAR_INFO_FLOW,),
}

#: anomalies *tolerated* by each isolation level (ANSI + Berenson et al.
#: reading; an anomaly not listed must never appear under that level).
TOLERATED: Dict[IsolationLevel, FrozenSet[Anomaly]] = {
    IsolationLevel.READ_COMMITTED: frozenset(
        {
            Anomaly.PHANTOM,
            Anomaly.NON_REPEATABLE_READ,
            Anomaly.LOST_UPDATE,
            Anomaly.READ_SKEW,
            Anomaly.WRITE_SKEW,
            Anomaly.SERIALIZATION_FAILURE,
        }
    ),
    IsolationLevel.REPEATABLE_READ: frozenset(
        {
            Anomaly.PHANTOM,  # ANSI RR permits phantoms
            Anomaly.LOST_UPDATE,  # InnoDB-style RR (no FUW)
            Anomaly.WRITE_SKEW,
            Anomaly.SERIALIZATION_FAILURE,
        }
    ),
    IsolationLevel.SNAPSHOT_ISOLATION: frozenset(
        {Anomaly.WRITE_SKEW, Anomaly.SERIALIZATION_FAILURE}
    ),
    IsolationLevel.SERIALIZABLE: frozenset(),
}

#: strongest-to-weakest level order used by :func:`strongest_level_satisfied`.
_LEVEL_ORDER = (
    IsolationLevel.SERIALIZABLE,
    IsolationLevel.SNAPSHOT_ISOLATION,
    IsolationLevel.REPEATABLE_READ,
    IsolationLevel.READ_COMMITTED,
)


def anomalies_of(report: VerificationReport) -> Set[Anomaly]:
    """The classic anomalies a verification report witnesses."""
    found: Set[Anomaly] = set()
    for violation in report.violations:
        found.update(VIOLATION_ANOMALIES.get(violation.kind, ()))
    return found


def strongest_level_satisfied(report: VerificationReport) -> Optional[IsolationLevel]:
    """The strongest ANSI-ish level whose tolerated-anomaly set covers
    everything the report witnessed, or ``None`` when even read committed
    is violated (dirty reads/writes present).

    Note this judges only the anomalies a *particular run* exposed -- it is
    evidence, not proof, that the engine provides that level.
    """
    witnessed = anomalies_of(report)
    strongest: Optional[IsolationLevel] = None
    for level in reversed(_LEVEL_ORDER):  # weakest to strongest
        if witnessed <= TOLERATED[level]:
            strongest = level
        else:
            break  # tolerated sets only shrink from here on
    return strongest


@dataclass(frozen=True)
class AnomalySummary:
    """Human-facing classification of a verification report."""

    anomalies: Tuple[Anomaly, ...]
    strongest_level: Optional[IsolationLevel]

    def render(self) -> str:
        if not self.anomalies:
            return "no anomalies witnessed"
        lines = [
            f"{a.value:12s} {a.name.lower().replace('_', ' ')}: {a.description}"
            for a in self.anomalies
        ]
        level = (
            self.strongest_level.value
            if self.strongest_level is not None
            else "none (dirty reads/writes present)"
        )
        lines.append(f"strongest level consistent with this run: {level}")
        return "\n".join(lines)


def classify(report: VerificationReport) -> AnomalySummary:
    """Summarise a report in anomaly-taxonomy terms."""
    witnessed = sorted(anomalies_of(report), key=lambda a: a.value)
    return AnomalySummary(
        anomalies=tuple(witnessed),
        strongest_level=strongest_level_satisfied(report),
    )
