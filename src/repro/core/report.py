"""Bug descriptors and verification reports.

Every mechanism that detects an inconsistency emits a :class:`Violation`
into the shared :class:`BugDescriptor`.  The descriptor is the paper's "bug
descriptor" output: a structured record of what was violated, by which
transactions, with enough interval evidence for a human to replay the
schedule against the DBMS.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple


class Mechanism(enum.Enum):
    """The four IL implementation mechanisms of Section II-B."""

    CONSISTENT_READ = "CR"
    MUTUAL_EXCLUSION = "ME"
    FIRST_UPDATER_WINS = "FUW"
    SERIALIZATION_CERTIFIER = "SC"


class ViolationKind(enum.Enum):
    """Fine-grained classification used in reports and tests."""

    # CR
    STALE_READ = "stale-read"          # read a version outside the candidate set
    FUTURE_READ = "future-read"        # read a version installed after the snapshot
    DIRTY_READ = "dirty-read"          # read an uncommitted/aborted version
    OWN_WRITE_LOST = "own-write-lost"  # failed to see an earlier write of the same txn
    UNKNOWN_VERSION = "unknown-version"  # read a value no write ever produced
    NON_MONOTONIC_READ = "non-monotonic-read"  # consecutive reads went backwards
    PHANTOM = "phantom"                # a scan missed a definitely-visible row
    # ME
    INCOMPATIBLE_LOCKS = "incompatible-locks"
    # FUW
    LOST_UPDATE = "lost-update"
    # SC
    DEPENDENCY_CYCLE = "dependency-cycle"
    DANGEROUS_STRUCTURE = "dangerous-structure"  # SSI: two consecutive rw edges
    TIMESTAMP_INVERSION = "timestamp-inversion"  # MVTO: dep from newer to older
    CONTRADICTORY_DEPENDENCIES = "contradictory-dependencies"


@dataclass(frozen=True)
class Violation:
    """One detected isolation-level violation."""

    mechanism: Mechanism
    kind: ViolationKind
    txns: Tuple[str, ...]
    key: Optional[Any] = None
    details: str = ""
    evidence: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        where = f" key={self.key!r}" if self.key is not None else ""
        return (
            f"[{self.mechanism.value}/{self.kind.value}] "
            f"txns={','.join(self.txns)}{where}: {self.details}"
        )


class BugDescriptor:
    """Accumulates violations during a verification run.

    Duplicate suppression: the same logical bug is often witnessed by many
    operation pairs (e.g. every later read of a corrupted version).  Each
    violation is deduplicated on ``(mechanism, kind, txns, key)`` so reports
    stay readable, while ``raw_count`` still exposes the witness count.
    """

    def __init__(self) -> None:
        self._violations: List[Violation] = []
        self._seen: Dict[Tuple, int] = {}
        self.raw_count = 0

    def record(self, violation: Violation) -> None:
        self.raw_count += 1
        dedup_key = (
            violation.mechanism,
            violation.kind,
            violation.txns,
            violation.key,
        )
        if dedup_key in self._seen:
            self._seen[dedup_key] += 1
            return
        self._seen[dedup_key] = 1
        self._violations.append(violation)

    @property
    def violations(self) -> List[Violation]:
        return list(self._violations)

    def witness_count(self, violation: Violation) -> int:
        """Raw witnesses recorded for a violation's dedup class."""
        return self._seen.get(
            (violation.mechanism, violation.kind, violation.txns, violation.key),
            0,
        )

    def absorb(self, other: "BugDescriptor") -> None:
        """Merge another descriptor's violations into this one.

        The parallel path collects one descriptor per shard worker and one
        from the global certification pass; absorbing re-runs the dedup so
        a bug witnessed by two shards (e.g. a terminal-trace check that
        broadcasts) still appears once, while ``raw_count`` keeps the true
        total witness count across all descriptors.
        """
        for violation in other._violations:
            witnesses = other.witness_count(violation)
            self.record(violation)
            # record() counted one witness; fold in the remainder.
            extra = witnesses - 1
            if extra > 0:
                self.raw_count += extra
                dedup_key = (
                    violation.mechanism,
                    violation.kind,
                    violation.txns,
                    violation.key,
                )
                self._seen[dedup_key] += extra

    def by_mechanism(self, mechanism: Mechanism) -> List[Violation]:
        return [v for v in self._violations if v.mechanism is mechanism]

    def by_kind(self, kind: ViolationKind) -> List[Violation]:
        return [v for v in self._violations if v.kind is kind]

    def __len__(self) -> int:
        return len(self._violations)

    def __bool__(self) -> bool:
        return bool(self._violations)

    def __iter__(self):
        return iter(self._violations)


@dataclass
class VerificationStats:
    """Counters exported with each report (feed the Fig. 11/13 benches)."""

    traces_processed: int = 0
    txns_committed: int = 0
    txns_aborted: int = 0
    reads_checked: int = 0
    writes_checked: int = 0
    deps_wr: int = 0
    deps_ww: int = 0
    deps_rw: int = 0
    deps_so: int = 0
    #: conflicting operation pairs examined by the mechanisms
    conflict_pairs: int = 0
    #: conflicting operation pairs whose intervals overlapped
    overlapped_pairs: int = 0
    #: overlapped pairs whose order a mechanism still managed to deduce
    deduced_overlapped_pairs: int = 0
    gc_versions_pruned: int = 0
    gc_locks_pruned: int = 0
    gc_txns_pruned: int = 0
    #: wall-clock seconds spent per mechanism ("CR", "ME", "FUW", "SC"),
    #: for the time-breakdown experiment.
    mechanism_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def deps_total(self) -> int:
        return self.deps_wr + self.deps_ww + self.deps_rw

    @property
    def uncertain_overlapped_pairs(self) -> int:
        return self.overlapped_pairs - self.deduced_overlapped_pairs

    @property
    def beta(self) -> float:
        """Fig. 4's overlap ratio: overlapped conflicting pairs over all
        conflicting pairs examined."""
        if self.conflict_pairs == 0:
            return 0.0
        return self.overlapped_pairs / self.conflict_pairs


@dataclass
class VerificationReport:
    """Final output of a verification run."""

    descriptor: BugDescriptor
    stats: VerificationStats
    isolation_level: str = ""

    @property
    def ok(self) -> bool:
        """Whether the history is consistent with the claimed IL."""
        return not self.descriptor

    @property
    def violations(self) -> List[Violation]:
        return self.descriptor.violations

    def summary(self) -> str:
        lines = [
            f"isolation level : {self.isolation_level or '(unspecified)'}",
            f"traces          : {self.stats.traces_processed}",
            f"committed txns  : {self.stats.txns_committed}",
            f"aborted txns    : {self.stats.txns_aborted}",
            f"dependencies    : wr={self.stats.deps_wr} "
            f"ww={self.stats.deps_ww} rw={self.stats.deps_rw}",
            f"violations      : {len(self.descriptor)} "
            f"({self.descriptor.raw_count} witnesses)",
        ]
        for violation in self.descriptor:
            lines.append(f"  - {violation}")
        return "\n".join(lines)


def report_fingerprint(report: VerificationReport) -> str:
    """Canonical digest of a verification outcome.

    Two runs over the same logical trace stream must fingerprint
    identically no matter how the traces were delivered -- offline files,
    the online service, any arrival interleaving -- which is the
    equivalence the service's drain contract and the offline-vs-online
    tests pin down.  Timing (``mechanism_seconds``) is excluded: it
    measures the run, not the history.  Violations are compared by their
    rendered form and sorted, so backend-dependent discovery order does
    not leak into the digest.
    """
    stats = dataclasses.asdict(report.stats)
    stats.pop("mechanism_seconds", None)
    doc = {
        "isolation_level": report.isolation_level,
        "ok": report.ok,
        "violations": sorted(str(v) for v in report.violations),
        "witnesses": report.descriptor.raw_count,
        "stats": stats,
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
