"""Parallel verification: per-shard CR/ME/FUW, one global certifier.

Leopard's CR, ME and FUW checks are per-record (Section V): every candidate
set, lock pair and write-conflict pair involves a single key, so hash-
partitioning the key space (:mod:`repro.core.sharding`) makes them
embarrassingly parallel.  Only the serialization certifier is global --
dependency cycles cross keys -- so the parallel path splits the work:

* each **shard worker** runs a full :class:`~repro.core.verifier.Verifier`
  over its key partition, with the certifier swapped (through the
  mechanism registry's override seam) for a :class:`GraphOnlyCertifier`
  that maintains the local dependency graph -- the ww-order oracle CR and
  the Fig. 9 derivation need -- but reports nothing;
* every dependency a worker's bus accepts, and every violation its
  mechanisms record, is **journaled** with the global index of the trace
  being processed and a per-shard sequence number;
* at :meth:`ParallelVerifier.finish` the journals are merge-sorted by
  ``(trace index, shard, sequence)`` and replayed into a single global
  :class:`~repro.core.certifier.SerializationCertifier`, which certifies
  the complete cross-shard graph.

By default the merge is **streamed** rather than deferred: workers flush
journal *segments* back over their pipes during the run, each tagged with
the coordinator watermark of the last message frame they fully applied
(and the GC horizon the coordinator computed when it flushed that frame).
Trace indices reach a shard in increasing order, so once a shard has
applied the frame tagged ``W`` it can never again journal an event with
index ``<= W``; the coordinator therefore replays the merged stream up to
``min`` over the shards' acked watermarks, incrementally, while workers
are still computing.  Chunk ``n`` contains exactly the pending events
with index ``<= W_n`` and later chunks only indices ``> W_n``, so the
concatenation of chunks equals the deferred global sort -- the replayed
certifier sees the identical event sequence and the reports match
byte for byte (``stream_merge=False`` / ``REPRO_PARALLEL_STREAM=0``
restores the defer-everything tail).  A
:class:`~repro.core.gc.GarbageCollector` runs against the replay state,
keeping coordinator memory flat instead of O(total journal) (Section
V-D's asynchronous pruning, applied to the merged graph); its collections
fire at fixed replayed-event-count thresholds with the ``S_e`` horizon
the coordinator recorded when it dispatched the trace index the replay
reached, so the prune schedule -- and with it the report -- is a pure
function of the trace stream, independent of segment arrival timing.

With one shard the journal replay reproduces the serial verifier's event
order exactly, so the merged report is identical to the serial report --
the property the equivalence tests pin down.  With several shards the
per-key checks and the certifier remain exact; the only relaxation is that
a worker's ww-order *oracle* sees only the ww edges its own shard deduced,
so a cross-key deduced order cannot shrink another shard's CR candidate
sets (a precision loss that can only suppress deductions, never invent
violations).

Transaction lifecycle events are broadcast: terminals go to every shard,
and the first trace of each transaction triggers a "begin" control message
carrying the true first-operation interval, so every shard agrees on each
transaction's snapshot-generation interval (Definition 2) regardless of
which shard owned the keys of its first operation.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import pickle
import queue
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from operator import itemgetter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .bus import DependencyBus
from .certifier import SerializationCertifier
from .codec import PayloadDecoder, PayloadEncoder
from .dependencies import Dependency, DepType
from .gc import GarbageCollector
from .intervals import Interval
from .mechanism import MechanismContext, MechanismVerifier
from .metrics import NULL_REGISTRY, MetricsRegistry
from .report import (
    BugDescriptor,
    Mechanism,
    VerificationReport,
    VerificationStats,
    Violation,
)
from .sharding import ShardRouter
from .spec import IsolationSpec, PG_SERIALIZABLE
from .state import TxnStatus, VerifierState
from .trace import Key, OpKind, Trace
from .verifier import Verifier

#: journaled event kinds: a dependency accepted by the shard's bus, or a
#: violation recorded by one of the shard's mechanisms.
_DEP = "d"
_VIOLATION = "v"

#: coordinator -> worker message tags (named so dispatch sites do not
#: compare anonymous string literals).
MSG_BEGIN = "b"
MSG_TRACE = "t"

# -- wire frames ------------------------------------------------------------------
#
# The worker pipes speak encoded batch frames built from the binary trace
# codec's primitives (:mod:`repro.core.codec`) instead of pickled lists of
# per-message tuples: one frame per flushed batch, transaction and key ids
# interned once per frame, traces struct-packed.  ``send_bytes``/
# ``recv_bytes`` skip the pickler entirely; an empty byte string ends the
# stream.  Shard results travel back the same way -- dependencies are the
# bulk of a journal and get a packed record; violations are rare and
# structurally open (arbitrary evidence mappings), so they ride as pickled
# blobs inside the frame.

_T_BEGIN = 0
_T_TRACE = 1

_DEPTYPE_TO_CODE = {
    DepType.WW: 0,
    DepType.WR: 1,
    DepType.RW: 2,
    DepType.SO: 3,
}
_CODE_TO_DEPTYPE = {code: dep for dep, code in _DEPTYPE_TO_CODE.items()}
_MECH_TO_CODE = {
    Mechanism.CONSISTENT_READ: 0,
    Mechanism.MUTUAL_EXCLUSION: 1,
    Mechanism.FIRST_UPDATER_WINS: 2,
    Mechanism.SERIALIZATION_CERTIFIER: 3,
}
_CODE_TO_MECH = {code: mech for mech, code in _MECH_TO_CODE.items()}
#: dependency ``source``/``key`` sentinel codes.
_NO_SOURCE = 0xFF
_KEY_VALUE = 0
_KEY_PICKLE = 1


def _is_wire_value(value) -> bool:
    """Whether the codec's tagged value grammar covers ``value`` (record
    keys from traces always qualify; exotic keys fall back to pickle)."""
    if value is None or type(value) in (str, int, float, bool):
        return True
    if isinstance(value, tuple):
        return all(_is_wire_value(part) for part in value)
    return isinstance(value, (str, int, float, bool))


#: sort key of the merged journal replay order.
_EVENT_KEY = itemgetter(0, 1, 2)


def encode_message_frame(
    messages: Sequence[Tuple],
    watermark: int = -1,
    horizon: float = float("-inf"),
) -> bytes:
    """Encode one coordinator->worker batch of begin/trace messages.

    The header carries the coordinator's trace-index ``watermark`` (every
    message with a smaller-or-equal index routed to this shard is in this
    frame or an earlier one) and the GC ``horizon`` (``S_e`` of
    Definition 4 at the moment the frame was flushed); the worker echoes
    both on the journal segments it flushes after applying the frame.
    """
    encoder = PayloadEncoder()
    encoder.zigzag(watermark)
    encoder.double(horizon)
    encoder.varint(len(messages))
    for message in messages:
        if message[0] == MSG_BEGIN:
            encoder.u8(_T_BEGIN)
            encoder.string(message[1])
            encoder.zigzag(message[2])
            interval = message[3]
            encoder.double_pair(interval.ts_bef, interval.ts_aft)
        else:
            encoder.u8(_T_TRACE)
            encoder.varint(message[1])
            encoder.trace(message[2])
    return encoder.finish()


def apply_message_frame(
    shard: "ShardVerifier", payload: bytes
) -> Tuple[int, float]:
    """Decode one batch frame and feed it to a shard verifier.

    Decoding happens once, here in the worker; runs of consecutive trace
    messages are handed to :meth:`ShardVerifier.ingest_batch` so the
    per-trace bookkeeping is amortized across the run.  Returns the
    frame's ``(watermark, horizon)`` header.
    """
    decoder = PayloadDecoder(payload)
    watermark = decoder.zigzag()
    horizon = decoder.double()
    count = decoder.varint()
    pending: List[Tuple[int, Trace]] = []
    for _ in range(count):
        tag = decoder.u8()
        if tag == _T_TRACE:
            index = decoder.varint()
            pending.append((index, decoder.trace()))
            continue
        if pending:
            shard.ingest_batch(pending)
            pending = []
        txn_id = decoder.string()
        client_id = decoder.zigzag()
        ts_bef, ts_aft = decoder.double_pair()
        shard.begin(txn_id, client_id, Interval(ts_bef, ts_aft))
    if pending:
        shard.ingest_batch(pending)
    return watermark, horizon


def _encode_events(encoder: PayloadEncoder, events: Sequence[Tuple]) -> None:
    encoder.varint(len(events))
    for index, seq, kind, payload in events:
        if kind == _DEP:
            encoder.u8(0)
            encoder.zigzag(index)
            encoder.varint(seq)
            encoder.string(payload.src)
            encoder.string(payload.dst)
            encoder.u8(_DEPTYPE_TO_CODE[payload.dep_type])
            source = payload.source
            encoder.u8(_NO_SOURCE if source is None else _MECH_TO_CODE[source])
            key = payload.key
            if _is_wire_value(key):
                encoder.u8(_KEY_VALUE)
                encoder.value(key)
            else:
                encoder.u8(_KEY_PICKLE)
                encoder.raw(pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL))
        else:
            encoder.u8(1)
            encoder.zigzag(index)
            encoder.varint(seq)
            encoder.raw(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def _decode_events(decoder: PayloadDecoder) -> List[Tuple[int, int, str, object]]:
    events: List[Tuple[int, int, str, object]] = []
    append = events.append
    for _ in range(decoder.varint()):
        tag = decoder.u8()
        index = decoder.zigzag()
        seq = decoder.varint()
        if tag == 0:
            src = decoder.string()
            dst = decoder.string()
            dep_type = _CODE_TO_DEPTYPE[decoder.u8()]
            source_code = decoder.u8()
            source = None if source_code == _NO_SOURCE else _CODE_TO_MECH[source_code]
            if decoder.u8() == _KEY_VALUE:
                key = decoder.value()
            else:
                key = pickle.loads(decoder.raw())
            append(
                (index, seq, _DEP,
                 Dependency(src=src, dst=dst, dep_type=dep_type, key=key,
                            source=source))
            )
        else:
            append((index, seq, _VIOLATION, pickle.loads(decoder.raw())))
    return events


def encode_shard_result(result: "ShardResult") -> bytes:
    """Encode a worker's final journal + stats as one result frame."""
    encoder = PayloadEncoder()
    encoder.u8(0)  # ok
    encoder.varint(result.shard_id)
    encoder.double(result.wall_seconds)
    encoder.varint(result.journal_total)
    encoder.raw(pickle.dumps(result.stats, protocol=pickle.HIGHEST_PROTOCOL))
    encoder.raw(pickle.dumps(result.metrics, protocol=pickle.HIGHEST_PROTOCOL))
    _encode_events(encoder, result.events)
    return encoder.finish()


def encode_segment_frame(
    shard_id: int,
    watermark: int,
    horizon: float,
    events: Sequence[Tuple[int, int, str, object]],
    memo_hits: int = 0,
    memo_misses: int = 0,
) -> bytes:
    """Encode a mid-run journal segment (streaming merge).

    ``watermark``/``horizon`` echo the header of the last message frame
    the worker fully applied: after this segment the worker will never
    journal another event with trace index ``<= watermark``, and
    ``horizon`` was Definition 4's ``S_e`` at the coordinator when that
    frame was flushed (so pruning the merged graph at it is no more
    aggressive than a serial collector at the same stream position).

    ``memo_hits``/``memo_misses`` piggyback the shard's *cumulative*
    classification-memo counters: worker registries only cross the pipe
    inside the final :class:`ShardResult`, so without the echo a status
    poll mid-run reports ``chain_memo`` as zero at ``shards >= 2``.
    """
    encoder = PayloadEncoder()
    encoder.u8(2)  # segment
    encoder.varint(shard_id)
    encoder.zigzag(watermark)
    encoder.double(horizon)
    encoder.varint(memo_hits)
    encoder.varint(memo_misses)
    _encode_events(encoder, events)
    return encoder.finish()


def _memo_counts(registry) -> Tuple[int, int]:
    """Cumulative ``chain.memo`` hit/miss totals from a live registry."""
    if registry is None or not registry.enabled:
        return 0, 0
    hits = sum(registry.counters_with_name("chain.memo.hits").values())
    misses = sum(registry.counters_with_name("chain.memo.misses").values())
    return hits, misses


def _memo_counts_from_snapshot(snapshot) -> Tuple[int, int]:
    """The same totals out of a shipped registry snapshot dict."""
    counters = snapshot.get("counters", {}) if isinstance(snapshot, dict) else {}
    hits = 0
    misses = 0
    for key, value in counters.items():
        name = key.split("{", 1)[0]
        if name == "chain.memo.hits":
            hits += value
        elif name == "chain.memo.misses":
            misses += value
    return hits, misses


def encode_shard_error(trace_back: str) -> bytes:
    encoder = PayloadEncoder()
    encoder.u8(1)  # error
    encoder.raw(trace_back.encode("utf-8"))
    return encoder.finish()


def decode_shard_reply(payload: bytes):
    """Decode a worker reply: ``("ok", ShardResult)``, ``("segment",
    StreamSegment)`` or ``("error", tb)``."""
    decoder = PayloadDecoder(payload)
    status = decoder.u8()
    if status == 1:
        return "error", decoder.raw().decode("utf-8")
    if status == 2:
        shard_id = decoder.varint()
        watermark = decoder.zigzag()
        horizon = decoder.double()
        memo_hits = decoder.varint()
        memo_misses = decoder.varint()
        return "segment", StreamSegment(
            shard_id=shard_id,
            watermark=watermark,
            horizon=horizon,
            events=_decode_events(decoder),
            memo_hits=memo_hits,
            memo_misses=memo_misses,
        )
    shard_id = decoder.varint()
    wall_seconds = decoder.double()
    journal_total = decoder.varint()
    stats = pickle.loads(decoder.raw())
    metrics = pickle.loads(decoder.raw())
    return "ok", ShardResult(
        shard_id=shard_id,
        events=_decode_events(decoder),
        stats=stats,
        metrics=metrics,
        wall_seconds=wall_seconds,
        journal_total=journal_total,
    )


class GraphOnlyCertifier(MechanismVerifier):
    """Shard-local stand-in for the serialization certifier.

    Maintains the dependency graph (the ww-order oracle and the garbage
    guard depend on it) but never reports: cycles and dangerous structures
    can span shards, so certification belongs to the merged global pass.
    """

    name = "SC"
    subscribes = True
    subscribe_priority = 0

    def __init__(self, state: VerifierState):
        self._state = state

    @classmethod
    def build(cls, ctx: MechanismContext) -> "GraphOnlyCertifier":
        return cls(ctx.state)

    def on_dependency(self, dep) -> None:
        self._state.graph.add_dependency(dep)


class _JournalingDescriptor(BugDescriptor):
    """Bug descriptor that journals every ``record`` call (witnesses
    included, before deduplication) so the merged descriptor can replay
    them and end up with the exact witness counts of a serial run."""

    def __init__(self, journal) -> None:
        super().__init__()
        self._journal = journal

    def record(self, violation: Violation) -> None:
        self._journal(_VIOLATION, violation)
        super().record(violation)


@dataclass
class ShardResult:
    """Everything a shard worker ships back to the coordinator."""

    shard_id: int
    #: journaled events ``(trace_index, seq, kind, payload)`` in the exact
    #: order the shard produced them.  Under the streaming merge this is
    #: only the residue not already flushed as segments.
    events: List[Tuple[int, int, str, object]]
    stats: VerificationStats
    #: worker-side :meth:`MetricsRegistry.snapshot` (empty dicts when the
    #: run was not instrumented) and the shard's trace-processing wall
    #: time, for the ``parallel.shard.*`` coordinator metrics.
    metrics: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: total events the shard journaled over its lifetime (flushed
    #: segments included); ``len(events)`` when nothing streamed.
    journal_total: int = 0


@dataclass
class StreamSegment:
    """A mid-run journal flush from one shard (streaming merge)."""

    shard_id: int
    #: trace-index watermark: the shard will never journal another event
    #: with index ``<= watermark`` after this segment.
    watermark: int
    #: GC horizon (``S_e``) the coordinator computed when it flushed the
    #: message frame this watermark acknowledges.  The wired merger
    #: prices collections off the coordinator's dispatch-time horizon
    #: log instead (deterministic under any arrival schedule); the echo
    #: is the fallback for a standalone merger with no log.
    horizon: float
    events: List[Tuple[int, int, str, object]]
    #: cumulative classification-memo counters at flush time (the shard's
    #: registry stays worker-side until the final result, so segments
    #: carry the running totals for mid-run status visibility).
    memo_hits: int = 0
    memo_misses: int = 0


class ShardVerifier(Verifier):
    """A serial verifier over one key partition, journaling its output.

    The certifier is swapped for :class:`GraphOnlyCertifier`; a bus tap
    journals each accepted dependency and a descriptor subclass journals
    each recorded violation, both tagged with the global index of the
    trace currently being ingested and a shared per-shard sequence number
    (so the merged replay preserves their relative order).
    """

    def __init__(self, shard_id: int = 0, **kwargs):
        overrides = dict(kwargs.pop("mechanism_overrides", None) or {})
        overrides.setdefault("SC", GraphOnlyCertifier.build)
        # Registries do not cross the process pipe, so the coordinator
        # ships a bool and each worker builds (and later snapshots) its own.
        if kwargs.pop("metrics_enabled", False) and "metrics" not in kwargs:
            kwargs["metrics"] = MetricsRegistry()
        super().__init__(mechanism_overrides=overrides, **kwargs)
        self.shard_id = shard_id
        self.events: List[Tuple[int, int, str, object]] = []
        self._seq = 0
        self._trace_index = -1
        self._wall_seconds = 0.0
        self.bus.tap(lambda dep: self._journal(_DEP, dep))
        self.state.descriptor = _JournalingDescriptor(self._journal)

    def _journal(self, kind: str, payload) -> None:
        self.events.append((self._trace_index, self._seq, kind, payload))
        self._seq += 1

    def begin(self, txn_id: str, client_id: int, interval: Interval) -> None:
        """Broadcast control: the transaction's true first-operation
        interval, delivered before any of its traces route here."""
        self.state.ensure_txn(txn_id, client_id, interval)

    def ingest(self, trace_index: int, trace: Trace) -> None:
        self._trace_index = trace_index
        if self.metrics.enabled:
            start = time.perf_counter()
            self.process(trace)
            self._wall_seconds += time.perf_counter() - start
        else:
            self.process(trace)

    def ingest_batch(self, pairs: Sequence[Tuple[int, Trace]]) -> None:
        """Ingest a decoded run of ``(trace_index, trace)`` pairs.

        The journal tags events with the index of the trace being
        processed, so the index advances between traces; everything else
        (the process call, the timing) is amortized across the run.
        """
        process = self.process
        if self.metrics.enabled:
            start = time.perf_counter()
            for self._trace_index, trace in pairs:
                process(trace)
            self._wall_seconds += time.perf_counter() - start
        else:
            for self._trace_index, trace in pairs:
                process(trace)

    def finish_shard(self) -> ShardResult:
        if self.metrics.enabled:
            start = time.perf_counter()
            self.finish()
            self._wall_seconds += time.perf_counter() - start
            snapshot = self.metrics.snapshot()
        else:
            self.finish()
            snapshot = {}
        return ShardResult(
            shard_id=self.shard_id,
            events=self.events,
            stats=self.state.stats,
            metrics=snapshot,
            wall_seconds=self._wall_seconds,
            journal_total=self._seq,
        )


# -- process backend -------------------------------------------------------------


def _shard_worker_main(conn, shard_id: int, spec, initial_part, options) -> None:
    """Worker process entry point: drain batch frames, ship the result.

    Messages arrive as encoded byte frames (:func:`encode_message_frame`);
    each frame interleaves begin controls and routed traces in stream
    order and is decoded exactly once, here.  An empty frame ends the
    stream; the reply is an encoded result frame.

    With a ``stream_segment_events`` budget, the journal is flushed back
    as a segment frame whenever it grows past the budget, echoing the
    watermark/horizon of the frame just applied; the final result frame
    then carries only the residue.  A budget of 0 restores the deferred
    behaviour (whole journal in the result frame).
    """
    options = dict(options)
    segment_events = options.pop("stream_segment_events", 0)
    try:
        shard = ShardVerifier(
            shard_id=shard_id, spec=spec, initial_db=initial_part, **options
        )
        while True:
            frame = conn.recv_bytes()
            if not frame:
                break
            watermark, horizon = apply_message_frame(shard, frame)
            if segment_events and len(shard.events) >= segment_events:
                hits, misses = _memo_counts(shard.metrics)
                conn.send_bytes(
                    encode_segment_frame(
                        shard_id,
                        watermark,
                        horizon,
                        shard.events,
                        memo_hits=hits,
                        memo_misses=misses,
                    )
                )
                shard.events.clear()
        conn.send_bytes(encode_shard_result(shard.finish_shard()))
    except BaseException:  # noqa: BLE001 - forwarded to the coordinator
        conn.send_bytes(encode_shard_error(traceback.format_exc()))
    finally:
        conn.close()


def _make_context():
    """Fork when available (cheap, inherits imports); spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


@dataclass
class _TxnRecord:
    """Coordinator-side transaction lifecycle registry entry."""

    client_id: int
    first_interval: Interval
    status: TxnStatus = TxnStatus.ACTIVE
    terminal_interval: Optional[Interval] = None


class _StreamMerger:
    """Incremental k-way merge + replay of shard journal segments.

    Buffers each shard's pending events (already ``(index, seq)``-sorted:
    that is journal order), and on :meth:`advance` replays the merged
    prefix with trace index ``<= min`` over the shards' acked watermarks
    into a global :class:`~repro.core.certifier.SerializationCertifier`.
    Each chunk is sorted by ``(index, shard, seq)``; chunk *n* holds all
    pending events with index ``<= W_n`` and later chunks only indices
    ``> W_n``, so the concatenation of chunks is exactly the deferred
    merge's global sort -- replay order, and therefore the report, is
    identical.

    Transaction metadata is installed lazily from the coordinator's
    lifecycle registry the first time an event or commit boundary touches
    a transaction; journaled dependency endpoints were terminal when
    deduced, so their registry records are final by replay time.  A
    :class:`~repro.core.gc.GarbageCollector` prunes the replay state,
    keeping the coordinator's graph flat; a pruned transaction touched
    again is simply re-ensured, reproducing the deferred path's
    everything-installed guard behaviour.

    Collections are a pure function of the trace stream, never of segment
    arrival timing: they fire at exact replayed-event-count thresholds
    (``advance`` and ``finalize`` both slice their chunks at the
    boundaries, so how the journal happened to split between mid-run
    segments and the result-frame residue cannot move a fire), and each
    fire prunes at the horizon the coordinator recorded when it
    *dispatched* the trace index the replay just reached (``horizon_log``)
    -- exactly the serial collector's ``S_e`` at that stream position.
    Machine load can therefore delay replay, but never change which
    transactions get pruned, so the streamed report stays byte-identical
    to the deferred one on every schedule.
    """

    def __init__(
        self,
        spec: IsolationSpec,
        shards: int,
        txns: Dict[str, _TxnRecord],
        commits: List[Tuple[int, str, Interval]],
        gc_every: int,
        metrics: MetricsRegistry,
        horizon_log: Optional["deque"] = None,
    ):
        self._txns = txns
        self._commits = commits
        self._commit_pos = 0
        state = VerifierState()
        self.state = state
        self.descriptor = state.descriptor
        # Same wiring as the deferred merge: an uncounted bus (the shard
        # journals already counted these dependencies) feeding the one
        # place certification happens.
        self._bus = DependencyBus(state, count_stats=False)
        self._certifier = SerializationCertifier(state, spec, metrics=metrics)
        self._bus.subscribe(
            self._certifier.name, self._certifier.on_dependency, priority=0
        )
        self._gc = GarbageCollector(
            state,
            every=max(1, gc_every),
            on_txn_pruned=self._certifier.on_gc,
            metrics=metrics,
            metric_prefix="parallel.stream.gc",
        )
        self._gc_every = max(1, gc_every)
        self._since_gc = 0
        #: per-dispatched-trace ``(index, S_e)`` records from the
        #: coordinator; consulted (and consumed) to price collections at
        #: the horizon current when the replayed index was dispatched.
        self._horizon_log = horizon_log
        self._log_horizon = float("-inf")
        self._pending: List[List[Tuple[int, int, str, object]]] = [
            [] for _ in range(shards)
        ]
        self._watermarks = [-1] * shards
        self._horizons = [float("-inf")] * shards
        self._replayed_watermark = -1
        self.replayed = 0
        self._m_replayed = metrics.counter("parallel.stream.replayed")
        self._m_lag = metrics.gauge("parallel.stream.lag")
        self._m_lag_peak = metrics.gauge("parallel.stream.lag.peak")

    def pending_events(self) -> int:
        return sum(len(pending) for pending in self._pending)

    def _note_lag(self) -> None:
        lag = self.pending_events()
        self._m_lag.set(lag)
        self._m_lag_peak.high_watermark(lag)

    def offer(
        self,
        shard: int,
        watermark: int,
        horizon: float,
        events: Sequence[Tuple[int, int, str, object]],
    ) -> None:
        """Buffer one segment and advance the shard's watermark/horizon
        (both monotone -- a late small ack never regresses them)."""
        self._pending[shard].extend(events)
        if watermark > self._watermarks[shard]:
            self._watermarks[shard] = watermark
        if horizon > self._horizons[shard]:
            self._horizons[shard] = horizon
        self._note_lag()

    def add_residual(
        self, shard: int, events: Sequence[Tuple[int, int, str, object]]
    ) -> None:
        """Buffer a result frame's residue without touching watermarks
        (finalize replays everything regardless)."""
        self._pending[shard].extend(events)

    def advance(self) -> int:
        """Replay everything certain: events with index ``<=`` the merged
        watermark.  Returns the number of events replayed."""
        low = min(self._watermarks)
        if low <= self._replayed_watermark:
            return 0
        self._replayed_watermark = low
        due: List[Tuple[int, int, int, str, object]] = []
        for shard, pending in enumerate(self._pending):
            cut = 0
            for event in pending:
                if event[0] > low:
                    break
                cut += 1
            if cut:
                due.extend(
                    (event[0], shard, event[1], event[2], event[3])
                    for event in pending[:cut]
                )
                del pending[:cut]
        if not due:
            return 0
        due.sort(key=_EVENT_KEY)
        self._replay_with_gc(due)
        self.replayed += len(due)
        self._m_replayed.inc(len(due))
        self._note_lag()
        self._trim_horizon_log(low)
        return len(due)

    def _gc_horizon(self, index: int) -> float:
        """Horizon for a collection fired right after replaying ``index``:
        the coordinator's dispatch-time ``S_e`` record for that trace
        index (a pure function of the trace stream).  Without a wired log
        (standalone merger, unit tests) falls back to the merged
        flush-time shard horizons."""
        log = self._horizon_log
        if log is None:
            return min(self._horizons)
        while log and log[0][0] <= index:
            self._log_horizon = log.popleft()[1]
        return self._log_horizon

    def _trim_horizon_log(self, index: int) -> None:
        """Drop consumed log entries so the log tracks only the
        dispatch-to-replay window."""
        log = self._horizon_log
        if log is None:
            return
        while log and log[0][0] <= index:
            self._log_horizon = log.popleft()[1]

    def _replay_with_gc(self, due: List[Tuple[int, int, int, str, object]]) -> None:
        """Replay a merged chunk, firing collections at exact
        replayed-event-count thresholds.

        Slicing at the thresholds (instead of one collection per chunk)
        makes the fire positions -- and with the dispatch-time horizon
        records, the entire prune schedule -- independent of how segment
        arrival timing happened to batch the chunks."""
        start = 0
        n = len(due)
        while start < n:
            take = min(n - start, self._gc_every - self._since_gc)
            end = start + take
            # Never fire mid-trace: the serial collector only runs between
            # traces, after every dependency of the current trace has been
            # delivered -- a cycle-closing edge journaled later in the same
            # trace index must land before its endpoints can be pruned.  So
            # extend the chunk to the end of the threshold event's index
            # group.  Index groups are always complete inside ``due``
            # (``advance`` cuts at the merged watermark, ``finalize`` drains
            # everything), so the extension -- and with it every fire
            # position -- remains a pure function of the trace stream,
            # independent of segment arrival timing.
            if end < n:
                boundary = due[end - 1][0]
                while end < n and due[end][0] == boundary:
                    end += 1
            chunk = due[start:end]
            self._replay(chunk)
            self._since_gc += len(chunk)
            start = end
            if self._since_gc >= self._gc_every:
                self._since_gc = 0
                self._gc.collect(horizon_ts=self._gc_horizon(chunk[-1][0]))

    def finalize(self) -> BugDescriptor:
        """Replay the remaining buffered suffix (the residue past the last
        merged watermark, globally sorted -- the same order the deferred
        merge would have produced) and install trailing commit nodes.

        The residue goes through the same threshold-sliced replay as
        :meth:`advance`: a run where little streamed mid-run (slow segment
        arrival) fires its remaining collections here, at the same stream
        positions a fully-streamed run fired them during intake."""
        due: List[Tuple[int, int, int, str, object]] = []
        for shard, pending in enumerate(self._pending):
            due.extend(
                (event[0], shard, event[1], event[2], event[3])
                for event in pending
            )
            pending.clear()
        due.sort(key=_EVENT_KEY)
        self._replay_with_gc(due)
        state = self.state
        commits = self._commits
        while self._commit_pos < len(commits):
            _, txn_id, interval = commits[self._commit_pos]
            self._ensure_txn(txn_id)
            state.graph.add_txn(txn_id, interval)
            self._commit_pos += 1
        self._m_lag.set(0)
        return self.descriptor

    def _ensure_txn(self, txn_id: str) -> None:
        state = self.state
        if txn_id in state.txns:
            return
        record = self._txns.get(txn_id)
        if record is None:
            return
        txn = state.ensure_txn(txn_id, record.client_id, record.first_interval)
        txn.status = record.status
        txn.terminal_interval = record.terminal_interval
        if (
            record.terminal_interval is not None
            and record.status is not TxnStatus.ACTIVE
        ):
            state.note_terminal(txn_id, record.terminal_interval.ts_aft)

    def _replay(self, events: List[Tuple[int, int, int, str, object]]) -> None:
        """One chunk of the deferred merge's replay loop: commit-boundary
        node insertion, dependency batching, violation recording -- with
        transaction metadata ensured on first touch."""
        state = self.state
        bus = self._bus
        descriptor = self.descriptor
        ensure = self._ensure_txn
        commits = self._commits
        pos = self._commit_pos
        n_commits = len(commits)
        batch: List = []
        for index, _shard, _seq, kind, payload in events:
            if pos < n_commits and commits[pos][0] <= index:
                if batch:
                    bus.publish_many(batch)
                    batch.clear()
                while pos < n_commits and commits[pos][0] <= index:
                    _, txn_id, interval = commits[pos]
                    ensure(txn_id)
                    state.graph.add_txn(txn_id, interval)
                    pos += 1
            if kind == _VIOLATION:
                if batch:
                    bus.publish_many(batch)
                    batch.clear()
                descriptor.record(payload)
            else:
                ensure(payload.src)
                ensure(payload.dst)
                batch.append(payload)
        if batch:
            bus.publish_many(batch)
        self._commit_pos = pos


class ParallelVerifier:
    """Coordinator for sharded parallel verification.

    Public surface mirrors :class:`~repro.core.verifier.Verifier`
    (``process`` / ``process_all`` / ``finish``), so it drops into the
    pipeline, the online wrapper and the CLI unchanged.

    Parameters
    ----------
    shards:
        Number of key partitions (1 reproduces the serial report exactly).
    backend:
        ``"process"`` runs one worker process per shard over pipes;
        ``"inline"`` runs the shard verifiers in-process (deterministic
        fallback -- same journals, same merge, byte-identical report).
    batch_size:
        Messages buffered per shard before a pipe send (process backend).
    stream_merge:
        Stream the certifier merge: workers flush watermark-tagged
        journal segments during the run and the coordinator incrementally
        merges, replays and garbage-collects them, overlapping global
        certification with worker compute and surfacing violations
        mid-run.  ``False`` restores the defer-everything merge tail
        (byte-identical report).  Default: the ``REPRO_PARALLEL_STREAM``
        environment variable (on unless set to ``0``).
    segment_events:
        Journal-size budget (events) at which a worker flushes a segment;
        also bounds the coordinator's buffered journal to
        O(shards x segment_events) between merge advances.
    metrics:
        Coordinator-side :class:`~repro.core.metrics.MetricsRegistry`.
        When enabled, each shard builds its own registry (registries do
        not cross the worker pipe), ships its snapshot back inside
        :class:`ShardResult`, and the coordinator folds the snapshots in
        via :meth:`~repro.core.metrics.MetricsRegistry.merge_snapshot`,
        adding ``parallel.shard.seconds{shard=i}`` /
        ``parallel.shard.journal.events{shard=i}`` gauges and the
        ``parallel.merge.seconds`` histogram.  Default: disabled.
    """

    def __init__(
        self,
        spec: IsolationSpec = PG_SERIALIZABLE,
        initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
        shards: int = 4,
        backend: str = "process",
        batch_size: int = 256,
        gc_every: int = 512,
        session_order: bool = True,
        stream_merge: Optional[bool] = None,
        segment_events: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        **verifier_kwargs,
    ):
        if backend not in ("process", "inline"):
            raise ValueError(f"unknown parallel backend {backend!r}")
        if stream_merge is None:
            env = os.environ.get("REPRO_PARALLEL_STREAM", "1").strip().lower()
            stream_merge = env not in ("0", "false", "no", "off", "")
        self.stream_merge = bool(stream_merge)
        self._segment_events = max(1, segment_events)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.spec = spec
        self.router = ShardRouter(shards)
        self._backend = backend
        self._batch_size = max(1, batch_size)
        self._initial_parts = self.router.partition_initial_db(initial_db)
        self._options = dict(verifier_kwargs)
        self._options["gc_every"] = gc_every
        self._session_order = session_order
        self._txns: Dict[str, _TxnRecord] = {}
        #: committed transactions in stream order: (trace_index, txn, interval)
        self._commits: List[Tuple[int, str, Interval]] = []
        self._trace_index = 0
        self._txns_committed = 0
        self._txns_aborted = 0
        self._finished = False
        self._report: Optional[VerificationReport] = None
        self._workers: List = []
        self._conns: List = []
        self._buffers: List[List] = [[] for _ in range(shards)]
        self._inline: List[ShardVerifier] = []
        #: dispatch-order before-timestamp watermark and the active
        #: transactions' first-op pins -- together they reproduce the
        #: serial :meth:`VerifierState.earliest_unverified_snapshot` at
        #: every frame flush, which is the horizon streamed GC prunes at.
        self._ts_watermark = float("-inf")
        self._active_heap: List[Tuple[float, str]] = []
        #: per-trace ``(index, S_e)`` dispatch records; the merger prices
        #: replay-state collections off these (and consumes them), so the
        #: prune schedule is a pure function of the trace stream rather
        #: than of segment arrival timing.
        self._horizon_log: "deque" = deque()
        self._merger: Optional[_StreamMerger] = None
        self._rx_queue: Optional[queue.SimpleQueue] = None
        self._drainer: Optional[threading.Thread] = None
        self._stream_results: Dict[int, ShardResult] = {}
        self._stream_errors: List[str] = []
        #: latest cumulative ``chain.memo`` (hits, misses) per shard --
        #: refreshed from segment echoes mid-run and from the final
        #: :class:`ShardResult` snapshots, so :meth:`chain_memo_counts`
        #: stays live while the worker registries are out of reach.
        self._shard_memo: Dict[int, Tuple[int, int]] = {}
        self._m_segments = self.metrics.counter("parallel.stream.segments")
        self._m_stream_bytes = self.metrics.counter("parallel.stream.bytes")
        self._m_overlap = self.metrics.histogram("parallel.merge.overlap.seconds")
        self._m_tx_frames = self.metrics.counter("parallel.transport.frames")
        self._m_tx_messages = self.metrics.counter("parallel.transport.messages")
        self._m_tx_bytes = self.metrics.counter("parallel.transport.bytes")
        self._m_tx_result_bytes = self.metrics.counter(
            "parallel.transport.result.bytes"
        )
        if backend == "inline":
            self._inline = [
                self._make_shard(shard) for shard in range(shards)
            ]

    def _shard_options(self, shard: int) -> Dict:
        options = dict(self._options)
        # Session-order edges are global facts; emitting them from every
        # shard would multiply them in the merged graph, so shard 0 owns
        # them (every shard sees every terminal, so its view is complete).
        options["session_order"] = self._session_order and shard == 0
        options["metrics_enabled"] = self.metrics.enabled
        return options

    def _make_shard(self, shard: int) -> ShardVerifier:
        return ShardVerifier(
            shard_id=shard,
            spec=self.spec,
            initial_db=self._initial_parts[shard],
            **self._shard_options(shard),
        )

    # -- worker lifecycle ---------------------------------------------------------

    def _ensure_workers(self) -> None:
        if self._workers or self._backend != "process":
            return
        ctx = _make_context()
        for shard in range(self.router.shards):
            parent_conn, child_conn = ctx.Pipe()
            options = self._shard_options(shard)
            options["stream_segment_events"] = (
                self._segment_events if self.stream_merge else 0
            )
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    shard,
                    self.spec,
                    self._initial_parts[shard],
                    options,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._workers.append(proc)
            self._conns.append(parent_conn)
        if self.stream_merge:
            # Workers push segments whenever their journal fills; a
            # dedicated drainer keeps every pipe's read side moving so a
            # worker can never block sending a segment while the
            # coordinator blocks sending it a frame (started only after
            # every fork -- threads do not survive os.fork).
            self._rx_queue = queue.SimpleQueue()
            self._drainer = threading.Thread(
                target=self._drain_main,
                args=(list(self._conns), self._rx_queue),
                name="parallel-segment-drainer",
                daemon=True,
            )
            self._drainer.start()

    @staticmethod
    def _drain_main(conns: List, rx: "queue.SimpleQueue") -> None:
        """Forward every worker payload into the coordinator queue.

        The worker protocol is segments, then exactly one result/error
        frame, then EOF -- so the drainer needs no frame inspection: it
        reads until each pipe closes.
        """
        live = list(conns)
        while live:
            for conn in _mp_connection.wait(live):
                try:
                    payload = conn.recv_bytes()
                except (EOFError, OSError):
                    live.remove(conn)
                    continue
                rx.put(payload)

    def _send(self, shard: int, message) -> None:
        if self._backend == "inline":
            sv = self._inline[shard]
            if message[0] == MSG_BEGIN:
                sv.begin(message[1], message[2], message[3])
            else:
                sv.ingest(message[1], message[2])
            return
        buffer = self._buffers[shard]
        buffer.append(message)
        if len(buffer) >= self._batch_size:
            self._send_frame(shard, buffer)
            buffer.clear()

    def _horizon(self) -> float:
        """Definition 4's ``S_e`` at the current stream position, computed
        exactly as the serial ``earliest_unverified_snapshot``: the
        dispatch watermark floored by active transactions' first-operation
        pins (a lazy heap -- finished entries pop on first sight)."""
        heap = self._active_heap
        txns = self._txns
        while heap and txns[heap[0][1]].status is not TxnStatus.ACTIVE:
            heapq.heappop(heap)
        if heap and heap[0][0] < self._ts_watermark:
            return heap[0][0]
        return self._ts_watermark

    def _send_frame(self, shard: int, buffer: List) -> None:
        frame = encode_message_frame(
            buffer, self._trace_index - 1, self._horizon()
        )
        try:
            self._conns[shard].send_bytes(frame)
        except (BrokenPipeError, OSError):
            # The worker died; its error frame is already in the pipe (or
            # the drainer queue) and surfaces at collect time.  Dropping
            # the send keeps intake alive long enough to reach it.
            return
        self._m_tx_frames.inc()
        self._m_tx_messages.inc(len(buffer))
        self._m_tx_bytes.inc(len(frame))

    def _flush(self) -> None:
        if self._backend != "process":
            return
        for shard, buffer in enumerate(self._buffers):
            if buffer:
                self._send_frame(shard, buffer)
                buffer.clear()

    # -- streaming merge plumbing ---------------------------------------------------

    def _ensure_merger(self) -> _StreamMerger:
        if self._merger is None:
            self._merger = _StreamMerger(
                spec=self.spec,
                shards=self.router.shards,
                txns=self._txns,
                commits=self._commits,
                gc_every=self._options.get("gc_every", 512),
                metrics=self.metrics,
                horizon_log=self._horizon_log,
            )
        return self._merger

    def _handle_stream_payload(self, payload: bytes) -> None:
        status, value = decode_shard_reply(payload)
        if status == "segment":
            self._m_segments.inc()
            self._m_stream_bytes.inc(len(payload))
            if value.memo_hits or value.memo_misses:
                self._shard_memo[value.shard_id] = (
                    value.memo_hits, value.memo_misses
                )
            merger = self._ensure_merger()
            merger.offer(
                value.shard_id, value.watermark, value.horizon, value.events
            )
            with self._m_overlap.time():
                merger.advance()
        elif status == "ok":
            self._stream_results[value.shard_id] = value
            self._m_tx_result_bytes.inc(len(payload))
        else:
            self._stream_errors.append(value)

    def _pump(self) -> None:
        """Drain whatever the segment drainer has queued (non-blocking);
        called from the intake path so replay overlaps worker compute."""
        rx = self._rx_queue
        if rx is None:
            return
        while True:
            try:
                payload = rx.get_nowait()
            except queue.Empty:
                return
            self._handle_stream_payload(payload)

    def _maybe_flush_inline(self) -> None:
        """Inline-backend streaming: shard verifiers run synchronously, so
        whenever any journal passes the budget every shard is flushed at
        the same (fully caught-up) watermark."""
        if not any(
            len(sv.events) >= self._segment_events for sv in self._inline
        ):
            return
        watermark = self._trace_index - 1
        horizon = self._horizon()
        merger = self._ensure_merger()
        for sv in self._inline:
            self._m_segments.inc()
            merger.offer(sv.shard_id, watermark, horizon, list(sv.events))
            sv.events.clear()
        with self._m_overlap.time():
            merger.advance()

    # -- trace intake -------------------------------------------------------------

    def process(self, trace: Trace) -> None:
        if self._finished:
            raise RuntimeError("verifier already finished")
        self._ensure_workers()
        record = self._txns.get(trace.txn_id)
        if record is None:
            record = _TxnRecord(
                client_id=trace.client_id, first_interval=trace.interval
            )
            self._txns[trace.txn_id] = record
            if self.stream_merge:
                heapq.heappush(
                    self._active_heap, (trace.interval.ts_bef, trace.txn_id)
                )
            begin = (MSG_BEGIN, trace.txn_id, trace.client_id, trace.interval)
            for shard in range(self.router.shards):
                self._send(shard, begin)
        elif record.status is not TxnStatus.ACTIVE:
            raise ValueError(
                f"trace for already-terminated transaction {trace.txn_id}"
            )
        self._ts_watermark = trace.interval.ts_bef
        index = self._trace_index
        self._trace_index += 1
        if trace.is_terminal:
            record.terminal_interval = trace.interval
            if trace.kind is OpKind.COMMIT:
                record.status = TxnStatus.COMMITTED
                self._txns_committed += 1
                self._commits.append((index, trace.txn_id, trace.interval))
            else:
                record.status = TxnStatus.ABORTED
                self._txns_aborted += 1
        if self.stream_merge:
            self._horizon_log.append((index, self._horizon()))
        for shard, part in self.router.split(trace).items():
            self._send(shard, (MSG_TRACE, index, part))
        if self.stream_merge:
            if self._inline:
                self._maybe_flush_inline()
            else:
                self._pump()

    def process_batch(self, traces: Sequence[Trace]) -> None:
        """Batch intake: same per-trace routing as :meth:`process` (the
        reference form) with the loop invariants -- registry, router,
        worker liveness -- resolved once per batch."""
        if self._finished:
            raise RuntimeError("verifier already finished")
        self._ensure_workers()
        txns = self._txns
        shards = range(self.router.shards)
        split = self.router.split
        send = self._send
        active = TxnStatus.ACTIVE
        commit_kind = OpKind.COMMIT
        streaming = self.stream_merge
        for trace in traces:
            txn_id = trace.txn_id
            record = txns.get(txn_id)
            if record is None:
                record = _TxnRecord(
                    client_id=trace.client_id, first_interval=trace.interval
                )
                txns[txn_id] = record
                if streaming:
                    heapq.heappush(
                        self._active_heap, (trace.interval.ts_bef, txn_id)
                    )
                begin = (MSG_BEGIN, txn_id, trace.client_id, trace.interval)
                for shard in shards:
                    send(shard, begin)
            elif record.status is not active:
                raise ValueError(
                    f"trace for already-terminated transaction {txn_id}"
                )
            self._ts_watermark = trace.interval.ts_bef
            index = self._trace_index
            self._trace_index = index + 1
            if trace.is_terminal:
                record.terminal_interval = trace.interval
                if trace.kind is commit_kind:
                    record.status = TxnStatus.COMMITTED
                    self._txns_committed += 1
                    self._commits.append((index, txn_id, trace.interval))
                else:
                    record.status = TxnStatus.ABORTED
                    self._txns_aborted += 1
            if streaming:
                self._horizon_log.append((index, self._horizon()))
            for shard, part in split(trace).items():
                send(shard, (MSG_TRACE, index, part))
        if streaming:
            if self._inline:
                self._maybe_flush_inline()
            else:
                self._pump()

    def process_all(self, traces: Iterable[Trace]) -> "ParallelVerifier":
        for trace in traces:
            self.process(trace)
        return self

    # -- completion ---------------------------------------------------------------

    def _collect(self) -> List[ShardResult]:
        if self._backend == "inline":
            return [shard.finish_shard() for shard in self._inline]
        self._ensure_workers()
        self._flush()
        for conn in self._conns:
            try:
                conn.send_bytes(b"")
            except (BrokenPipeError, OSError):
                pass  # dead worker; its error frame surfaces below
        if self.stream_merge:
            results, errors = self._await_stream_replies()
        else:
            results = []
            errors = []
            for conn in self._conns:
                reply = conn.recv_bytes()
                self._m_tx_result_bytes.inc(len(reply))
                status, payload = decode_shard_reply(reply)
                if status == "ok":
                    results.append(payload)
                else:
                    errors.append(payload)
                conn.close()
        for proc in self._workers:
            proc.join()
        if errors:
            raise RuntimeError(
                "shard worker failed:\n" + "\n".join(errors)
            )
        return results

    def _await_stream_replies(self) -> Tuple[List[ShardResult], List[str]]:
        """Block until every worker's terminal reply arrived, replaying
        any segments that are still in flight along the way (this tail of
        overlap is what shrinks the deferred merge's serial finish)."""
        rx = self._rx_queue
        want = self.router.shards
        while len(self._stream_results) + len(self._stream_errors) < want:
            try:
                payload = rx.get(timeout=0.1)
            except queue.Empty:
                if self._drainer is not None and not self._drainer.is_alive():
                    # Every pipe hit EOF and the queue is dry: a worker
                    # died without managing to send even an error frame.
                    missing = want - len(self._stream_results) - len(
                        self._stream_errors
                    )
                    raise RuntimeError(
                        f"{missing} shard worker(s) exited without a reply"
                    )
                continue
            self._handle_stream_payload(payload)
        if self._drainer is not None:
            self._drainer.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        results = [
            self._stream_results[shard]
            for shard in sorted(self._stream_results)
        ]
        return results, list(self._stream_errors)

    def finish(self) -> VerificationReport:
        if self._report is not None:
            return self._report
        self._finished = True
        self._report = self._merge(self._collect())
        return self._report

    # -- merge: global certification over the journaled event stream ---------------

    def _merge(self, results: List[ShardResult]) -> VerificationReport:
        if self.metrics.enabled:
            self._absorb_shard_metrics(results)
            with self.metrics.timer("parallel.merge.seconds"):
                if self.stream_merge:
                    return self._finalize_stream(results)
                return self._merge_events(results)
        if self.stream_merge:
            return self._finalize_stream(results)
        return self._merge_events(results)

    def _absorb_shard_metrics(self, results: List[ShardResult]) -> None:
        for result in results:
            self.metrics.merge_snapshot(result.metrics)
            self._shard_memo[result.shard_id] = _memo_counts_from_snapshot(
                result.metrics
            )
            self.metrics.set_gauge(
                "parallel.shard.seconds",
                result.wall_seconds,
                shard=result.shard_id,
            )
            self.metrics.set_gauge(
                "parallel.shard.journal.events",
                result.journal_total,
                shard=result.shard_id,
            )

    def _finalize_stream(self, results: List[ShardResult]) -> VerificationReport:
        """Streamed finish: only the journal residue past the last merged
        watermark remains to replay; everything else was certified during
        the run."""
        merger = self._ensure_merger()
        for result in results:
            merger.add_residual(result.shard_id, result.events)
        descriptor = merger.finalize()
        stats = self._merge_stats([result.stats for result in results])
        return VerificationReport(
            descriptor=descriptor, stats=stats, isolation_level=self.spec.name
        )

    def _merge_events(self, results: List[ShardResult]) -> VerificationReport:
        events: List[Tuple[int, int, int, str, object]] = []
        for result in results:
            for index, seq, kind, payload in result.events:
                events.append((index, result.shard_id, seq, kind, payload))
        events.sort(key=lambda event: (event[0], event[1], event[2]))

        state = VerifierState()
        descriptor = state.descriptor
        for txn_id, record in self._txns.items():
            txn = state.ensure_txn(
                txn_id, record.client_id, record.first_interval
            )
            # Every journaled dependency's endpoints were terminal when it
            # was deduced (mechanisms only relate finished transactions),
            # so installing final statuses up front replays faithfully.
            txn.status = record.status
            txn.terminal_interval = record.terminal_interval
        # The merge bus gets no coordinator registry on purpose: its
        # accept/deliver counters would double-count the shard-journaled
        # dependencies the worker buses already counted.  The certifier
        # *does* count here -- shards run the report-free GraphOnlyCertifier,
        # so certification happens exactly once, in this pass.
        bus = DependencyBus(state, count_stats=False)
        certifier = SerializationCertifier(state, self.spec, metrics=self.metrics)
        bus.subscribe(certifier.name, certifier.on_dependency, priority=0)

        commits = iter(self._commits)
        next_commit = next(commits, None)
        # Runs of consecutive dependencies (no commit boundary, no
        # violation) are handed to the bus as one batch; publish_many
        # delivers in order, so the replay is operation-for-operation
        # identical to publishing each event individually.
        batch: List = []
        for index, _shard, _seq, kind, payload in events:
            # Mirror the serial order: a committing transaction's graph
            # node exists before any dependency or violation of that trace.
            if next_commit is not None and next_commit[0] <= index:
                if batch:
                    bus.publish_many(batch)
                    batch.clear()
                while next_commit is not None and next_commit[0] <= index:
                    state.graph.add_txn(next_commit[1], next_commit[2])
                    next_commit = next(commits, None)
            if kind == _VIOLATION:
                if batch:
                    bus.publish_many(batch)
                    batch.clear()
                descriptor.record(payload)
            else:
                batch.append(payload)
        if batch:
            bus.publish_many(batch)
        while next_commit is not None:
            state.graph.add_txn(next_commit[1], next_commit[2])
            next_commit = next(commits, None)

        stats = self._merge_stats([result.stats for result in results])
        return VerificationReport(
            descriptor=descriptor, stats=stats, isolation_level=self.spec.name
        )

    def _merge_stats(
        self, shard_stats: List[VerificationStats]
    ) -> VerificationStats:
        merged = VerificationStats()
        summed = (
            "reads_checked",
            "writes_checked",
            "deps_wr",
            "deps_ww",
            "deps_rw",
            "deps_so",
            "conflict_pairs",
            "overlapped_pairs",
            "deduced_overlapped_pairs",
            "gc_versions_pruned",
            "gc_locks_pruned",
            "gc_txns_pruned",
        )
        for stats in shard_stats:
            for name in summed:
                setattr(merged, name, getattr(merged, name) + getattr(stats, name))
            for bucket, seconds in stats.mechanism_seconds.items():
                merged.mechanism_seconds[bucket] = (
                    merged.mechanism_seconds.get(bucket, 0.0) + seconds
                )
        # Broadcast traces and terminals are processed by several shards;
        # the coordinator's tallies are the true stream-level counts.
        merged.traces_processed = self._trace_index
        merged.txns_committed = self._txns_committed
        merged.txns_aborted = self._txns_aborted
        return merged

    # -- online-wrapper surface -----------------------------------------------------

    def violations_so_far(self) -> List[Violation]:
        """Violations visible before :meth:`finish`.

        Streaming merge: the globally certified violations replayed so
        far -- an append-only list that the final report extends in
        place, so online alerting indexes stay stable across the finish
        boundary.  Deferred merge: the per-shard mechanism findings
        (inline backend only); cross-shard certifier findings exist only
        after the merge."""
        if self._report is not None:
            return self._report.violations
        if self.stream_merge:
            if self._merger is None:
                return []
            return self._merger.descriptor.violations
        merged = BugDescriptor()
        for shard in self._inline:
            merged.absorb(shard.state.descriptor)
        return merged.violations

    def chain_memo_counts(self) -> Optional[Tuple[int, int]]:
        """Cumulative ``chain.memo`` (hits, misses) across every shard,
        live.  Inline shards are read directly from their registries;
        process shards report the totals their latest segment (or final
        result) echoed.  ``None`` when the run is not instrumented, so
        the online snapshot falls back to the coordinator registry."""
        if not self.metrics.enabled:
            return None
        if self._inline:
            hits = 0
            misses = 0
            for shard in self._inline:
                shard_hits, shard_misses = _memo_counts(shard.metrics)
                hits += shard_hits
                misses += shard_misses
            return hits, misses
        hits = sum(pair[0] for pair in self._shard_memo.values())
        misses = sum(pair[1] for pair in self._shard_memo.values())
        return hits, misses

    def coordinator_pending_events(self) -> int:
        """Journal events buffered coordinator-side awaiting replay (zero
        with the deferred merge): the component of the service-wide memory
        budget this verifier owns beyond the staged traces."""
        if self._merger is None:
            return 0
        return self._merger.pending_events()

    def live_structure_count(self) -> int:
        """Total retained structures across shard states (inline backend;
        the process backend's memory lives in the workers, so only the
        coordinator-side registry is counted), plus -- when streaming --
        the replay state and the buffered journal (the structures whose
        flatness the streamed GC is responsible for)."""
        if self._inline:
            total = sum(
                shard.state.live_structure_count() for shard in self._inline
            )
        else:
            total = len(self._txns)
        if self._merger is not None:
            total += self._merger.state.live_structure_count()
            total += self._merger.pending_events()
        return total


def verify_traces_parallel(
    traces: Iterable[Trace],
    spec: IsolationSpec = PG_SERIALIZABLE,
    initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
    shards: int = 4,
    backend: str = "process",
    **kwargs,
) -> VerificationReport:
    """One-shot parallel counterpart of
    :func:`~repro.core.verifier.verify_traces`."""
    verifier = ParallelVerifier(
        spec=spec, initial_db=initial_db, shards=shards, backend=backend, **kwargs
    )
    verifier.process_all(traces)
    return verifier.finish()
