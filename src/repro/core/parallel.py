"""Parallel verification: per-shard CR/ME/FUW, one global certifier.

Leopard's CR, ME and FUW checks are per-record (Section V): every candidate
set, lock pair and write-conflict pair involves a single key, so hash-
partitioning the key space (:mod:`repro.core.sharding`) makes them
embarrassingly parallel.  Only the serialization certifier is global --
dependency cycles cross keys -- so the parallel path splits the work:

* each **shard worker** runs a full :class:`~repro.core.verifier.Verifier`
  over its key partition, with the certifier swapped (through the
  mechanism registry's override seam) for a :class:`GraphOnlyCertifier`
  that maintains the local dependency graph -- the ww-order oracle CR and
  the Fig. 9 derivation need -- but reports nothing;
* every dependency a worker's bus accepts, and every violation its
  mechanisms record, is **journaled** with the global index of the trace
  being processed and a per-shard sequence number;
* at :meth:`ParallelVerifier.finish` the journals are merge-sorted by
  ``(trace index, shard, sequence)`` and replayed into a single global
  :class:`~repro.core.certifier.SerializationCertifier`, which certifies
  the complete cross-shard graph.

With one shard the journal replay reproduces the serial verifier's event
order exactly, so the merged report is identical to the serial report --
the property the equivalence tests pin down.  With several shards the
per-key checks and the certifier remain exact; the only relaxation is that
a worker's ww-order *oracle* sees only the ww edges its own shard deduced,
so a cross-key deduced order cannot shrink another shard's CR candidate
sets (a precision loss that can only suppress deductions, never invent
violations).

Transaction lifecycle events are broadcast: terminals go to every shard,
and the first trace of each transaction triggers a "begin" control message
carrying the true first-operation interval, so every shard agrees on each
transaction's snapshot-generation interval (Definition 2) regardless of
which shard owned the keys of its first operation.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .bus import DependencyBus
from .certifier import SerializationCertifier
from .codec import PayloadDecoder, PayloadEncoder
from .dependencies import Dependency, DepType
from .intervals import Interval
from .mechanism import MechanismContext, MechanismVerifier
from .metrics import NULL_REGISTRY, MetricsRegistry
from .report import (
    BugDescriptor,
    Mechanism,
    VerificationReport,
    VerificationStats,
    Violation,
)
from .sharding import ShardRouter
from .spec import IsolationSpec, PG_SERIALIZABLE
from .state import TxnStatus, VerifierState
from .trace import Key, OpKind, Trace
from .verifier import Verifier

#: journaled event kinds: a dependency accepted by the shard's bus, or a
#: violation recorded by one of the shard's mechanisms.
_DEP = "d"
_VIOLATION = "v"

#: coordinator -> worker message tags (named so dispatch sites do not
#: compare anonymous string literals).
MSG_BEGIN = "b"
MSG_TRACE = "t"

# -- wire frames ------------------------------------------------------------------
#
# The worker pipes speak encoded batch frames built from the binary trace
# codec's primitives (:mod:`repro.core.codec`) instead of pickled lists of
# per-message tuples: one frame per flushed batch, transaction and key ids
# interned once per frame, traces struct-packed.  ``send_bytes``/
# ``recv_bytes`` skip the pickler entirely; an empty byte string ends the
# stream.  Shard results travel back the same way -- dependencies are the
# bulk of a journal and get a packed record; violations are rare and
# structurally open (arbitrary evidence mappings), so they ride as pickled
# blobs inside the frame.

_T_BEGIN = 0
_T_TRACE = 1

_DEPTYPE_TO_CODE = {
    DepType.WW: 0,
    DepType.WR: 1,
    DepType.RW: 2,
    DepType.SO: 3,
}
_CODE_TO_DEPTYPE = {code: dep for dep, code in _DEPTYPE_TO_CODE.items()}
_MECH_TO_CODE = {
    Mechanism.CONSISTENT_READ: 0,
    Mechanism.MUTUAL_EXCLUSION: 1,
    Mechanism.FIRST_UPDATER_WINS: 2,
    Mechanism.SERIALIZATION_CERTIFIER: 3,
}
_CODE_TO_MECH = {code: mech for mech, code in _MECH_TO_CODE.items()}
#: dependency ``source``/``key`` sentinel codes.
_NO_SOURCE = 0xFF
_KEY_VALUE = 0
_KEY_PICKLE = 1


def _is_wire_value(value) -> bool:
    """Whether the codec's tagged value grammar covers ``value`` (record
    keys from traces always qualify; exotic keys fall back to pickle)."""
    if value is None or type(value) in (str, int, float, bool):
        return True
    if isinstance(value, tuple):
        return all(_is_wire_value(part) for part in value)
    return isinstance(value, (str, int, float, bool))


def encode_message_frame(messages: Sequence[Tuple]) -> bytes:
    """Encode one coordinator->worker batch of begin/trace messages."""
    encoder = PayloadEncoder()
    encoder.varint(len(messages))
    for message in messages:
        if message[0] == MSG_BEGIN:
            encoder.u8(_T_BEGIN)
            encoder.string(message[1])
            encoder.zigzag(message[2])
            interval = message[3]
            encoder.double_pair(interval.ts_bef, interval.ts_aft)
        else:
            encoder.u8(_T_TRACE)
            encoder.varint(message[1])
            encoder.trace(message[2])
    return encoder.finish()


def apply_message_frame(shard: "ShardVerifier", payload: bytes) -> None:
    """Decode one batch frame and feed it to a shard verifier.

    Decoding happens once, here in the worker; runs of consecutive trace
    messages are handed to :meth:`ShardVerifier.ingest_batch` so the
    per-trace bookkeeping is amortized across the run.
    """
    decoder = PayloadDecoder(payload)
    count = decoder.varint()
    pending: List[Tuple[int, Trace]] = []
    for _ in range(count):
        tag = decoder.u8()
        if tag == _T_TRACE:
            index = decoder.varint()
            pending.append((index, decoder.trace()))
            continue
        if pending:
            shard.ingest_batch(pending)
            pending = []
        txn_id = decoder.string()
        client_id = decoder.zigzag()
        ts_bef, ts_aft = decoder.double_pair()
        shard.begin(txn_id, client_id, Interval(ts_bef, ts_aft))
    if pending:
        shard.ingest_batch(pending)


def encode_shard_result(result: "ShardResult") -> bytes:
    """Encode a worker's final journal + stats as one result frame."""
    encoder = PayloadEncoder()
    encoder.u8(0)  # ok
    encoder.varint(result.shard_id)
    encoder.double(result.wall_seconds)
    encoder.raw(pickle.dumps(result.stats, protocol=pickle.HIGHEST_PROTOCOL))
    encoder.raw(pickle.dumps(result.metrics, protocol=pickle.HIGHEST_PROTOCOL))
    encoder.varint(len(result.events))
    for index, seq, kind, payload in result.events:
        if kind == _DEP:
            encoder.u8(0)
            encoder.zigzag(index)
            encoder.varint(seq)
            encoder.string(payload.src)
            encoder.string(payload.dst)
            encoder.u8(_DEPTYPE_TO_CODE[payload.dep_type])
            source = payload.source
            encoder.u8(_NO_SOURCE if source is None else _MECH_TO_CODE[source])
            key = payload.key
            if _is_wire_value(key):
                encoder.u8(_KEY_VALUE)
                encoder.value(key)
            else:
                encoder.u8(_KEY_PICKLE)
                encoder.raw(pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL))
        else:
            encoder.u8(1)
            encoder.zigzag(index)
            encoder.varint(seq)
            encoder.raw(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    return encoder.finish()


def encode_shard_error(trace_back: str) -> bytes:
    encoder = PayloadEncoder()
    encoder.u8(1)  # error
    encoder.raw(trace_back.encode("utf-8"))
    return encoder.finish()


def decode_shard_reply(payload: bytes):
    """Decode a worker reply: ``("ok", ShardResult)`` or ``("error", tb)``."""
    decoder = PayloadDecoder(payload)
    status = decoder.u8()
    if status != 0:
        return "error", decoder.raw().decode("utf-8")
    shard_id = decoder.varint()
    wall_seconds = decoder.double()
    stats = pickle.loads(decoder.raw())
    metrics = pickle.loads(decoder.raw())
    events: List[Tuple[int, int, str, object]] = []
    append = events.append
    for _ in range(decoder.varint()):
        tag = decoder.u8()
        index = decoder.zigzag()
        seq = decoder.varint()
        if tag == 0:
            src = decoder.string()
            dst = decoder.string()
            dep_type = _CODE_TO_DEPTYPE[decoder.u8()]
            source_code = decoder.u8()
            source = None if source_code == _NO_SOURCE else _CODE_TO_MECH[source_code]
            if decoder.u8() == _KEY_VALUE:
                key = decoder.value()
            else:
                key = pickle.loads(decoder.raw())
            append(
                (index, seq, _DEP,
                 Dependency(src=src, dst=dst, dep_type=dep_type, key=key,
                            source=source))
            )
        else:
            append((index, seq, _VIOLATION, pickle.loads(decoder.raw())))
    return "ok", ShardResult(
        shard_id=shard_id,
        events=events,
        stats=stats,
        metrics=metrics,
        wall_seconds=wall_seconds,
    )


class GraphOnlyCertifier(MechanismVerifier):
    """Shard-local stand-in for the serialization certifier.

    Maintains the dependency graph (the ww-order oracle and the garbage
    guard depend on it) but never reports: cycles and dangerous structures
    can span shards, so certification belongs to the merged global pass.
    """

    name = "SC"
    subscribes = True
    subscribe_priority = 0

    def __init__(self, state: VerifierState):
        self._state = state

    @classmethod
    def build(cls, ctx: MechanismContext) -> "GraphOnlyCertifier":
        return cls(ctx.state)

    def on_dependency(self, dep) -> None:
        self._state.graph.add_dependency(dep)


class _JournalingDescriptor(BugDescriptor):
    """Bug descriptor that journals every ``record`` call (witnesses
    included, before deduplication) so the merged descriptor can replay
    them and end up with the exact witness counts of a serial run."""

    def __init__(self, journal) -> None:
        super().__init__()
        self._journal = journal

    def record(self, violation: Violation) -> None:
        self._journal(_VIOLATION, violation)
        super().record(violation)


@dataclass
class ShardResult:
    """Everything a shard worker ships back to the coordinator."""

    shard_id: int
    #: journaled events ``(trace_index, seq, kind, payload)`` in the exact
    #: order the shard produced them.
    events: List[Tuple[int, int, str, object]]
    stats: VerificationStats
    #: worker-side :meth:`MetricsRegistry.snapshot` (empty dicts when the
    #: run was not instrumented) and the shard's trace-processing wall
    #: time, for the ``parallel.shard.*`` coordinator metrics.
    metrics: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0


class ShardVerifier(Verifier):
    """A serial verifier over one key partition, journaling its output.

    The certifier is swapped for :class:`GraphOnlyCertifier`; a bus tap
    journals each accepted dependency and a descriptor subclass journals
    each recorded violation, both tagged with the global index of the
    trace currently being ingested and a shared per-shard sequence number
    (so the merged replay preserves their relative order).
    """

    def __init__(self, shard_id: int = 0, **kwargs):
        overrides = dict(kwargs.pop("mechanism_overrides", None) or {})
        overrides.setdefault("SC", GraphOnlyCertifier.build)
        # Registries do not cross the process pipe, so the coordinator
        # ships a bool and each worker builds (and later snapshots) its own.
        if kwargs.pop("metrics_enabled", False) and "metrics" not in kwargs:
            kwargs["metrics"] = MetricsRegistry()
        super().__init__(mechanism_overrides=overrides, **kwargs)
        self.shard_id = shard_id
        self.events: List[Tuple[int, int, str, object]] = []
        self._seq = 0
        self._trace_index = -1
        self._wall_seconds = 0.0
        self.bus.tap(lambda dep: self._journal(_DEP, dep))
        self.state.descriptor = _JournalingDescriptor(self._journal)

    def _journal(self, kind: str, payload) -> None:
        self.events.append((self._trace_index, self._seq, kind, payload))
        self._seq += 1

    def begin(self, txn_id: str, client_id: int, interval: Interval) -> None:
        """Broadcast control: the transaction's true first-operation
        interval, delivered before any of its traces route here."""
        self.state.ensure_txn(txn_id, client_id, interval)

    def ingest(self, trace_index: int, trace: Trace) -> None:
        self._trace_index = trace_index
        if self.metrics.enabled:
            start = time.perf_counter()
            self.process(trace)
            self._wall_seconds += time.perf_counter() - start
        else:
            self.process(trace)

    def ingest_batch(self, pairs: Sequence[Tuple[int, Trace]]) -> None:
        """Ingest a decoded run of ``(trace_index, trace)`` pairs.

        The journal tags events with the index of the trace being
        processed, so the index advances between traces; everything else
        (the process call, the timing) is amortized across the run.
        """
        process = self.process
        if self.metrics.enabled:
            start = time.perf_counter()
            for self._trace_index, trace in pairs:
                process(trace)
            self._wall_seconds += time.perf_counter() - start
        else:
            for self._trace_index, trace in pairs:
                process(trace)

    def finish_shard(self) -> ShardResult:
        if self.metrics.enabled:
            start = time.perf_counter()
            self.finish()
            self._wall_seconds += time.perf_counter() - start
            snapshot = self.metrics.snapshot()
        else:
            self.finish()
            snapshot = {}
        return ShardResult(
            shard_id=self.shard_id,
            events=self.events,
            stats=self.state.stats,
            metrics=snapshot,
            wall_seconds=self._wall_seconds,
        )


# -- process backend -------------------------------------------------------------


def _shard_worker_main(conn, shard_id: int, spec, initial_part, options) -> None:
    """Worker process entry point: drain batch frames, ship the result.

    Messages arrive as encoded byte frames (:func:`encode_message_frame`);
    each frame interleaves begin controls and routed traces in stream
    order and is decoded exactly once, here.  An empty frame ends the
    stream; the reply is an encoded result frame.
    """
    try:
        shard = ShardVerifier(
            shard_id=shard_id, spec=spec, initial_db=initial_part, **options
        )
        while True:
            frame = conn.recv_bytes()
            if not frame:
                break
            apply_message_frame(shard, frame)
        conn.send_bytes(encode_shard_result(shard.finish_shard()))
    except BaseException:  # noqa: BLE001 - forwarded to the coordinator
        conn.send_bytes(encode_shard_error(traceback.format_exc()))
    finally:
        conn.close()


def _make_context():
    """Fork when available (cheap, inherits imports); spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


@dataclass
class _TxnRecord:
    """Coordinator-side transaction lifecycle registry entry."""

    client_id: int
    first_interval: Interval
    status: TxnStatus = TxnStatus.ACTIVE
    terminal_interval: Optional[Interval] = None


class ParallelVerifier:
    """Coordinator for sharded parallel verification.

    Public surface mirrors :class:`~repro.core.verifier.Verifier`
    (``process`` / ``process_all`` / ``finish``), so it drops into the
    pipeline, the online wrapper and the CLI unchanged.

    Parameters
    ----------
    shards:
        Number of key partitions (1 reproduces the serial report exactly).
    backend:
        ``"process"`` runs one worker process per shard over pipes;
        ``"inline"`` runs the shard verifiers in-process (deterministic
        fallback -- same journals, same merge, byte-identical report).
    batch_size:
        Messages buffered per shard before a pipe send (process backend).
    metrics:
        Coordinator-side :class:`~repro.core.metrics.MetricsRegistry`.
        When enabled, each shard builds its own registry (registries do
        not cross the worker pipe), ships its snapshot back inside
        :class:`ShardResult`, and the coordinator folds the snapshots in
        via :meth:`~repro.core.metrics.MetricsRegistry.merge_snapshot`,
        adding ``parallel.shard.seconds{shard=i}`` /
        ``parallel.shard.journal.events{shard=i}`` gauges and the
        ``parallel.merge.seconds`` histogram.  Default: disabled.
    """

    def __init__(
        self,
        spec: IsolationSpec = PG_SERIALIZABLE,
        initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
        shards: int = 4,
        backend: str = "process",
        batch_size: int = 256,
        gc_every: int = 512,
        session_order: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        **verifier_kwargs,
    ):
        if backend not in ("process", "inline"):
            raise ValueError(f"unknown parallel backend {backend!r}")
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.spec = spec
        self.router = ShardRouter(shards)
        self._backend = backend
        self._batch_size = max(1, batch_size)
        self._initial_parts = self.router.partition_initial_db(initial_db)
        self._options = dict(verifier_kwargs)
        self._options["gc_every"] = gc_every
        self._session_order = session_order
        self._txns: Dict[str, _TxnRecord] = {}
        #: committed transactions in stream order: (trace_index, txn, interval)
        self._commits: List[Tuple[int, str, Interval]] = []
        self._trace_index = 0
        self._txns_committed = 0
        self._txns_aborted = 0
        self._finished = False
        self._report: Optional[VerificationReport] = None
        self._workers: List = []
        self._conns: List = []
        self._buffers: List[List] = [[] for _ in range(shards)]
        self._inline: List[ShardVerifier] = []
        self._m_tx_frames = self.metrics.counter("parallel.transport.frames")
        self._m_tx_messages = self.metrics.counter("parallel.transport.messages")
        self._m_tx_bytes = self.metrics.counter("parallel.transport.bytes")
        self._m_tx_result_bytes = self.metrics.counter(
            "parallel.transport.result.bytes"
        )
        if backend == "inline":
            self._inline = [
                self._make_shard(shard) for shard in range(shards)
            ]

    def _shard_options(self, shard: int) -> Dict:
        options = dict(self._options)
        # Session-order edges are global facts; emitting them from every
        # shard would multiply them in the merged graph, so shard 0 owns
        # them (every shard sees every terminal, so its view is complete).
        options["session_order"] = self._session_order and shard == 0
        options["metrics_enabled"] = self.metrics.enabled
        return options

    def _make_shard(self, shard: int) -> ShardVerifier:
        return ShardVerifier(
            shard_id=shard,
            spec=self.spec,
            initial_db=self._initial_parts[shard],
            **self._shard_options(shard),
        )

    # -- worker lifecycle ---------------------------------------------------------

    def _ensure_workers(self) -> None:
        if self._workers or self._backend != "process":
            return
        ctx = _make_context()
        for shard in range(self.router.shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    shard,
                    self.spec,
                    self._initial_parts[shard],
                    self._shard_options(shard),
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._workers.append(proc)
            self._conns.append(parent_conn)

    def _send(self, shard: int, message) -> None:
        if self._backend == "inline":
            sv = self._inline[shard]
            if message[0] == MSG_BEGIN:
                sv.begin(message[1], message[2], message[3])
            else:
                sv.ingest(message[1], message[2])
            return
        buffer = self._buffers[shard]
        buffer.append(message)
        if len(buffer) >= self._batch_size:
            self._send_frame(shard, buffer)
            buffer.clear()

    def _send_frame(self, shard: int, buffer: List) -> None:
        frame = encode_message_frame(buffer)
        self._conns[shard].send_bytes(frame)
        self._m_tx_frames.inc()
        self._m_tx_messages.inc(len(buffer))
        self._m_tx_bytes.inc(len(frame))

    def _flush(self) -> None:
        if self._backend != "process":
            return
        for shard, buffer in enumerate(self._buffers):
            if buffer:
                self._send_frame(shard, buffer)
                buffer.clear()

    # -- trace intake -------------------------------------------------------------

    def process(self, trace: Trace) -> None:
        if self._finished:
            raise RuntimeError("verifier already finished")
        self._ensure_workers()
        record = self._txns.get(trace.txn_id)
        if record is None:
            record = _TxnRecord(
                client_id=trace.client_id, first_interval=trace.interval
            )
            self._txns[trace.txn_id] = record
            begin = (MSG_BEGIN, trace.txn_id, trace.client_id, trace.interval)
            for shard in range(self.router.shards):
                self._send(shard, begin)
        elif record.status is not TxnStatus.ACTIVE:
            raise ValueError(
                f"trace for already-terminated transaction {trace.txn_id}"
            )
        index = self._trace_index
        self._trace_index += 1
        if trace.is_terminal:
            record.terminal_interval = trace.interval
            if trace.kind is OpKind.COMMIT:
                record.status = TxnStatus.COMMITTED
                self._txns_committed += 1
                self._commits.append((index, trace.txn_id, trace.interval))
            else:
                record.status = TxnStatus.ABORTED
                self._txns_aborted += 1
        for shard, part in self.router.split(trace).items():
            self._send(shard, (MSG_TRACE, index, part))

    def process_batch(self, traces: Sequence[Trace]) -> None:
        """Batch intake: same per-trace routing as :meth:`process` (the
        reference form) with the loop invariants -- registry, router,
        worker liveness -- resolved once per batch."""
        if self._finished:
            raise RuntimeError("verifier already finished")
        self._ensure_workers()
        txns = self._txns
        shards = range(self.router.shards)
        split = self.router.split
        send = self._send
        active = TxnStatus.ACTIVE
        commit_kind = OpKind.COMMIT
        for trace in traces:
            txn_id = trace.txn_id
            record = txns.get(txn_id)
            if record is None:
                record = _TxnRecord(
                    client_id=trace.client_id, first_interval=trace.interval
                )
                txns[txn_id] = record
                begin = (MSG_BEGIN, txn_id, trace.client_id, trace.interval)
                for shard in shards:
                    send(shard, begin)
            elif record.status is not active:
                raise ValueError(
                    f"trace for already-terminated transaction {txn_id}"
                )
            index = self._trace_index
            self._trace_index = index + 1
            if trace.is_terminal:
                record.terminal_interval = trace.interval
                if trace.kind is commit_kind:
                    record.status = TxnStatus.COMMITTED
                    self._txns_committed += 1
                    self._commits.append((index, txn_id, trace.interval))
                else:
                    record.status = TxnStatus.ABORTED
                    self._txns_aborted += 1
            for shard, part in split(trace).items():
                send(shard, (MSG_TRACE, index, part))

    def process_all(self, traces: Iterable[Trace]) -> "ParallelVerifier":
        for trace in traces:
            self.process(trace)
        return self

    # -- completion ---------------------------------------------------------------

    def _collect(self) -> List[ShardResult]:
        if self._backend == "inline":
            return [shard.finish_shard() for shard in self._inline]
        self._ensure_workers()
        self._flush()
        for conn in self._conns:
            conn.send_bytes(b"")
        results: List[ShardResult] = []
        errors: List[str] = []
        for conn in self._conns:
            reply = conn.recv_bytes()
            self._m_tx_result_bytes.inc(len(reply))
            status, payload = decode_shard_reply(reply)
            if status == "ok":
                results.append(payload)
            else:
                errors.append(payload)
            conn.close()
        for proc in self._workers:
            proc.join()
        if errors:
            raise RuntimeError(
                "shard worker failed:\n" + "\n".join(errors)
            )
        return results

    def finish(self) -> VerificationReport:
        if self._report is not None:
            return self._report
        self._finished = True
        self._report = self._merge(self._collect())
        return self._report

    # -- merge: global certification over the journaled event stream ---------------

    def _merge(self, results: List[ShardResult]) -> VerificationReport:
        if self.metrics.enabled:
            self._absorb_shard_metrics(results)
            with self.metrics.timer("parallel.merge.seconds"):
                return self._merge_events(results)
        return self._merge_events(results)

    def _absorb_shard_metrics(self, results: List[ShardResult]) -> None:
        for result in results:
            self.metrics.merge_snapshot(result.metrics)
            self.metrics.set_gauge(
                "parallel.shard.seconds",
                result.wall_seconds,
                shard=result.shard_id,
            )
            self.metrics.set_gauge(
                "parallel.shard.journal.events",
                len(result.events),
                shard=result.shard_id,
            )

    def _merge_events(self, results: List[ShardResult]) -> VerificationReport:
        events: List[Tuple[int, int, int, str, object]] = []
        for result in results:
            for index, seq, kind, payload in result.events:
                events.append((index, result.shard_id, seq, kind, payload))
        events.sort(key=lambda event: (event[0], event[1], event[2]))

        state = VerifierState()
        descriptor = state.descriptor
        for txn_id, record in self._txns.items():
            txn = state.ensure_txn(
                txn_id, record.client_id, record.first_interval
            )
            # Every journaled dependency's endpoints were terminal when it
            # was deduced (mechanisms only relate finished transactions),
            # so installing final statuses up front replays faithfully.
            txn.status = record.status
            txn.terminal_interval = record.terminal_interval
        # The merge bus gets no coordinator registry on purpose: its
        # accept/deliver counters would double-count the shard-journaled
        # dependencies the worker buses already counted.  The certifier
        # *does* count here -- shards run the report-free GraphOnlyCertifier,
        # so certification happens exactly once, in this pass.
        bus = DependencyBus(state, count_stats=False)
        certifier = SerializationCertifier(state, self.spec, metrics=self.metrics)
        bus.subscribe(certifier.name, certifier.on_dependency, priority=0)

        commits = iter(self._commits)
        next_commit = next(commits, None)
        # Runs of consecutive dependencies (no commit boundary, no
        # violation) are handed to the bus as one batch; publish_many
        # delivers in order, so the replay is operation-for-operation
        # identical to publishing each event individually.
        batch: List = []
        for index, _shard, _seq, kind, payload in events:
            # Mirror the serial order: a committing transaction's graph
            # node exists before any dependency or violation of that trace.
            if next_commit is not None and next_commit[0] <= index:
                if batch:
                    bus.publish_many(batch)
                    batch.clear()
                while next_commit is not None and next_commit[0] <= index:
                    state.graph.add_txn(next_commit[1], next_commit[2])
                    next_commit = next(commits, None)
            if kind == _VIOLATION:
                if batch:
                    bus.publish_many(batch)
                    batch.clear()
                descriptor.record(payload)
            else:
                batch.append(payload)
        if batch:
            bus.publish_many(batch)
        while next_commit is not None:
            state.graph.add_txn(next_commit[1], next_commit[2])
            next_commit = next(commits, None)

        stats = self._merge_stats([result.stats for result in results])
        return VerificationReport(
            descriptor=descriptor, stats=stats, isolation_level=self.spec.name
        )

    def _merge_stats(
        self, shard_stats: List[VerificationStats]
    ) -> VerificationStats:
        merged = VerificationStats()
        summed = (
            "reads_checked",
            "writes_checked",
            "deps_wr",
            "deps_ww",
            "deps_rw",
            "deps_so",
            "conflict_pairs",
            "overlapped_pairs",
            "deduced_overlapped_pairs",
            "gc_versions_pruned",
            "gc_locks_pruned",
            "gc_txns_pruned",
        )
        for stats in shard_stats:
            for name in summed:
                setattr(merged, name, getattr(merged, name) + getattr(stats, name))
            for bucket, seconds in stats.mechanism_seconds.items():
                merged.mechanism_seconds[bucket] = (
                    merged.mechanism_seconds.get(bucket, 0.0) + seconds
                )
        # Broadcast traces and terminals are processed by several shards;
        # the coordinator's tallies are the true stream-level counts.
        merged.traces_processed = self._trace_index
        merged.txns_committed = self._txns_committed
        merged.txns_aborted = self._txns_aborted
        return merged

    # -- online-wrapper surface -----------------------------------------------------

    def violations_so_far(self) -> List[Violation]:
        """Violations visible without the global certification pass: the
        per-shard mechanism findings (inline backend) or, after
        :meth:`finish`, the full merged list.  Cross-shard certifier
        findings only exist after the merge."""
        if self._report is not None:
            return self._report.violations
        merged = BugDescriptor()
        for shard in self._inline:
            merged.absorb(shard.state.descriptor)
        return merged.violations

    def live_structure_count(self) -> int:
        """Total retained structures across shard states (inline backend;
        the process backend's memory lives in the workers, so only the
        coordinator-side registry is counted)."""
        if self._inline:
            return sum(
                shard.state.live_structure_count() for shard in self._inline
            )
        return len(self._txns)


def verify_traces_parallel(
    traces: Iterable[Trace],
    spec: IsolationSpec = PG_SERIALIZABLE,
    initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
    shards: int = 4,
    backend: str = "process",
    **kwargs,
) -> VerificationReport:
    """One-shot parallel counterpart of
    :func:`~repro.core.verifier.verify_traces`."""
    verifier = ParallelVerifier(
        spec=spec, initial_db=initial_db, shards=shards, backend=backend, **kwargs
    )
    verifier.process_all(traces)
    return verifier.finish()
