"""repro -- a reproduction of *Leopard: A Black-Box Approach for Efficiently
Verifying Various Isolation Levels* (ICDE 2023).

The package has four layers:

* :mod:`repro.core` -- Leopard itself: interval traces, the two-level
  pipeline, and the mechanism-mirrored verifier (the paper's contribution);
* :mod:`repro.dbsim` -- a discrete-event multi-version DBMS substrate with
  pluggable concurrency-control mechanisms and fault injection;
* :mod:`repro.workloads` -- YCSB-A, BlindW variants, SmallBank and TPC-C
  generators plus the runner that produces client trace streams;
* :mod:`repro.baselines` -- Cobra-like, Elle-like and naive cycle-search
  checkers used in the paper's comparisons.

Quickstart::

    from repro import Verifier, PG_SERIALIZABLE, pipeline_from_client_streams
    from repro.dbsim import SimulatedDBMS
    from repro.workloads import BlindW, WorkloadRunner

    db = SimulatedDBMS(spec=PG_SERIALIZABLE, seed=7)
    run = WorkloadRunner(db, BlindW.rw(keys=512), clients=8).run(txns=2000)
    verifier = Verifier(spec=PG_SERIALIZABLE, initial_db=run.initial_db)
    for trace in pipeline_from_client_streams(run.client_streams):
        verifier.process(trace)
    print(verifier.finish().summary())
"""

from .core import (
    Anomaly,
    AnomalySummary,
    anomalies_of,
    classify,
    BugDescriptor,
    CertifierKind,
    ClientFeed,
    CRLevel,
    Dependency,
    DependencyGraph,
    DepType,
    Interval,
    IsolationLevel,
    IsolationSpec,
    KeyRange,
    Mechanism,
    MetricsRegistry,
    NaiveGlobalSorter,
    MechanismVerifier,
    OnlineVerifier,
    OpKind,
    OpStatus,
    ParallelVerifier,
    PG_READ_COMMITTED,
    PG_REPEATABLE_READ,
    PG_SERIALIZABLE,
    READ_COMMITTED,
    SERIALIZABLE,
    SNAPSHOT_ISOLATION,
    SpanTracer,
    Trace,
    TwoLevelPipeline,
    ShardRouter,
    VerificationReport,
    VerificationStats,
    Verifier,
    Violation,
    ViolationKind,
    pipeline_from_client_streams,
    profile,
    profiles_for,
    register_mechanism,
    run_stats,
    sorted_traces,
    supported_dbms,
    verify_traces,
    verify_traces_parallel,
)

__version__ = "1.0.0"

__all__ = [
    "Anomaly",
    "AnomalySummary",
    "anomalies_of",
    "classify",
    "BugDescriptor",
    "CertifierKind",
    "ClientFeed",
    "CRLevel",
    "Dependency",
    "DependencyGraph",
    "DepType",
    "Interval",
    "IsolationLevel",
    "IsolationSpec",
    "KeyRange",
    "Mechanism",
    "MechanismVerifier",
    "MetricsRegistry",
    "NaiveGlobalSorter",
    "OnlineVerifier",
    "SpanTracer",
    "ParallelVerifier",
    "ShardRouter",
    "OpKind",
    "OpStatus",
    "PG_READ_COMMITTED",
    "PG_REPEATABLE_READ",
    "PG_SERIALIZABLE",
    "READ_COMMITTED",
    "SERIALIZABLE",
    "SNAPSHOT_ISOLATION",
    "Trace",
    "TwoLevelPipeline",
    "VerificationReport",
    "VerificationStats",
    "Verifier",
    "Violation",
    "ViolationKind",
    "pipeline_from_client_streams",
    "profile",
    "profiles_for",
    "sorted_traces",
    "supported_dbms",
    "register_mechanism",
    "run_stats",
    "verify_traces",
    "verify_traces_parallel",
    "__version__",
]
