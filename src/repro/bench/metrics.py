"""Measurement utilities for the experiment harness.

The paper measures wall-clock verification time and process memory.  We
measure wall-clock time of the Python implementation directly, and for
memory we count *live verifier structures* (versions, locks, graph nodes
and edges, buffered traces) -- the quantity Leopard's garbage collection
controls, and the one whose growth curve Figs. 10 and 14 plot.  An
optional tracemalloc-based byte meter is provided for absolute numbers.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class Timer:
    """Context manager measuring wall-clock seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed


@dataclass
class MemorySeries:
    """Periodic samples of a structure-count callable."""

    sample_every: int = 256
    samples: List[int] = field(default_factory=list)
    _since: int = 0

    def observe(self, probe: Callable[[], int]) -> None:
        self._since += 1
        if self._since >= self.sample_every:
            self._since = 0
            self.samples.append(probe())

    def finish(self, probe: Callable[[], int]) -> None:
        self.samples.append(probe())

    @property
    def peak(self) -> int:
        return max(self.samples) if self.samples else 0

    @property
    def final(self) -> int:
        return self.samples[-1] if self.samples else 0


class TracemallocMeter:
    """Optional absolute-bytes meter (slower; off by default in benches)."""

    def __enter__(self) -> "TracemallocMeter":
        tracemalloc.start()
        return self

    def __exit__(self, *exc) -> None:
        _, self.peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()


def time_call(fn: Callable[[], object]) -> tuple:
    """Run ``fn`` and return ``(elapsed_seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result
