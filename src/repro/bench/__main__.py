"""CLI: ``python -m repro.bench fig4 fig13 --scale 0.5``."""

import sys

from .harness import main

if __name__ == "__main__":
    sys.exit(main())
