"""One entry point per table/figure of the paper's evaluation.

Every function takes ``scale`` (multiplies transaction counts, so CI can
run the suite quickly) and ``seed`` and returns an
:class:`~repro.bench.harness.ExperimentTable`.  Expected *shapes* are
listed in DESIGN.md section 4; measured-vs-paper notes live in
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from ..baselines import (
    CobraChecker,
    ElleChecker,
    InapplicableWorkload,
    NaiveCycleSearchChecker,
    history_from_traces,
)
from ..core.pipeline import (
    ClientFeed,
    NaiveGlobalSorter,
    TwoLevelPipeline,
    pipeline_from_client_streams,
)
from ..core.spec import (
    DBMS_PROFILES,
    IsolationSpec,
    PG_REPEATABLE_READ,
    PG_SERIALIZABLE,
)
from ..core.verifier import Verifier
from ..dbsim.faults import FaultPlan
from ..workloads import (
    BlindW,
    InsertScanWorkload,
    LostUpdateWorkload,
    NoopUpdateWorkload,
    ReadOnlyAuditWorkload,
    RunResult,
    SelectForUpdateWorkload,
    SmallBank,
    TpcC,
    WriteSkewWorkload,
    YcsbA,
    run_workload,
)
from .harness import ExperimentTable, experiment
from .metrics import MemorySeries


def _scaled(n: int, scale: float, floor: int = 50) -> int:
    return max(floor, int(n * scale))


def _verify(
    run: RunResult,
    spec: IsolationSpec,
    sample_memory: bool = False,
    **verifier_kwargs,
):
    """Feed a run through the pipeline + verifier; returns
    ``(report, elapsed_seconds, peak_structures, verifier)``."""
    verifier = Verifier(spec=spec, initial_db=run.initial_db, **verifier_kwargs)
    memory = MemorySeries(sample_every=200)
    start = time.perf_counter()
    for trace in pipeline_from_client_streams(run.client_streams):
        verifier.process(trace)
        if sample_memory:
            memory.observe(verifier.state.live_structure_count)
    report = verifier.finish()
    elapsed = time.perf_counter() - start
    memory.finish(verifier.state.live_structure_count)
    return report, elapsed, memory.peak, verifier


# ---------------------------------------------------------------------------
# Fig. 1 -- isolation-level implementation registry
# ---------------------------------------------------------------------------

#: mechanism checkmarks exactly as printed in Fig. 1 (ME, CR, FUW, SC).
_FIG1_EXPECTED = {
    ("postgresql", "SR"): ("ME", "CR", "FUW", "SC"),
    ("postgresql", "SI"): ("ME", "CR", "FUW"),
    ("postgresql", "RC"): ("ME", "CR"),
    ("opengauss", "SR"): ("ME", "CR", "FUW", "SC"),
    ("opengauss", "SI"): ("ME", "CR", "FUW"),
    ("opengauss", "RC"): ("ME", "CR"),
    ("innodb", "SR"): ("ME", "CR"),
    ("innodb", "RR"): ("ME", "CR"),
    ("innodb", "RC"): ("ME", "CR"),
    ("sqlserver", "SR"): ("ME", "CR"),
    ("sqlserver", "RR"): ("ME", "CR"),
    ("sqlserver", "RC"): ("ME", "CR"),
    ("tidb", "RR"): ("ME", "CR"),
    ("tidb", "RC"): ("ME", "CR"),
    ("tidb", "SI"): ("CR", "SC"),
    ("rocksdb", "SR"): ("ME", "CR"),
    ("rocksdb-occ", "SR"): ("CR", "SC"),
    ("sqlite", "SR"): ("ME",),
    ("foundationdb", "SR"): ("CR", "SC"),
    ("singlestore", "RC"): ("ME", "CR"),
    ("cockroachdb", "SR"): ("CR", "SC"),
    ("spanner", "SR"): ("ME", "CR"),
    ("yugabytedb", "SR"): ("ME", "CR", "FUW", "SC"),
    ("yugabytedb", "RR"): ("ME", "CR", "FUW"),
    ("yugabytedb", "RC"): ("ME", "CR"),
    ("oracle", "SI"): ("ME", "CR", "FUW"),
    ("oracle", "RC"): ("ME", "CR"),
    ("nuodb", "SI"): ("ME", "CR", "FUW"),
    ("saphana", "SI"): ("ME", "CR", "FUW"),
    ("saphana", "RC"): ("ME", "CR"),
}


@experiment("fig1")
def fig1_profiles(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """Fig. 1: mechanism assembly per (DBMS, isolation level)."""
    table = ExperimentTable(
        exp_id="fig1",
        title="Isolation level implementations in DBMSs (registry vs paper)",
        headers=("dbms", "level", "mechanisms", "matches paper"),
    )
    for (dbms, level), spec in sorted(
        DBMS_PROFILES.items(), key=lambda item: (item[0][0], item[0][1].value)
    ):
        marks = spec.mechanisms()
        expected = _FIG1_EXPECTED.get((dbms, level.value))
        verdict = "yes" if expected == marks else ("n/a" if expected is None else "NO")
        table.add_row(dbms, level.value, "+".join(marks), verdict)
    return table


# ---------------------------------------------------------------------------
# Fig. 4 -- overlap ratio in YCSB-A
# ---------------------------------------------------------------------------


@experiment("fig4")
def fig4_overlap(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """Fig. 4: ratio of conflicting operations with overlapped intervals."""
    table = ExperimentTable(
        exp_id="fig4",
        title="Overlapping ratio beta in YCSB-A (PostgreSQL/SR profile)",
        headers=("theta", "threads", "read ratio", "txns", "beta"),
    )
    txns = _scaled(1500, scale)
    records = _scaled(4000, scale, floor=500)
    configs: List[Tuple[float, int, float]] = []
    for theta in (0.2, 0.5, 0.8, 0.99):
        configs.append((theta, 16, 0.5))
    for threads in (8, 32, 64):
        configs.append((0.8, threads, 0.5))
    for read_ratio in (0.25, 0.75):
        configs.append((0.8, 16, read_ratio))
    for theta, threads, read_ratio in configs:
        workload = YcsbA(
            records=records, theta=theta, read_ratio=read_ratio, seed=seed
        )
        run = run_workload(
            workload, PG_SERIALIZABLE, clients=threads, txns=txns, seed=seed
        )
        report, _, _, _ = _verify(run, PG_SERIALIZABLE)
        table.add_row(theta, threads, read_ratio, run.committed, report.stats.beta)
    table.add_note(
        "paper shape: beta stays below ~6% everywhere and grows with "
        "skew (theta) and thread count"
    )
    return table


# ---------------------------------------------------------------------------
# Fig. 10 -- two-level pipeline
# ---------------------------------------------------------------------------


def _pipeline_variants(run: RunResult):
    def feeds():
        return [
            ClientFeed(traces, batch_size=64)
            for _, traces in sorted(run.client_streams.items())
        ]

    return (
        ("naive", lambda: NaiveGlobalSorter(feeds())),
        ("w/o Opt", lambda: TwoLevelPipeline(feeds(), optimized=False)),
        ("leopard", lambda: TwoLevelPipeline(feeds(), optimized=True)),
    )


@experiment("fig10")
def fig10_pipeline(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """Fig. 10: dispatching time and memory of the two-level pipeline."""
    table = ExperimentTable(
        exp_id="fig10",
        title="Two-level pipeline vs naive sorting",
        headers=(
            "workload",
            "txns",
            "sorter",
            "dispatch time (s)",
            "peak buffered traces",
        ),
    )
    workloads = (
        SmallBank(scale_factor=0.2, seed=seed),
        TpcC(scale_factor=1, seed=seed),
        BlindW.rw_plus(keys=2048, seed=seed),
    )
    for workload in workloads:
        for txns in (_scaled(2000, scale), _scaled(6000, scale)):
            run = run_workload(
                workload, PG_SERIALIZABLE, clients=24, txns=txns, seed=seed
            )
            for sorter_name, make in _pipeline_variants(run):
                sorter = make()
                start = time.perf_counter()
                count = sum(1 for _ in sorter)
                elapsed = time.perf_counter() - start
                table.add_row(
                    run.workload,
                    txns,
                    sorter_name,
                    elapsed,
                    sorter.stats.peak_buffered,
                )
                assert count == run.trace_count
    table.add_note(
        "paper shape: leopard dispatches fastest with the flattest memory; "
        "the naive sorter buffers the whole history"
    )
    return table


# ---------------------------------------------------------------------------
# Fig. 11 -- mechanism-mirrored verification
# ---------------------------------------------------------------------------


@experiment("fig11")
def fig11_verification(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """Fig. 11: verification time vs txn scale, thread scale, txn length."""
    table = ExperimentTable(
        exp_id="fig11",
        title="Mechanism-mirrored verification time (BlindW-RW+)",
        headers=(
            "vary",
            "value",
            "committed",
            "leopard (s)",
            "cycle search (s)",
            "DBMS runtime (s)",
        ),
    )

    def one(txns: int, threads: int, length: int, with_naive: bool):
        workload = BlindW.rw_plus(keys=2048, ops_per_txn=length, seed=seed)
        run = run_workload(
            workload, PG_SERIALIZABLE, clients=threads, txns=txns, seed=seed
        )
        _, leopard_time, _, _ = _verify(run, PG_SERIALIZABLE)
        naive_time: Optional[float] = None
        if with_naive:
            checker = NaiveCycleSearchChecker(
                spec=PG_SERIALIZABLE, initial_db=run.initial_db
            )
            start = time.perf_counter()
            for trace in pipeline_from_client_streams(run.client_streams):
                checker.process(trace)
            checker.finish()
            naive_time = time.perf_counter() - start
        return run, leopard_time, naive_time

    base_txns = _scaled(2000, scale)
    for txns in (base_txns // 2, base_txns, base_txns * 2):
        run, leopard_time, naive_time = one(txns, 24, 8, with_naive=txns <= base_txns)
        table.add_row(
            "txn scale",
            txns,
            run.committed,
            leopard_time,
            naive_time if naive_time is not None else "-",
            run.wall_time,
        )
    for threads in (8, 16, 24, 32):
        run, leopard_time, _ = one(base_txns, threads, 8, with_naive=False)
        table.add_row(
            "thread scale", threads, run.committed, leopard_time, "-", run.wall_time
        )
    for length in (4, 8, 12, 16):
        run, leopard_time, _ = one(base_txns, 24, length, with_naive=False)
        table.add_row(
            "txn length", length, run.committed, leopard_time, "-", run.wall_time
        )
    table.add_note(
        "paper shape: leopard linear in txn scale and txn length, "
        "decreasing with thread scale (aborts rise); cycle search and DBMS "
        "runtime are orders of magnitude slower at scale"
    )
    return table


# ---------------------------------------------------------------------------
# Fig. 12 -- workload throughput vs Leopard throughput
# ---------------------------------------------------------------------------


@experiment("fig12")
def fig12_throughput(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """Fig. 12: can verification keep up with the DBMS?"""
    table = ExperimentTable(
        exp_id="fig12",
        title="DBMS throughput vs Leopard verification throughput",
        headers=(
            "workload",
            "scale factor",
            "committed",
            "DBMS tps",
            "leopard tps",
            "leopard/DBMS",
        ),
    )
    txns = _scaled(2000, scale)
    configs = [
        (SmallBank(scale_factor=sf, seed=seed), sf) for sf in (0.2, 0.5, 1.0)
    ] + [(TpcC(scale_factor=sf, seed=seed), sf) for sf in (1, 2)]
    for workload, sf in configs:
        run = run_workload(
            workload, PG_SERIALIZABLE, clients=24, txns=txns, seed=seed
        )
        _, leopard_time, _, _ = _verify(run, PG_SERIALIZABLE)
        dbms_tps = run.throughput
        leopard_tps = run.committed / leopard_time if leopard_time else 0.0
        table.add_row(
            run.workload,
            sf,
            run.committed,
            dbms_tps,
            leopard_tps,
            leopard_tps / dbms_tps if dbms_tps else 0.0,
        )
    table.add_note(
        "DBMS tps is simulated-time throughput of the engine substrate; "
        "leopard tps is real wall-clock verification throughput "
        "(see DESIGN.md substitutions)"
    )
    table.add_note(
        "paper shape: leopard keeps up with SmallBank and clearly beats "
        "the DBMS on complex TPC-C"
    )
    return table


# ---------------------------------------------------------------------------
# Fig. 13 -- deducing dependencies
# ---------------------------------------------------------------------------


@experiment("fig13")
def fig13_deduce(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """Fig. 13: overlapped conflicting pairs, split deduced/uncertain."""
    table = ExperimentTable(
        exp_id="fig13",
        title="Deducing dependencies from overlapped traces",
        headers=(
            "workload",
            "conflict pairs",
            "beta",
            "deduced share of beta",
            "uncertain share of beta",
        ),
    )
    txns = _scaled(3000, scale)
    workloads = (
        SmallBank(scale_factor=0.2, seed=seed),
        TpcC(scale_factor=1, seed=seed),
        BlindW.w(keys=2048, seed=seed),
        BlindW.rw(keys=2048, seed=seed),
    )
    for workload in workloads:
        run = run_workload(
            workload, PG_SERIALIZABLE, clients=24, txns=txns, seed=seed
        )
        report, _, _, _ = _verify(run, PG_SERIALIZABLE)
        stats = report.stats
        deduced = (
            stats.deduced_overlapped_pairs / stats.overlapped_pairs
            if stats.overlapped_pairs
            else 1.0
        )
        table.add_row(
            run.workload,
            stats.conflict_pairs,
            stats.beta,
            deduced,
            1.0 - deduced,
        )
    table.add_note(
        "paper shape: beta is small everywhere; BlindW-W and BlindW-RW "
        "overlaps are fully deduced, SmallBank (duplicate values) and "
        "TPC-C (disjoint column sets) keep an uncertain residue"
    )
    return table


# ---------------------------------------------------------------------------
# Fig. 14 -- comparison with Cobra
# ---------------------------------------------------------------------------


@experiment("fig14")
def fig14_cobra(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """Fig. 14: Leopard vs Cobra (with/without GC), time and memory."""
    table = ExperimentTable(
        exp_id="fig14",
        title="Leopard vs Cobra on BlindW-RW",
        headers=(
            "vary",
            "value",
            "checker",
            "time (s)",
            "peak structures",
        ),
    )
    base_txns = _scaled(1000, scale, floor=100)
    nogc_limit = base_txns * 2

    def run_point(vary: str, value: int, txns: int, threads: int) -> None:
        run = run_workload(
            BlindW.rw(keys=2048, seed=seed),
            PG_SERIALIZABLE,
            clients=threads,
            txns=txns,
            seed=seed,
        )
        _, leopard_time, leopard_mem, _ = _verify(
            run, PG_SERIALIZABLE, sample_memory=True
        )
        table.add_row(vary, value, "leopard", leopard_time, leopard_mem)
        history = history_from_traces(run.all_traces_sorted())
        start = time.perf_counter()
        gc_result = CobraChecker(fence_every=20).check(history, run.initial_db)
        table.add_row(
            vary, value, "cobra", time.perf_counter() - start, gc_result.peak_structures
        )
        if txns <= nogc_limit:
            start = time.perf_counter()
            nogc_result = CobraChecker(fence_every=None).check(
                history, run.initial_db
            )
            table.add_row(
                vary,
                value,
                "cobra w/o GC",
                time.perf_counter() - start,
                nogc_result.peak_structures,
            )
        else:
            table.add_row(vary, value, "cobra w/o GC", "-", "-")

    for txns in (base_txns // 2, base_txns, base_txns * 2, base_txns * 4):
        run_point("txn scale", txns, txns, 24)
    for threads in (8, 16, 24, 32):
        run_point("thread scale", threads, base_txns, threads)
    table.add_note(
        "paper shape: leopard time linear / memory flat; Cobra w/o GC "
        "superlinear in both; our simplified fence GC is cheaper than the "
        "paper's Cobra (see EXPERIMENTS.md), so its time sits between "
        "leopard and Cobra w/o GC instead of being the slowest"
    )
    return table


# ---------------------------------------------------------------------------
# Section VI-F -- bug cases
# ---------------------------------------------------------------------------


def bug_case_scenarios(seed: int = 0):
    """The Section VI-F bug cases as (name, workload, spec, faults)."""
    return [
        (
            "bug1 dirty write (no-op update lock skip)",
            NoopUpdateWorkload(records=2, seed=seed),
            PG_REPEATABLE_READ,
            FaultPlan(skip_lock_on_noop_update=True, disable_fuw=True, seed=seed),
        ),
        (
            "bug2 inconsistent read (stale version)",
            ReadOnlyAuditWorkload(counters=16, seed=seed),
            PG_REPEATABLE_READ,
            FaultPlan(stale_read_prob=0.05, seed=seed),
        ),
        (
            "bug3 incompatible write locks (forgotten FOR UPDATE)",
            SelectForUpdateWorkload(records=2, seed=seed),
            PG_REPEATABLE_READ,
            FaultPlan(forget_write_lock_prob=0.5, seed=seed),
        ),
        (
            "bug4 two-version read (own write ignored)",
            ReadOnlyAuditWorkload(counters=16, seed=seed),
            PG_REPEATABLE_READ,
            FaultPlan(ignore_own_write_prob=0.5, seed=seed),
        ),
        (
            "lost update (FUW disabled under SI)",
            LostUpdateWorkload(counters=4, seed=seed),
            PG_REPEATABLE_READ,
            FaultPlan(disable_fuw=True, seed=seed),
        ),
        (
            "write skew (SSI disabled under SR)",
            WriteSkewWorkload(pairs=4, seed=seed),
            PG_SERIALIZABLE,
            FaultPlan(disable_ssi=True, seed=seed),
        ),
        (
            "phantom rows (scan drops matching rows)",
            InsertScanWorkload(initial_rows=10, seed=seed),
            PG_SERIALIZABLE,
            FaultPlan(phantom_skip_prob=0.05, seed=seed),
        ),
        (
            "dirty write, no cycle (blind writes, no locks)",
            BlindW.w(keys=32, seed=seed),
            PG_SERIALIZABLE,
            FaultPlan(
                disable_write_locks=True,
                disable_fuw=True,
                disable_ssi=True,
                seed=seed,
            ),
        ),
    ]


@experiment("bugs")
def bug_cases(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """Section VI-F: which checker finds which injected bug class."""
    table = ExperimentTable(
        exp_id="bugs",
        title="Bug cases: Leopard vs Elle vs Cobra",
        headers=("case", "leopard", "elle", "cobra"),
    )
    txns = _scaled(600, scale, floor=200)
    for name, workload, spec, faults in bug_case_scenarios(seed):
        run = run_workload(
            workload,
            spec,
            clients=12,
            txns=txns,
            seed=seed,
            faults=faults,
            think_mean=1e-4,
        )
        report, _, _, _ = _verify(run, spec)
        leopard = (
            "found: "
            + ",".join(
                sorted(
                    {f"{v.mechanism.value}/{v.kind.value}" for v in report.violations}
                )
            )
            if not report.ok
            else "MISSED"
        )
        traces = run.all_traces_sorted()
        try:
            elle_result = ElleChecker().check_traces(traces, run.initial_db)
            elle = (
                "found: " + ",".join(sorted(elle_result.anomaly_names()))
                if not elle_result.ok
                else "missed"
            )
        except InapplicableWorkload:
            elle = "inapplicable"
        history = history_from_traces(traces)
        try:
            cobra_result = CobraChecker(fence_every=20).check(history, run.initial_db)
            cobra = "missed" if cobra_result.ok else "found"
        except RuntimeError:
            cobra = "timeout"
        table.add_row(name, leopard, elle, cobra)
    table.add_note(
        "paper shape: Leopard flags every case; Elle is inapplicable on "
        "duplicate-value workloads and blind to acyclic bugs (Bug 1 / "
        "dirty writes without cycles); Cobra only judges serializability"
    )
    return table


# ---------------------------------------------------------------------------
# Extension: where does verification time go?
# ---------------------------------------------------------------------------


@experiment("breakdown")
def mechanism_time_breakdown(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """Per-mechanism share of verification time.

    Supports the paper's Section III argument that mirroring the
    concurrency-control mechanisms is cheap: the dependency-graph certifier
    (SC) stays a small fraction, with CR/FUW dominated by the per-record
    version scans.
    """
    table = ExperimentTable(
        exp_id="breakdown",
        title="Verification time by mechanism",
        headers=("workload", "total (s)", "CR %", "ME %", "FUW %", "SC %"),
    )
    txns = _scaled(1500, scale)
    for workload in (
        BlindW.rw(keys=2048, seed=seed),
        SmallBank(scale_factor=0.2, seed=seed),
        TpcC(scale_factor=1, seed=seed),
    ):
        run = run_workload(
            workload, PG_SERIALIZABLE, clients=24, txns=txns, seed=seed
        )
        report, elapsed, _, _ = _verify(run, PG_SERIALIZABLE)
        buckets = report.stats.mechanism_seconds
        total = sum(buckets.values()) or 1.0
        table.add_row(
            run.workload,
            elapsed,
            *(100.0 * buckets.get(m, 0.0) / total for m in ("CR", "ME", "FUW", "SC")),
        )
    table.add_note(
        "percentages are shares of mechanism time (pipeline and bookkeeping "
        "excluded); SC includes the rw edges other mechanisms hand it"
    )
    return table


# ---------------------------------------------------------------------------
# Extension: clock-synchronisation sensitivity
# ---------------------------------------------------------------------------


@experiment("skew")
def clock_skew_sensitivity(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """How much clock skew can interval-based verification absorb?

    Section IV-A relies on NTP-class synchronisation.  This extension
    quantifies the requirement: per-client constant offsets are injected
    into the trace timestamps of a *clean* serializable run.  Up to
    offsets comparable to operation latency, the uncertainty ratio beta
    rises but no false violation appears; far beyond it, intervals invert
    relative to real time and false positives become possible -- the
    experiment reports where that happens for the simulated latency model
    (mean operation latency ~0.3 ms).
    """
    table = ExperimentTable(
        exp_id="skew",
        title="Clock-skew sensitivity (clean BlindW-RW, PostgreSQL/SR)",
        headers=(
            "max offset (us)",
            "jitter (us)",
            "beta",
            "deps total",
            "false violations",
        ),
    )
    txns = _scaled(1500, scale)
    for offset_us, jitter_us in (
        (0, 0),
        (10, 1),
        (50, 5),
        (100, 10),
        (300, 30),
        (1000, 100),
    ):
        run = run_workload(
            BlindW.rw(keys=1024, seed=seed),
            PG_SERIALIZABLE,
            clients=16,
            txns=txns,
            seed=seed,
            clock_skew=offset_us * 1e-6,
            clock_jitter=jitter_us * 1e-6,
        )
        report, _, _, _ = _verify(run, PG_SERIALIZABLE)
        table.add_row(
            offset_us,
            jitter_us,
            report.stats.beta,
            report.stats.deps_total,
            len(report.violations),
        )
    table.add_note(
        "expected: beta grows with skew while false violations stay at 0 "
        "until offsets exceed operation latency (~300us in this model)"
    )
    return table


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md section 5)
# ---------------------------------------------------------------------------


@experiment("ablation")
def ablation(scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    """Ablation of Leopard's design choices."""
    table = ExperimentTable(
        exp_id="ablation",
        title="Design-choice ablations (BlindW-RW, PostgreSQL/SR)",
        headers=("configuration", "time (s)", "peak structures", "deduced share"),
    )
    txns = _scaled(2000, scale)
    run = run_workload(
        BlindW.rw(keys=2048, seed=seed),
        PG_SERIALIZABLE,
        clients=24,
        txns=txns,
        seed=seed,
    )
    configs = [
        ("full leopard", {}),
        ("no garbage collection", {"gc_every": 0}),
        ("no dependency exchange", {"exchange_dependencies": False}),
        ("no candidate minimisation", {"minimize_candidates": False}),
    ]
    for name, kwargs in configs:
        report, elapsed, peak, _ = _verify(
            run, PG_SERIALIZABLE, sample_memory=True, **kwargs
        )
        stats = report.stats
        deduced = (
            stats.deduced_overlapped_pairs / stats.overlapped_pairs
            if stats.overlapped_pairs
            else 1.0
        )
        table.add_row(name, elapsed, peak, deduced)
    table.add_note(
        "expected: GC off -> memory grows with history; exchange off -> "
        "lower deduced share; naive candidates -> slower CR checks"
    )
    return table
