"""Experiment harness: paper-style tables and a CLI entry point.

Every table and figure of the paper's evaluation has a function in
:mod:`repro.bench.experiments` returning an :class:`ExperimentTable`; this
module renders them and exposes ``python -m repro.bench`` to regenerate any
of them from the command line::

    python -m repro.bench --list
    python -m repro.bench fig4 fig13
    python -m repro.bench all --scale 0.25
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class ExperimentTable:
    """One reproduced table/figure, ready to print."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        columns = [str(h) for h in self.headers]
        body = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(columns[i]), *(len(row[i]) for row in body))
            if body
            else len(columns[i])
            for i in range(len(columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            " | ".join(c.ljust(w) for c, w in zip(columns, widths)),
            sep,
        ]
        for row in body:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.render()

    def column(self, header: str) -> List[object]:
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]

    def to_csv(self, path) -> None:
        """Write the table as CSV (one plotting-ready file per figure)."""
        import csv
        from pathlib import Path

        with Path(path).open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            for row in self.rows:
                writer.writerow(row)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


#: registry filled by repro.bench.experiments at import time.
EXPERIMENTS: Dict[str, Callable[..., ExperimentTable]] = {}


def experiment(exp_id: str):
    """Decorator registering an experiment entry point."""

    def register(fn: Callable[..., ExperimentTable]):
        EXPERIMENTS[exp_id] = fn
        return fn

    return register


def run_experiment(exp_id: str, scale: float = 1.0, seed: int = 0) -> ExperimentTable:
    from . import experiments  # noqa: F401 - ensures registration

    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None
    return fn(scale=scale, seed=seed)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from . import experiments  # noqa: F401 - ensures registration

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "exp_ids",
        nargs="*",
        help="experiment ids (e.g. fig4 fig10 fig11 fig12 fig13 fig14 "
        "fig1 bugs ablation) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale multiplier (1.0 = defaults used in EXPERIMENTS.md)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each table as DIR/<exp_id>.csv",
    )
    args = parser.parse_args(argv)
    if args.list or not args.exp_ids:
        for exp_id in sorted(EXPERIMENTS):
            print(exp_id)
        return 0
    targets = (
        sorted(EXPERIMENTS) if args.exp_ids == ["all"] else list(args.exp_ids)
    )
    if args.csv:
        from pathlib import Path

        Path(args.csv).mkdir(parents=True, exist_ok=True)
    for exp_id in targets:
        table = run_experiment(exp_id, scale=args.scale, seed=args.seed)
        print(table.render())
        print()
        if args.csv:
            from pathlib import Path

            table.to_csv(Path(args.csv) / f"{exp_id}.csv")
    return 0
