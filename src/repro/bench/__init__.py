"""Benchmark harness reproducing the paper's tables and figures."""

from .harness import EXPERIMENTS, ExperimentTable, experiment, run_experiment
from .metrics import MemorySeries, Timer, TracemallocMeter, time_call

__all__ = [
    "EXPERIMENTS",
    "ExperimentTable",
    "experiment",
    "run_experiment",
    "MemorySeries",
    "Timer",
    "TracemallocMeter",
    "time_call",
]
