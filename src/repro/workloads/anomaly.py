"""Adversarial micro-workloads that provoke specific isolation anomalies.

These are the "bug hunting" workloads used by the Section VI-F experiments
and the test suite: each is shaped so that, when the corresponding
mechanism is disabled in the engine (see :mod:`repro.dbsim.faults`), the
anomaly actually materialises with high probability -- general-purpose
benchmarks like SmallBank produce genuine write skew only rarely.
"""

from __future__ import annotations

import random
from typing import Dict

from ..dbsim.session import Program, ReadOp, WriteOp
from .base import Key, Workload


class WriteSkewWorkload(Workload):
    """The on-call doctors pattern: pairs of records with an invariant
    ``x + y >= 1``.  Transaction A reads both and zeroes ``y`` if the sum
    allows; transaction B symmetrically zeroes ``x``.  Two concurrent
    instances on the same pair produce classic write skew (two rw
    anti-dependencies) unless an SSI certifier intervenes.
    """

    def __init__(self, pairs: int = 16, seed: int = 0):
        self.pairs = max(1, pairs)
        self.name = f"write-skew(pairs={self.pairs})"

    def populate(self) -> Dict[Key, object]:
        initial: Dict[Key, object] = {}
        for pair in range(self.pairs):
            initial[("x", pair)] = 1
            initial[("y", pair)] = 1
        return initial

    def transaction(self, rng: random.Random) -> Program:
        pair = rng.randrange(self.pairs)
        zero_y = rng.random() < 0.5
        x_key, y_key = ("x", pair), ("y", pair)

        def program():
            values = yield ReadOp([x_key, y_key])
            total = values[x_key]["v"] + values[y_key]["v"]
            if total < 1:
                return  # invariant already broken; read-only this time
            if zero_y:
                yield WriteOp({y_key: values[y_key]["v"] - 1})
            else:
                yield WriteOp({x_key: values[x_key]["v"] - 1})

        return program()


class LostUpdateWorkload(Workload):
    """Read-modify-write increments on a small hot set: two concurrent
    increments on the same counter lose one update unless first-updater-
    wins (or serialization) intervenes."""

    def __init__(self, counters: int = 8, seed: int = 0):
        self.counters = max(1, counters)
        self.name = f"lost-update(counters={self.counters})"

    def populate(self) -> Dict[Key, object]:
        return {("counter", i): 0 for i in range(self.counters)}

    def transaction(self, rng: random.Random) -> Program:
        key = ("counter", rng.randrange(self.counters))

        def program():
            values = yield ReadOp([key])
            yield WriteOp({key: values[key]["v"] + 1})

        return program()


class ReadOnlyAuditWorkload(Workload):
    """Mix of counter increments with read-only audits of several counters;
    the audit reads expose stale/dirty/non-repeatable read faults."""

    def __init__(self, counters: int = 16, audit_ratio: float = 0.4, seed: int = 0):
        self.counters = max(2, counters)
        self.audit_ratio = audit_ratio
        self.name = f"audit(counters={self.counters})"

    def populate(self) -> Dict[Key, object]:
        return {("acct", i): 100 for i in range(self.counters)}

    def transaction(self, rng: random.Random) -> Program:
        if rng.random() < self.audit_ratio:
            keys = [("acct", i) for i in rng.sample(range(self.counters), 4)]

            def audit():
                first = yield ReadOp(keys)
                second = yield ReadOp(keys)  # repeatable-read probe
                del first, second

            return audit()
        src = ("acct", rng.randrange(self.counters))
        dst = ("acct", rng.randrange(self.counters))

        def transfer():
            values = yield ReadOp([src])
            amount = 1 + (values[src]["v"] % 5)
            yield WriteOp({src: values[src]["v"] - amount})
            target = yield ReadOp([dst])
            yield WriteOp({dst: target[dst]["v"] + amount})

        return transfer()


class SelectForUpdateWorkload(Workload):
    """Reproduces the paper's Bug 3 scenario: transactions lock a record
    with SELECT ... FOR UPDATE (here reached "through a join", i.e. not the
    key being modified), hold it while updating a companion record, and
    commit.  With the ``forget_write_lock_prob`` fault, the engine
    sometimes forgets the FOR UPDATE lock and concurrent writers violate
    mutual exclusion."""

    def __init__(self, records: int = 4, seed: int = 0):
        self.records = max(1, records)
        self.name = f"select-for-update(records={self.records})"

    def populate(self) -> Dict[Key, object]:
        initial: Dict[Key, object] = {}
        for i in range(self.records):
            initial[("parent", i)] = 0
            initial[("child", i)] = 0
        return initial

    def transaction(self, rng: random.Random) -> Program:
        record = rng.randrange(self.records)
        parent, child = ("parent", record), ("child", record)
        fresh = rng.randrange(1_000_000)
        locker = rng.random() < 0.5

        def lock_and_derive():
            # Lock the parent through the join path, then derive the child
            # from it; the FOR UPDATE lock must keep the parent stable.
            values = yield ReadOp([parent], for_update=True)
            yield WriteOp({child: values[parent]["v"] + 1})

        def update_parent():
            yield WriteOp({parent: fresh})

        return lock_and_derive() if locker else update_parent()


class NoopUpdateWorkload(Workload):
    """Reproduces the paper's Bug 1 scenario: transactions first issue an
    UPDATE that does not change the record (same value), then a second
    transaction updates the same record concurrently.  With the
    ``skip_lock_on_noop_update`` fault, the first update acquires no lock
    and a dirty write slips through."""

    def __init__(self, records: int = 4, seed: int = 0):
        self.records = max(1, records)
        self.name = f"noop-update(records={self.records})"

    def populate(self) -> Dict[Key, object]:
        return {("rec", i): 0 for i in range(self.records)}

    def transaction(self, rng: random.Random) -> Program:
        key = ("rec", rng.randrange(self.records))
        fresh = rng.randrange(1_000_000)
        noop = rng.random() < 0.5

        def program():
            values = yield ReadOp([key])
            current = values[key]["v"]
            # Half the transactions re-write the current value (a no-op
            # update, Bug 1's trigger); the rest write a fresh value.
            yield WriteOp({key: current if noop else fresh})

        return program()
