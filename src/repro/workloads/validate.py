"""Workload-level consistency validators.

Benchmarks come with their own *semantic* invariants -- TPC-C's consistency
conditions, SmallBank's money conservation -- that hold on any serializable
execution.  Validating them against the final database state is an
independent, application-level cross-check of both the engine and the
verifier: a run that verifies clean at serializable must also satisfy them
(the reverse is not true, which is exactly why black-box IL verification is
needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..dbsim.engine import SimulatedDBMS
from .smallbank import CHECKING, SAVINGS
from .tpcc import TpcC


@dataclass
class ConsistencyReport:
    """Outcome of a semantic validation pass."""

    checks: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, condition: bool, message: str) -> None:
        self.checks += 1
        if not condition:
            self.failures.append(message)


def final_images(db: SimulatedDBMS) -> Dict:
    """Final committed record images of the engine's store."""
    images = {}
    for key in db.store.keys():
        latest = db.store.latest(key)
        if latest is not None:
            images[key] = dict(latest.image)
    return images


# ---------------------------------------------------------------------------
# SmallBank
# ---------------------------------------------------------------------------


def validate_smallbank(db: SimulatedDBMS, workload) -> ConsistencyReport:
    """SmallBank invariants on the final state.

    * every account balance is an integer (no torn updates);
    * Amalgamate leaves zeroed sources, so no balance is negative beyond
      the bounded overdrafts WriteCheck can produce -- checked loosely as
      "total money only moved or entered via deposits", i.e. the final
      total equals the initial total plus net deposits/withdrawals recorded
      in committed history.  Without replaying history the strongest
      state-only check is integrality plus per-account sanity, which is
      what real SmallBank harnesses assert.
    """
    report = ConsistencyReport()
    images = final_images(db)
    for key, image in images.items():
        if not isinstance(key, tuple) or key[0] not in (CHECKING, SAVINGS):
            continue
        balance = image.get("v")
        report.record(
            isinstance(balance, int),
            f"non-integer balance {balance!r} at {key!r}",
        )
    return report


# ---------------------------------------------------------------------------
# TPC-C (consistency conditions 1-3, adapted to the modelled columns)
# ---------------------------------------------------------------------------


def validate_tpcc(db: SimulatedDBMS, workload: TpcC) -> ConsistencyReport:
    """TPC-C consistency conditions on the final state.

    1. ``W_YTD == sum(D_YTD)`` per warehouse (payments fan out once);
    2. every district's ``next_o_id`` equals the number of orders inserted
       for it (order ids are dense from 0);
    3. every order's line count matches its inserted order lines;
    4. ``next_d_o_id <= next_o_id`` (deliveries never outrun orders).
    """
    report = ConsistencyReport()
    images = final_images(db)
    warehouses: Dict[int, Dict] = {}
    districts: Dict[tuple, Dict] = {}
    orders: Dict[tuple, Dict] = {}
    order_lines: Dict[tuple, Dict] = {}
    for key, image in images.items():
        if not isinstance(key, tuple):
            continue
        if key[0] == "warehouse":
            warehouses[key[1]] = image
        elif key[0] == "district":
            districts[key[1:]] = image
        elif key[0] == "order":
            orders[key[1:]] = image
        elif key[0] == "order_line":
            order_lines[key[1:]] = image

    # Condition 1: warehouse ytd equals the sum of its districts' ytd.
    for w, w_image in warehouses.items():
        district_total = sum(
            image.get("ytd", 0)
            for (dw, _d), image in districts.items()
            if dw == w
        )
        report.record(
            w_image.get("ytd", 0) == district_total,
            f"warehouse {w}: W_YTD={w_image.get('ytd')} != "
            f"sum(D_YTD)={district_total}",
        )

    # Condition 2: next_o_id equals the dense count of inserted orders.
    for (w, d), d_image in districts.items():
        order_ids = sorted(o for (ow, od, o) in orders if ow == w and od == d)
        expected = d_image.get("next_o_id", 0)
        report.record(
            len(order_ids) == expected,
            f"district ({w},{d}): next_o_id={expected} but "
            f"{len(order_ids)} orders exist",
        )
        if order_ids:
            report.record(
                order_ids == list(range(order_ids[0], order_ids[-1] + 1))
                and order_ids[0] == 0,
                f"district ({w},{d}): order ids not dense: {order_ids[:5]}...",
            )

    # Condition 3: per-order line counts.
    for (w, d, o), o_image in orders.items():
        lines = [ln for (lw, ld, lo, ln) in order_lines if (lw, ld, lo) == (w, d, o)]
        report.record(
            len(lines) == o_image.get("ol_cnt"),
            f"order ({w},{d},{o}): ol_cnt={o_image.get('ol_cnt')} but "
            f"{len(lines)} lines exist",
        )

    # Condition 4: deliveries never outrun orders.
    for (w, d), d_image in districts.items():
        report.record(
            d_image.get("next_d_o_id", 0) <= d_image.get("next_o_id", 0),
            f"district ({w},{d}): delivered past the newest order",
        )
    return report
