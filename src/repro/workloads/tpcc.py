"""TPC-C: the order-entry benchmark (scaled-down, key/column level).

The five canonical transaction profiles -- NewOrder, Payment, OrderStatus,
Delivery, StockLevel -- implemented against key/column records, which is
the level of detail the paper's tracer records (logical read/write sets,
not SQL).  Two TPC-C properties matter for the experiments and are
preserved faithfully:

* transactions read and write *subsets of columns* of shared records
  (e.g. NewOrder bumps ``district.next_o_id`` while Payment bumps
  ``district.ytd``), which is exactly why Fig. 13b shows a residue of
  dependencies Leopard cannot deduce;
* NewOrder *inserts* rows (orders, order lines), so the verifier's version
  chains are created mid-run.

Cardinalities are scaled down from the TPC defaults (3000 customers, 100k
items) to laptop-scale, controlled by ``scale_factor`` like the paper's
setting ``scale factor = 1``.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..dbsim.session import AbortOp, Program, ReadOp, WriteOp
from .base import Key, Workload, weighted_choice


def warehouse_key(w: int) -> Tuple[str, int]:
    return ("warehouse", w)


def district_key(w: int, d: int) -> Tuple[str, int, int]:
    return ("district", w, d)


def customer_key(w: int, d: int, c: int) -> Tuple[str, int, int, int]:
    return ("customer", w, d, c)


def item_key(i: int) -> Tuple[str, int]:
    return ("item", i)


def stock_key(w: int, i: int) -> Tuple[str, int, int]:
    return ("stock", w, i)


def order_key(w: int, d: int, o: int) -> Tuple[str, int, int, int]:
    return ("order", w, d, o)


def order_line_key(w: int, d: int, o: int, line: int) -> Tuple[str, int, int, int, int]:
    return ("order_line", w, d, o, line)


class TpcC(Workload):
    """The standard five-transaction TPC-C mix."""

    MIX = (
        ("new_order", 45),
        ("payment", 43),
        ("order_status", 4),
        ("delivery", 4),
        ("stock_level", 4),
    )

    DISTRICTS_PER_WAREHOUSE = 10
    CUSTOMERS_PER_DISTRICT = 30
    ITEMS = 100
    INITIAL_STOCK = 1000

    def __init__(self, scale_factor: float = 1.0, seed: int = 0):
        self.warehouses = max(1, int(scale_factor))
        self.name = f"tpcc(sf={scale_factor})"

    # -- population -----------------------------------------------------------------

    def populate(self) -> Dict[Key, object]:
        initial: Dict[Key, object] = {}
        for i in range(self.ITEMS):
            initial[item_key(i)] = {"price": 100 + (i % 900)}
        for w in range(self.warehouses):
            initial[warehouse_key(w)] = {"ytd": 0}
            for i in range(self.ITEMS):
                initial[stock_key(w, i)] = {
                    "quantity": self.INITIAL_STOCK,
                    "ytd": 0,
                    "order_cnt": 0,
                }
            for d in range(self.DISTRICTS_PER_WAREHOUSE):
                initial[district_key(w, d)] = {
                    "ytd": 0,
                    "next_o_id": 0,
                    "next_d_o_id": 0,
                }
                for c in range(self.CUSTOMERS_PER_DISTRICT):
                    initial[customer_key(w, d, c)] = {
                        "balance": 0,
                        "ytd_payment": 0,
                        "payment_cnt": 0,
                        "delivery_cnt": 0,
                    }
        return initial

    # -- random identities ---------------------------------------------------------------

    def _wdc(self, rng: random.Random) -> Tuple[int, int, int]:
        w = rng.randrange(self.warehouses)
        d = rng.randrange(self.DISTRICTS_PER_WAREHOUSE)
        c = rng.randrange(self.CUSTOMERS_PER_DISTRICT)
        return w, d, c

    # -- transaction dispatch ---------------------------------------------------------------

    def transaction(self, rng: random.Random) -> Program:
        kind = weighted_choice(rng, self.MIX)
        return getattr(self, f"_{kind}")(rng)

    # -- NewOrder -------------------------------------------------------------------------------

    def _new_order(self, rng: random.Random) -> Program:
        w, d, c = self._wdc(rng)
        n_lines = rng.randrange(5, 16)
        items = rng.sample(range(self.ITEMS), min(n_lines, self.ITEMS))
        quantities = [rng.randrange(1, 11) for _ in items]
        dk = district_key(w, d)

        def program():
            district = yield ReadOp([dk], columns=["next_o_id"])
            o_id = district[dk]["next_o_id"]
            yield WriteOp({dk: {"next_o_id": o_id + 1}})
            prices = yield ReadOp([item_key(i) for i in items], columns=["price"])
            stock_keys = [stock_key(w, i) for i in items]
            stocks = yield ReadOp(
                stock_keys, columns=["quantity", "ytd", "order_cnt"]
            )
            stock_writes = {}
            line_writes = {}
            for line, (i, qty) in enumerate(zip(items, quantities)):
                sk = stock_key(w, i)
                quantity = stocks[sk]["quantity"]
                new_quantity = (
                    quantity - qty if quantity - qty >= 10 else quantity - qty + 91
                )
                stock_writes[sk] = {
                    "quantity": new_quantity,
                    "ytd": stocks[sk]["ytd"] + qty,
                    "order_cnt": stocks[sk]["order_cnt"] + 1,
                }
                amount = qty * prices[item_key(i)]["price"]
                line_writes[order_line_key(w, d, o_id, line)] = {
                    "i_id": i,
                    "qty": qty,
                    "amount": amount,
                    "delivery_d": None,
                }
            yield WriteOp(stock_writes)
            order_writes = {
                order_key(w, d, o_id): {
                    "c_id": c,
                    "carrier_id": None,
                    "ol_cnt": len(items),
                }
            }
            order_writes.update(line_writes)
            yield WriteOp(order_writes)

        return program()

    # -- Payment -------------------------------------------------------------------------------------

    def _payment(self, rng: random.Random) -> Program:
        w, d, c = self._wdc(rng)
        amount = rng.randrange(1, 5000)
        wk, dk, ck = warehouse_key(w), district_key(w, d), customer_key(w, d, c)

        def program():
            warehouse = yield ReadOp([wk], columns=["ytd"])
            yield WriteOp({wk: {"ytd": warehouse[wk]["ytd"] + amount}})
            district = yield ReadOp([dk], columns=["ytd"])
            yield WriteOp({dk: {"ytd": district[dk]["ytd"] + amount}})
            customer = yield ReadOp(
                [ck], columns=["balance", "ytd_payment", "payment_cnt"]
            )
            yield WriteOp(
                {
                    ck: {
                        "balance": customer[ck]["balance"] - amount,
                        "ytd_payment": customer[ck]["ytd_payment"] + amount,
                        "payment_cnt": customer[ck]["payment_cnt"] + 1,
                    }
                }
            )

        return program()

    # -- OrderStatus -------------------------------------------------------------------------------------

    def _order_status(self, rng: random.Random) -> Program:
        w, d, c = self._wdc(rng)
        dk, ck = district_key(w, d), customer_key(w, d, c)

        def program():
            yield ReadOp([ck], columns=["balance"])
            district = yield ReadOp([dk], columns=["next_o_id"])
            last_o = district[dk]["next_o_id"] - 1
            if last_o < 0:
                return  # no orders yet in this district
            ok = order_key(w, d, last_o)
            order = yield ReadOp([ok], columns=["c_id", "ol_cnt", "carrier_id"])
            if not order[ok]:
                yield AbortOp()
                return
            ol_cnt = order[ok]["ol_cnt"]
            yield ReadOp(
                [order_line_key(w, d, last_o, line) for line in range(ol_cnt)],
                columns=["i_id", "qty", "amount"],
            )

        return program()

    # -- Delivery --------------------------------------------------------------------------------------------

    def _delivery(self, rng: random.Random) -> Program:
        w = rng.randrange(self.warehouses)
        d = rng.randrange(self.DISTRICTS_PER_WAREHOUSE)
        dk = district_key(w, d)
        carrier = rng.randrange(1, 11)

        def program():
            district = yield ReadOp([dk], columns=["next_o_id", "next_d_o_id"])
            o_id = district[dk]["next_d_o_id"]
            if o_id >= district[dk]["next_o_id"]:
                return  # nothing to deliver
            yield WriteOp({dk: {"next_d_o_id": o_id + 1}})
            ok = order_key(w, d, o_id)
            order = yield ReadOp([ok], columns=["c_id", "ol_cnt"])
            if not order[ok]:
                yield AbortOp()
                return
            c = order[ok]["c_id"]
            ol_cnt = order[ok]["ol_cnt"]
            line_keys = [order_line_key(w, d, o_id, line) for line in range(ol_cnt)]
            lines = yield ReadOp(line_keys, columns=["amount"])
            total = sum(lines[lk]["amount"] for lk in line_keys if lines[lk])
            yield WriteOp({ok: {"carrier_id": carrier}})
            ck = customer_key(w, d, c)
            customer = yield ReadOp([ck], columns=["balance", "delivery_cnt"])
            yield WriteOp(
                {
                    ck: {
                        "balance": customer[ck]["balance"] + total,
                        "delivery_cnt": customer[ck]["delivery_cnt"] + 1,
                    }
                }
            )

        return program()

    # -- StockLevel --------------------------------------------------------------------------------------------

    def _stock_level(self, rng: random.Random) -> Program:
        w = rng.randrange(self.warehouses)
        d = rng.randrange(self.DISTRICTS_PER_WAREHOUSE)
        dk = district_key(w, d)
        probe = rng.sample(range(self.ITEMS), min(20, self.ITEMS))

        def program():
            yield ReadOp([dk], columns=["next_o_id"])
            yield ReadOp([stock_key(w, i) for i in probe], columns=["quantity"])

        return program()
