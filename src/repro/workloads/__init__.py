"""Benchmark workloads of the paper's evaluation (Section VI)."""

from .anomaly import (
    LostUpdateWorkload,
    NoopUpdateWorkload,
    ReadOnlyAuditWorkload,
    SelectForUpdateWorkload,
    WriteSkewWorkload,
)
from .base import UniqueValues, Workload, ZipfGenerator, weighted_choice
from .blindw import BlindW
from .insertscan import InsertScanWorkload
from .listappend import ListAppendWorkload
from .runner import RunResult, WorkloadRunner, run_workload
from .smallbank import SmallBank, checking_key, savings_key
from .tpcc import TpcC
from .validate import ConsistencyReport, validate_smallbank, validate_tpcc
from .ycsb import YcsbA

__all__ = [
    "LostUpdateWorkload",
    "NoopUpdateWorkload",
    "ReadOnlyAuditWorkload",
    "SelectForUpdateWorkload",
    "WriteSkewWorkload",
    "UniqueValues",
    "Workload",
    "ZipfGenerator",
    "weighted_choice",
    "BlindW",
    "InsertScanWorkload",
    "ListAppendWorkload",
    "RunResult",
    "WorkloadRunner",
    "run_workload",
    "SmallBank",
    "checking_key",
    "savings_key",
    "TpcC",
    "ConsistencyReport",
    "validate_smallbank",
    "validate_tpcc",
    "YcsbA",
]
