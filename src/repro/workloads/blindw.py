"""BlindW: the key-value micro-workload designed by Cobra.

The paper uses three variants over a 2K-key table with 140-byte string
values and 8 operations per transaction, keys chosen uniformly
(Section VI, "Workload"):

* **BlindW-W** -- 100% blind-write transactions with uniquely written
  values (the hard case for tracking ww dependencies, Fig. 13c);
* **BlindW-RW** -- an even mix of item-read and blind-write transactions
  (exercises all three dependency types, Figs. 13d and 14);
* **BlindW-RW+** -- half of the item-reads replaced by 10-key range reads
  (the dependency-heavy stress case of Figs. 10-11).
"""

from __future__ import annotations

import random
from typing import Dict

from ..dbsim.session import Program, ReadOp, WriteOp
from .base import Key, UniqueValues, Workload


class BlindW(Workload):
    """The three BlindW variants behind one parameterised class."""

    RANGE_SPAN = 10

    def __init__(
        self,
        keys: int = 2048,
        ops_per_txn: int = 8,
        write_txn_ratio: float = 1.0,
        range_read_ratio: float = 0.0,
        pad_values: bool = False,
        seed: int = 0,
    ):
        if not 0.0 <= write_txn_ratio <= 1.0:
            raise ValueError("write_txn_ratio must be a probability")
        if not 0.0 <= range_read_ratio <= 1.0:
            raise ValueError("range_read_ratio must be a probability")
        self.keys = keys
        self.ops_per_txn = ops_per_txn
        self.write_txn_ratio = write_txn_ratio
        self.range_read_ratio = range_read_ratio
        self._values = UniqueValues(prefix="b", pad=140 if pad_values else 0)
        variant = (
            "w"
            if write_txn_ratio == 1.0
            else ("rw+" if range_read_ratio > 0 else "rw")
        )
        self.name = f"blindw-{variant}"

    # -- canonical variants ----------------------------------------------------

    @classmethod
    def w(cls, keys: int = 2048, **kwargs) -> "BlindW":
        """100% blind writes."""
        return cls(keys=keys, write_txn_ratio=1.0, range_read_ratio=0.0, **kwargs)

    @classmethod
    def rw(cls, keys: int = 2048, **kwargs) -> "BlindW":
        """Even mix of item-read and blind-write transactions."""
        return cls(keys=keys, write_txn_ratio=0.5, range_read_ratio=0.0, **kwargs)

    @classmethod
    def rw_plus(cls, keys: int = 2048, **kwargs) -> "BlindW":
        """BlindW-RW with half the item-reads turned into range reads."""
        return cls(keys=keys, write_txn_ratio=0.5, range_read_ratio=0.5, **kwargs)

    # -- workload interface ---------------------------------------------------------

    def populate(self) -> Dict[Key, object]:
        return {self._key(i): "init" for i in range(self.keys)}

    @staticmethod
    def _key(rank: int) -> str:
        return f"kv{rank}"

    def transaction(self, rng: random.Random) -> Program:
        is_writer = rng.random() < self.write_txn_ratio
        if is_writer:
            # Blind writes: a write not preceded by a read to the same key.
            targets = rng.sample(range(self.keys), self.ops_per_txn)
            writes = [
                {self._key(rank): self._values.next()} for rank in targets
            ]

            def write_program():
                for batch in writes:
                    yield WriteOp(batch)

            return write_program()
        reads = []
        for _ in range(self.ops_per_txn):
            if rng.random() < self.range_read_ratio:
                start = rng.randrange(self.keys)
                span = [
                    self._key((start + offset) % self.keys)
                    for offset in range(self.RANGE_SPAN)
                ]
                reads.append(span)
            else:
                reads.append([self._key(rng.randrange(self.keys))])

        def read_program():
            for span in reads:
                yield ReadOp(span)

        return read_program()
