"""SmallBank: the snapshot-isolation anomaly benchmark (Alomari et al.).

Six transaction types over per-customer checking and savings accounts.
The paper uses SmallBank for the Fig. 10 pipeline study, the Fig. 12
throughput comparison and the Fig. 13 deduction study -- noting that
``Amalgamate`` always writes the same value (zero), producing duplicate
versions that cannot be distinguished in a candidate version set.  That
behaviour is preserved here on purpose.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..dbsim.session import AbortOp, Program, ReadOp, WriteOp
from .base import Key, Workload, weighted_choice

CHECKING = "checking"
SAVINGS = "savings"


def checking_key(customer: int) -> Tuple[str, int]:
    return (CHECKING, customer)


def savings_key(customer: int) -> Tuple[str, int]:
    return (SAVINGS, customer)


class SmallBank(Workload):
    """The standard six-transaction SmallBank mix.

    ``scale_factor`` follows the paper's convention: accounts scale
    linearly, and a *smaller* database means higher contention (Fig. 12
    deliberately uses small scale factors).
    """

    ACCOUNTS_PER_SCALE = 1000
    INITIAL_BALANCE = 10_000

    #: (transaction builder name, weight) -- the canonical uniform mix.
    MIX = (
        ("balance", 15),
        ("deposit_checking", 15),
        ("transact_savings", 15),
        ("amalgamate", 15),
        ("write_check", 25),
        ("send_payment", 15),
    )

    def __init__(self, scale_factor: float = 1.0, hotspot: float = 0.0, seed: int = 0):
        self.accounts = max(4, int(self.ACCOUNTS_PER_SCALE * scale_factor))
        #: fraction of accesses hitting the first 100 accounts (contention knob).
        self.hotspot = hotspot
        self.name = f"smallbank(sf={scale_factor})"

    def populate(self) -> Dict[Key, object]:
        initial: Dict[Key, object] = {}
        for customer in range(self.accounts):
            initial[checking_key(customer)] = self.INITIAL_BALANCE
            initial[savings_key(customer)] = self.INITIAL_BALANCE
        return initial

    # -- customers ---------------------------------------------------------------

    def _customer(self, rng: random.Random) -> int:
        if self.hotspot and rng.random() < self.hotspot:
            return rng.randrange(min(100, self.accounts))
        return rng.randrange(self.accounts)

    def _two_customers(self, rng: random.Random) -> Tuple[int, int]:
        first = self._customer(rng)
        second = self._customer(rng)
        while second == first:
            second = self._customer(rng)
        return first, second

    # -- transaction programs ---------------------------------------------------------

    def transaction(self, rng: random.Random) -> Program:
        kind = weighted_choice(rng, self.MIX)
        builder = getattr(self, f"_{kind}")
        return builder(rng)

    def _balance(self, rng: random.Random) -> Program:
        customer = self._customer(rng)

        def program():
            yield ReadOp([checking_key(customer), savings_key(customer)])

        return program()

    def _deposit_checking(self, rng: random.Random) -> Program:
        customer = self._customer(rng)
        amount = rng.randrange(1, 100)

        def program():
            values = yield ReadOp([checking_key(customer)])
            balance = values[checking_key(customer)]["v"]
            yield WriteOp({checking_key(customer): balance + amount})

        return program()

    def _transact_savings(self, rng: random.Random) -> Program:
        customer = self._customer(rng)
        amount = rng.randrange(1, 100)

        def program():
            values = yield ReadOp([savings_key(customer)])
            balance = values[savings_key(customer)]["v"]
            if balance < amount:
                yield AbortOp()
                return
            yield WriteOp({savings_key(customer): balance - amount})

        return program()

    def _amalgamate(self, rng: random.Random) -> Program:
        src, dst = self._two_customers(rng)

        def program():
            values = yield ReadOp([checking_key(src), savings_key(src)])
            total = (
                values[checking_key(src)]["v"] + values[savings_key(src)]["v"]
            )
            # The signature SmallBank quirk: both source accounts are zeroed,
            # writing the same value every time (duplicate versions).
            yield WriteOp({checking_key(src): 0, savings_key(src): 0})
            dest = yield ReadOp([checking_key(dst)])
            yield WriteOp({checking_key(dst): dest[checking_key(dst)]["v"] + total})

        return program()

    def _write_check(self, rng: random.Random) -> Program:
        customer = self._customer(rng)
        amount = rng.randrange(1, 100)

        def program():
            values = yield ReadOp([checking_key(customer), savings_key(customer)])
            total = (
                values[checking_key(customer)]["v"]
                + values[savings_key(customer)]["v"]
            )
            penalty = 1 if total < amount else 0
            balance = values[checking_key(customer)]["v"]
            yield WriteOp({checking_key(customer): balance - amount - penalty})

        return program()

    def _send_payment(self, rng: random.Random) -> Program:
        src, dst = self._two_customers(rng)
        amount = rng.randrange(1, 100)

        def program():
            values = yield ReadOp([checking_key(src)])
            balance = values[checking_key(src)]["v"]
            if balance < amount:
                yield AbortOp()
                return
            yield WriteOp({checking_key(src): balance - amount})
            dest = yield ReadOp([checking_key(dst)])
            yield WriteOp({checking_key(dst): dest[checking_key(dst)]["v"] + amount})

        return program()
