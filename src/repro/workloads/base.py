"""Workload interfaces and key-choice distributions.

A workload supplies two things: the initial database population and a
stream of *transaction programs* (generators of :class:`ReadOp` /
:class:`WriteOp`, see :mod:`repro.dbsim.session`).  The runner drives the
programs against the simulated engine; the workload never sees the engine,
mirroring the paper's requirement that tracing not change application
logic.
"""

from __future__ import annotations

import abc
import itertools
import random
from typing import Dict, Hashable, List, Sequence

from ..dbsim.session import Program

Key = Hashable


class ZipfGenerator:
    """Zipfian key sampler (the YCSB 'scrambled-less' variant).

    Implements the rejection-free method of Gray et al. used by YCSB: draws
    ranks with probability proportional to ``1 / rank**theta``.  ``theta``
    close to 0 is uniform; the YCSB default hotspot skew is 0.99.
    """

    def __init__(self, n: int, theta: float, rng: random.Random):
        if n < 1:
            raise ValueError("n must be positive")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self._n = n
        self._theta = theta
        self._rng = rng
        if theta == 0.0:
            self._zetan = float(n)
        else:
            self._zetan = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        self._alpha = 1.0 / (1.0 - theta) if theta else 1.0
        zeta2 = 1.0 + (0.5 ** theta if theta else 1.0)
        # For n <= 2 the closed form degenerates (zeta(2) == zeta(n));
        # sample those tiny keyspaces by direct cumulative weights.
        if theta and n > 2:
            self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
                1.0 - zeta2 / self._zetan
            )
        else:
            self._eta = 0.0

    def sample(self) -> int:
        """Return a rank in ``[0, n)``; rank 0 is the hottest key."""
        if self._theta == 0.0:
            return self._rng.randrange(self._n)
        if self._n <= 2:
            point = self._rng.random() * self._zetan
            return 0 if point < 1.0 or self._n == 1 else 1
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self._theta:
            return 1
        return int(
            self._n * (self._eta * u - self._eta + 1.0) ** self._alpha
        ) % self._n

    def sample_distinct(self, count: int) -> List[int]:
        """Draw ``count`` distinct ranks (count must be << n)."""
        if count > self._n:
            raise ValueError("cannot draw more distinct keys than exist")
        chosen: List[int] = []
        seen = set()
        while len(chosen) < count:
            rank = self.sample()
            if rank not in seen:
                seen.add(rank)
                chosen.append(rank)
        return chosen


class Workload(abc.ABC):
    """Base class for all benchmark workloads."""

    #: human-readable workload name used by the bench harness.
    name: str = "workload"

    @abc.abstractmethod
    def populate(self) -> Dict[Key, object]:
        """Initial database contents (key -> scalar or column mapping)."""

    @abc.abstractmethod
    def transaction(self, rng: random.Random) -> Program:
        """Build one transaction program."""

    def fresh_value(self) -> object:  # pragma: no cover - default hook
        raise NotImplementedError


class UniqueValues:
    """Monotone unique value generator shared by the key-value workloads.

    BlindW pads values to 140 characters (the paper's fixed-length string
    payload); enabling ``pad`` reproduces that, while the compact form keeps
    tests fast.
    """

    def __init__(self, prefix: str = "v", pad: int = 0):
        self._counter = itertools.count()
        self._prefix = prefix
        self._pad = pad

    def next(self) -> str:
        raw = f"{self._prefix}{next(self._counter)}"
        if self._pad and len(raw) < self._pad:
            raw = raw + "." * (self._pad - len(raw))
        return raw


def weighted_choice(
    rng: random.Random, weighted: Sequence[tuple]
) -> object:
    """Pick ``item`` from ``[(item, weight), ...]``."""
    total = sum(weight for _, weight in weighted)
    point = rng.random() * total
    acc = 0.0
    for item, weight in weighted:
        acc += weight
        if point <= acc:
            return item
    return weighted[-1][0]
