"""YCSB-A: the update-heavy cloud-serving workload (Fig. 4).

The paper runs YCSB-A on PostgreSQL over a single 1M-record table, varying
the Zipf skew ``theta``, the thread scale and the read/write ratio, to
measure the ratio of conflicting operations whose trace intervals overlap.
Our default record count is scaled down (the shape of the overlap ratio
depends on contention, which the ``theta``/thread knobs control directly).
"""

from __future__ import annotations

import random
from typing import Dict

from ..dbsim.session import Program, ReadOp, WriteOp
from .base import Key, UniqueValues, Workload, ZipfGenerator


class YcsbA(Workload):
    """Read/update mix over a single keyspace with Zipfian access.

    The canonical YCSB-A 50/50 mix; ``read_ratio`` and ``rmw_ratio``
    generalise it to the other core YCSB workloads (see the factory
    classmethods): B (95/5), C (read-only) and F (read-modify-write).
    """

    def __init__(
        self,
        records: int = 10_000,
        theta: float = 0.5,
        read_ratio: float = 0.5,
        rmw_ratio: float = 0.0,
        ops_per_txn: int = 4,
        seed: int = 0,
        variant: str = "a",
    ):
        if not 0.0 <= read_ratio <= 1.0:
            raise ValueError("read_ratio must be a probability")
        if not 0.0 <= rmw_ratio <= 1.0 or read_ratio + rmw_ratio > 1.0:
            raise ValueError("read_ratio + rmw_ratio must stay within [0, 1]")
        if ops_per_txn < 1:
            raise ValueError("ops_per_txn must be positive")
        self.records = records
        self.theta = theta
        self.read_ratio = read_ratio
        self.rmw_ratio = rmw_ratio
        self.ops_per_txn = ops_per_txn
        self.name = f"ycsb-{variant}(theta={theta},rw={read_ratio})"
        self._values = UniqueValues(prefix="y")
        self._zipf_seed = seed

    # -- the core YCSB workload family --------------------------------------

    @classmethod
    def b(cls, records: int = 10_000, theta: float = 0.5, **kwargs) -> "YcsbA":
        """YCSB-B: 95% reads, 5% updates."""
        return cls(records=records, theta=theta, read_ratio=0.95, variant="b", **kwargs)

    @classmethod
    def c(cls, records: int = 10_000, theta: float = 0.5, **kwargs) -> "YcsbA":
        """YCSB-C: read only."""
        return cls(records=records, theta=theta, read_ratio=1.0, variant="c", **kwargs)

    @classmethod
    def f(cls, records: int = 10_000, theta: float = 0.5, **kwargs) -> "YcsbA":
        """YCSB-F: 50% reads, 50% read-modify-writes."""
        return cls(
            records=records,
            theta=theta,
            read_ratio=0.5,
            rmw_ratio=0.5,
            variant="f",
            **kwargs,
        )

    def populate(self) -> Dict[Key, object]:
        return {self._key(i): "init" for i in range(self.records)}

    @staticmethod
    def _key(rank: int) -> str:
        return f"user{rank}"

    def transaction(self, rng: random.Random) -> Program:
        zipf = ZipfGenerator(self.records, self.theta, rng)
        ops = []
        for _ in range(self.ops_per_txn):
            key = self._key(zipf.sample())
            point = rng.random()
            if point < self.read_ratio:
                ops.append(("read", key))
            elif point < self.read_ratio + self.rmw_ratio:
                ops.append(("rmw", key))
            else:
                ops.append(("update", key))
        values = self._values

        def program():
            for kind, key in ops:
                if kind == "read":
                    yield ReadOp([key])
                elif kind == "rmw":
                    yield ReadOp([key])
                    yield WriteOp({key: values.next()})
                else:
                    # YCSB updates are blind field rewrites.
                    yield WriteOp({key: values.next()})

        return program()
