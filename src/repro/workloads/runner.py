"""Workload runner: drives N simulated clients against the engine.

This is the experiment half of the paper's setup: the runner populates the
database, spawns one :class:`ClientSession` per simulated thread, issues
transaction programs with think time until the target transaction count (or
simulated duration) is reached, and returns the per-client trace streams --
exactly what the Tracer's local buffers ingest.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..core.trace import Trace
from ..dbsim.clock import make_client_clocks
from ..dbsim.engine import EngineStats, SimulatedDBMS
from ..dbsim.session import ClientSession
from .base import Workload


@dataclass
class RunResult:
    """Everything a verification experiment needs from a workload run."""

    workload: str
    client_streams: Dict[int, List[Trace]]
    initial_db: Mapping[object, Mapping[str, object]]
    committed: int
    aborted: int
    sim_duration: float
    wall_time: float
    engine_stats: EngineStats

    @property
    def issued(self) -> int:
        return self.committed + self.aborted

    @property
    def trace_count(self) -> int:
        return sum(len(stream) for stream in self.client_streams.values())

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated second (the DBMS throughput
        axis of Fig. 12)."""
        if self.sim_duration <= 0:
            return 0.0
        return self.committed / self.sim_duration

    def all_traces_sorted(self) -> List[Trace]:
        merged: List[Trace] = []
        for stream in self.client_streams.values():
            merged.extend(stream)
        merged.sort(key=Trace.sort_key)
        return merged

    def pipeline_batches(self, batch_size: int = 64, max_batch: int = 2048):
        """Pipeline-sorted dispatch batches over the run's client streams,
        ready for ``Verifier.process_batch`` / ``ParallelVerifier.
        process_batch`` -- the batched ingestion spine's native feed."""
        from ..core.pipeline import pipeline_from_client_streams

        return pipeline_from_client_streams(
            self.client_streams, batch_size=batch_size
        ).iter_batches(max_batch=max_batch)


class WorkloadRunner:
    """Runs a workload on a simulated DBMS and collects traces.

    Parameters
    ----------
    db:
        The engine to run against (its spec decides the isolation level).
    workload:
        Any :class:`~repro.workloads.base.Workload`.
    clients:
        Thread scale: number of concurrent client sessions.
    think_mean:
        Mean think time between transactions of one client (seconds).
    clock_skew / clock_jitter:
        Client clock imperfection passed to
        :func:`~repro.dbsim.clock.make_client_clocks`.
    """

    def __init__(
        self,
        db: SimulatedDBMS,
        workload: Workload,
        clients: int = 8,
        think_mean: float = 5e-4,
        clock_skew: float = 0.0,
        clock_jitter: float = 0.0,
        seed: int = 0,
    ):
        if clients < 1:
            raise ValueError("need at least one client")
        self.db = db
        self.workload = workload
        self.clients = clients
        self.think_mean = think_mean
        self._seed = seed
        clocks = make_client_clocks(
            clients, max_offset=clock_skew, jitter=clock_jitter, seed=seed
        )
        self._sessions = [
            ClientSession(client_id, db, clock=clock)
            for client_id, clock in enumerate(clocks)
        ]
        self._rngs = [
            random.Random(f"{seed}/{client_id}") for client_id in range(clients)
        ]

    def run(
        self,
        txns: Optional[int] = 2000,
        duration: Optional[float] = None,
    ) -> RunResult:
        """Run until ``txns`` transactions were issued (committed or
        aborted) or ``duration`` simulated seconds elapsed, whichever comes
        first (pass ``txns=None`` for duration-only runs)."""
        if txns is None and duration is None:
            raise ValueError("need a transaction target or a duration")
        initial_db = self.db.load(self.workload.populate())
        issued = {"count": 0}
        loop = self.db.loop
        start_time = loop.now

        def want_more() -> bool:
            if txns is not None and issued["count"] >= txns:
                return False
            if duration is not None and loop.now - start_time >= duration:
                return False
            return True

        def launch(session: ClientSession) -> None:
            if not want_more():
                return
            issued["count"] += 1
            rng = self._rngs[session.client_id]
            program = self.workload.transaction(rng)
            session.run_program(program, on_done)

        def on_done(session: ClientSession, committed: bool) -> None:
            if want_more():
                rng = self._rngs[session.client_id]
                think = max(0.0, rng.expovariate(1.0 / self.think_mean)) if self.think_mean else 0.0
                loop.schedule_after(think, lambda: launch(session))

        wall_start = time.perf_counter()
        for session in self._sessions:
            rng = self._rngs[session.client_id]
            loop.schedule_after(rng.random() * 1e-3, lambda s=session: launch(s))
        loop.run()
        wall_time = time.perf_counter() - wall_start
        committed = sum(s.committed for s in self._sessions)
        aborted = sum(s.aborted for s in self._sessions)
        return RunResult(
            workload=self.workload.name,
            client_streams={s.client_id: s.traces for s in self._sessions},
            initial_db=initial_db,
            committed=committed,
            aborted=aborted,
            sim_duration=loop.now - start_time,
            wall_time=wall_time,
            engine_stats=self.db.stats,
        )


def run_workload(
    workload: Workload,
    spec,
    clients: int = 8,
    txns: int = 2000,
    seed: int = 0,
    faults=None,
    duration: Optional[float] = None,
    **runner_kwargs,
) -> RunResult:
    """Convenience wrapper: build an engine, run a workload, return traces."""
    from ..dbsim.engine import SimulatedDBMS
    from ..dbsim.faults import CLEAN

    db = SimulatedDBMS(spec=spec, seed=seed, faults=faults or CLEAN)
    runner = WorkloadRunner(db, workload, clients=clients, seed=seed, **runner_kwargs)
    return runner.run(txns=txns, duration=duration)
