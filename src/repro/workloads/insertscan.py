"""Insert + range-scan workload: exercises predicate reads and phantoms.

Transactions either insert a fresh row into a growing table or scan a key
range with a traced predicate.  Under a snapshot-consistent engine every
scan returns exactly the rows visible at its snapshot; engines with
result-set bugs (``FaultPlan.phantom_skip_prob``) or without snapshot scans
produce phantom misses the CR mechanism flags.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict

from ..core.trace import KeyRange
from ..dbsim.session import DeleteOp, Program, ReadOp, WriteOp
from .base import Key, Workload

TABLE = ("row",)


class InsertScanWorkload(Workload):
    """Growing table with interleaved range scans."""

    def __init__(
        self,
        initial_rows: int = 20,
        scan_width: int = 50,
        insert_ratio: float = 0.5,
        delete_ratio: float = 0.0,
        seed: int = 0,
    ):
        if not 0.0 <= insert_ratio <= 1.0:
            raise ValueError("insert_ratio must be a probability")
        if not 0.0 <= delete_ratio <= 1.0 or insert_ratio + delete_ratio > 1.0:
            raise ValueError("insert_ratio + delete_ratio must stay in [0, 1]")
        self.initial_rows = max(1, initial_rows)
        self.scan_width = max(1, scan_width)
        self.insert_ratio = insert_ratio
        self.delete_ratio = delete_ratio
        #: shared row-id allocator: inserts never collide.
        self._next_row = itertools.count(self.initial_rows)
        self.name = f"insert-scan(init={self.initial_rows})"

    def populate(self) -> Dict[Key, object]:
        return {
            TABLE + (i,): {"a": i, "batch": 0} for i in range(self.initial_rows)
        }

    def transaction(self, rng: random.Random) -> Program:
        point = rng.random()
        if point < self.insert_ratio:
            row_id = next(self._next_row)

            def insert():
                yield WriteOp({TABLE + (row_id,): {"a": row_id, "batch": 1}})

            return insert()
        if point < self.insert_ratio + self.delete_ratio:
            victim = rng.randrange(0, self.initial_rows)

            def delete():
                yield DeleteOp([TABLE + (victim,)])

            return delete()
        # Scan a window; occasionally the full table so far.
        if rng.random() < 0.2:
            lo, hi = 0, 10**9
        else:
            lo = rng.randrange(0, self.initial_rows * 4)
            hi = lo + self.scan_width

        def scan():
            yield ReadOp(predicate=KeyRange(TABLE, lo, hi), columns=["a"])

        return scan()
