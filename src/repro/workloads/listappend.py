"""List-append: Elle's flagship version-manifesting workload.

Every record holds a growing tuple; transactions append globally unique
elements through read-modify-write and read whole lists.  Because each
written value is a strict one-element extension, the complete version order
of every key is manifest in the history -- the property Elle's strongest
inference mode exploits and the reason the Jepsen ecosystem favours this
datatype.

For Leopard the workload is nothing special (values are just values),
which is exactly the paper's point: Leopard needs no workload cooperation,
while Elle's power depends on it.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict

from ..dbsim.session import Program, ReadOp, WriteOp
from .base import Key, Workload


class ListAppendWorkload(Workload):
    """Append/read mix over tuple-valued registers."""

    def __init__(
        self,
        keys: int = 32,
        ops_per_txn: int = 4,
        append_ratio: float = 0.5,
        seed: int = 0,
    ):
        if not 0.0 <= append_ratio <= 1.0:
            raise ValueError("append_ratio must be a probability")
        self.keys = max(1, keys)
        self.ops_per_txn = max(1, ops_per_txn)
        self.append_ratio = append_ratio
        self._elements = itertools.count(1)
        self.name = f"list-append(keys={self.keys})"

    def populate(self) -> Dict[Key, object]:
        return {self._key(i): () for i in range(self.keys)}

    @staticmethod
    def _key(rank: int) -> str:
        return f"list{rank}"

    def transaction(self, rng: random.Random) -> Program:
        plan = []
        for _ in range(self.ops_per_txn):
            key = self._key(rng.randrange(self.keys))
            if rng.random() < self.append_ratio:
                plan.append(("append", key, next(self._elements)))
            else:
                plan.append(("read", key, None))

        def program():
            for kind, key, element in plan:
                if kind == "read":
                    yield ReadOp([key])
                else:
                    values = yield ReadOp([key])
                    current = values[key]["v"] if values[key] else ()
                    yield WriteOp({key: tuple(current) + (element,)})

        return program()
