"""Elle-like isolation checker (the Section VI-F comparison).

Elle (Alvaro & Kingsbury, VLDB 2020) infers anomalies from histories whose
workloads make version orders *manifest* -- e.g. unique register writes
with read-modify-write chains, or list-append.  This reimplementation keeps
Elle's essential properties, including the limitations the paper
demonstrates:

* it refuses histories whose written values are not unique (TPC-C,
  SmallBank), since its version-order inference is undefined there;
* it detects only anomalies visible as *cycles* (or direct read aberrations
  G1a/G1b) in its inferred dependency graph -- bugs that create no cycle,
  such as the paper's Bug 1 (a dirty write that left no cyclic evidence),
  go unreported;
* it runs offline over the complete history.

Anomalies are named using Adya's taxonomy, as Elle does: G0 (write cycle),
G1a (aborted read), G1b (intermediate read), G1c (cyclic information flow),
G-single (one anti-dependency edge in a cycle), G2 (multiple
anti-dependency edges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from ..core.trace import OpKind, OpStatus, Trace
from .history import (
    HistoryTxn,
    Value,
    flatten_value,
    history_from_traces,
    initial_history_txn,
    values_are_unique,
)

Key = Hashable


class InapplicableWorkload(Exception):
    """Raised when the history does not manifest version orders."""


def _sequence_of(value: Value):
    """Extract the element sequence from a flattened single-column value
    whose payload is a list/tuple, else None."""
    if len(value) != 1:
        return None
    _, payload = value[0]
    if isinstance(payload, (list, tuple)):
        return tuple(payload)
    return None


def _list_append_chain(values, initial_seq=()) -> Optional[List[Value]]:
    """If every written value of a key is a sequence and, sorted by length,
    each strictly extends the previous one (the list-append datatype growing
    from ``initial_seq``; multi-element jumps are transactions that appended
    several times, whose intermediate states never committed), return the
    values in version order; else None."""
    decoded = []
    for value in values:
        seq = _sequence_of(value)
        if seq is None:
            return None
        decoded.append((seq, value))
    decoded.sort(key=lambda pair: len(pair[0]))
    previous = tuple(initial_seq)
    chain: List[Value] = []
    for seq, value in decoded:
        if len(seq) <= len(previous) or seq[: len(previous)] != previous:
            return None
        chain.append(value)
        previous = seq
    return chain


@dataclass
class ElleAnomaly:
    name: str
    txns: Tuple[str, ...]
    details: str

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.name}: {','.join(self.txns)} ({self.details})"


@dataclass
class ElleResult:
    ok: bool
    anomalies: List[ElleAnomaly] = field(default_factory=list)
    txns: int = 0
    cycles_examined: int = 0

    def anomaly_names(self) -> Set[str]:
        return {a.name for a in self.anomalies}


class ElleChecker:
    """Offline anomaly inference over a unique-value register history."""

    def __init__(self, max_cycles: int = 10_000):
        self.max_cycles = max_cycles

    # -- entry points ------------------------------------------------------------

    def check_traces(
        self,
        traces: Sequence[Trace],
        initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
    ) -> ElleResult:
        history = history_from_traces(traces)
        aborted = self._aborted_writes(traces)
        intermediate = self._intermediate_writes(traces)
        return self.check(
            history,
            initial_db=initial_db,
            aborted_writes=aborted,
            intermediate_writes=intermediate,
        )

    def check(
        self,
        history: Sequence[HistoryTxn],
        initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
        aborted_writes: Optional[Dict[Tuple[Key, Value], str]] = None,
        intermediate_writes: Optional[Dict[Tuple[Key, Value], str]] = None,
    ) -> ElleResult:
        history = list(history)
        if not values_are_unique(history):
            raise InapplicableWorkload(
                "history writes duplicate values: Elle's register inference "
                "requires a version-manifesting workload"
            )
        result = ElleResult(ok=True, txns=len(history))
        init = initial_history_txn(initial_db or {})
        writer_of_value: Dict[Tuple[Key, Value], str] = {
            (key, value): init.txn_id for key, value in init.writes.items()
        }
        version_parents = self._infer_version_orders(
            history, writer_of_value, result
        )
        graph = self._dependency_graph(
            history,
            init,
            writer_of_value,
            version_parents,
            aborted_writes or {},
            intermediate_writes or {},
            result,
        )
        self._find_cycle_anomalies(graph, result)
        result.ok = not result.anomalies
        return result

    # -- history side-channels (aborted / intermediate values) ---------------------------

    @staticmethod
    def _aborted_writes(traces: Sequence[Trace]) -> Dict[Tuple[Key, Value], str]:
        status: Dict[str, bool] = {}
        writes: Dict[str, List[Tuple[Key, Value]]] = {}
        for trace in traces:
            if trace.kind is OpKind.WRITE and trace.status is OpStatus.OK:
                for key, columns in trace.writes.items():
                    writes.setdefault(trace.txn_id, []).append(
                        (key, flatten_value(columns))
                    )
            elif trace.is_terminal:
                status[trace.txn_id] = trace.kind is OpKind.COMMIT
        return {
            pair: txn_id
            for txn_id, pairs in writes.items()
            if not status.get(txn_id, False)
            for pair in pairs
        }

    @staticmethod
    def _intermediate_writes(
        traces: Sequence[Trace],
    ) -> Dict[Tuple[Key, Value], str]:
        """Values overwritten later by the same transaction."""
        last: Dict[Tuple[str, Key], Value] = {}
        all_writes: List[Tuple[str, Key, Value]] = []
        for trace in sorted(traces, key=Trace.sort_key):
            if trace.kind is OpKind.WRITE and trace.status is OpStatus.OK:
                for key, columns in trace.writes.items():
                    value = flatten_value(columns)
                    all_writes.append((trace.txn_id, key, value))
                    last[(trace.txn_id, key)] = value
        return {
            (key, value): txn_id
            for txn_id, key, value in all_writes
            if last[(txn_id, key)] != value
        }

    # -- version order inference -----------------------------------------------------------

    def _infer_version_orders(
        self,
        history: Sequence[HistoryTxn],
        writer_of_value: Dict[Tuple[Key, Value], str],
        result: ElleResult,
    ) -> Dict[Tuple[Key, Value], Tuple[Key, Value]]:
        """Infer per-key version orders.

        Two sources of manifest order, as in Elle:

        * **rmw traceability** for registers -- a txn that read v and wrote
          v' proves v is v's direct predecessor;
        * **prefix traceability** for list-append values -- when every
          written value of a key is a strictly growing sequence (the
          list-append datatype), the version order is the total order by
          length, and *every* adjacent pair is manifest, not only the
          rmw-observed ones.
        """
        parents: Dict[Tuple[Key, Value], Tuple[Key, Value]] = {}
        # At this point writer_of_value holds only the initial database
        # entries; remember the keys whose initial values are sequences.
        initial_values: Dict[Key, Value] = {
            key: value for (key, value) in writer_of_value
        }
        values_by_key: Dict[Key, List[Value]] = {}
        for txn in history:
            for key, value in txn.writes.items():
                writer_of_value[(key, value)] = txn.txn_id
                values_by_key.setdefault(key, []).append(value)
            for key, read_value, written_value in txn.rmw:
                parents[(key, written_value)] = (key, read_value)
        for key, values in values_by_key.items():
            initial_value = initial_values.get(key)
            initial_seq = (
                _sequence_of(initial_value) if initial_value is not None else ()
            )
            if initial_seq is None:
                continue
            chain = _list_append_chain(values, initial_seq)
            if chain is None:
                # All-sequence values that do not form a single chain mean
                # the list-append datatype's invariant broke: two writers
                # extended the same prefix (a lost append) -- Elle's
                # "incompatible order" anomaly.
                if all(_sequence_of(v) is not None for v in values) and len(values) > 1:
                    writers = tuple(
                        sorted({writer_of_value[(key, v)] for v in values})
                    )
                    result.anomalies.append(
                        ElleAnomaly(
                            name="incompatible-order",
                            txns=writers[:8],
                            details=(
                                f"list versions of {key!r} diverge: no single "
                                "append chain explains them"
                            ),
                        )
                    )
                continue
            previous = initial_value
            for value in chain:
                if previous is not None:
                    parents[(key, value)] = (key, previous)
                previous = value
        return parents

    # -- dependency graph ---------------------------------------------------------------------

    def _dependency_graph(
        self,
        history: Sequence[HistoryTxn],
        init: HistoryTxn,
        writer_of_value: Dict[Tuple[Key, Value], str],
        version_parents: Dict[Tuple[Key, Value], Tuple[Key, Value]],
        aborted_writes: Dict[Tuple[Key, Value], str],
        intermediate_writes: Dict[Tuple[Key, Value], str],
        result: ElleResult,
    ) -> nx.DiGraph:
        graph = nx.DiGraph()
        committed = {txn.txn_id for txn in history} | {init.txn_id}
        readers_of_value: Dict[Tuple[Key, Value], List[str]] = {}
        for txn in history:
            graph.add_node(txn.txn_id)
            for key, value in txn.reads.items():
                pair = (key, value)
                if pair in aborted_writes:
                    result.anomalies.append(
                        ElleAnomaly(
                            name="G1a",
                            txns=(txn.txn_id, aborted_writes[pair]),
                            details=f"read of aborted write on {key!r}",
                        )
                    )
                    continue
                if pair in intermediate_writes:
                    result.anomalies.append(
                        ElleAnomaly(
                            name="G1b",
                            txns=(txn.txn_id, intermediate_writes[pair]),
                            details=f"read of intermediate version on {key!r}",
                        )
                    )
                writer = writer_of_value.get(pair)
                if writer is None or writer not in committed:
                    result.anomalies.append(
                        ElleAnomaly(
                            name="G1a",
                            txns=(txn.txn_id,),
                            details=f"read of unknown value on {key!r}",
                        )
                    )
                    continue
                if writer != txn.txn_id:
                    graph.add_edge(writer, txn.txn_id, kind="wr")
                readers_of_value.setdefault(pair, []).append(txn.txn_id)
        # ww edges and rw edges from inferred version adjacency.
        for (key, child_value), (pkey, parent_value) in version_parents.items():
            child_writer = writer_of_value.get((key, child_value))
            parent_writer = writer_of_value.get((pkey, parent_value))
            if child_writer is None or child_writer not in committed:
                continue
            if parent_writer is not None and parent_writer in committed:
                if parent_writer != child_writer:
                    graph.add_edge(parent_writer, child_writer, kind="ww")
            for reader in readers_of_value.get((pkey, parent_value), ()):  # rw
                if reader != child_writer:
                    graph.add_edge(reader, child_writer, kind="rw")
        return graph

    # -- cycle classification ----------------------------------------------------------------------

    def _find_cycle_anomalies(self, graph: nx.DiGraph, result: ElleResult) -> None:
        for component in nx.strongly_connected_components(graph):
            if len(component) < 2:
                node = next(iter(component))
                if not graph.has_edge(node, node):
                    continue
            sub = graph.subgraph(component)
            try:
                cycle_edges = nx.find_cycle(sub)
            except nx.NetworkXNoCycle:  # pragma: no cover - defensive
                continue
            result.cycles_examined += 1
            kinds = {graph.edges[u, v].get("kind") for u, v, *_ in cycle_edges}
            txns = tuple(sorted({u for u, _v, *_ in cycle_edges}))
            rw_count = sum(
                1 for u, v, *_ in cycle_edges if graph.edges[u, v].get("kind") == "rw"
            )
            if kinds == {"ww"}:
                name = "G0"
            elif "rw" not in kinds:
                name = "G1c"
            elif rw_count == 1:
                name = "G-single"
            else:
                name = "G2"
            result.anomalies.append(
                ElleAnomaly(
                    name=name,
                    txns=txns,
                    details=f"dependency cycle with edge kinds {sorted(k for k in kinds if k)}",
                )
            )
