"""Transaction-history model shared by the baseline checkers.

Cobra and Elle both consume *histories* -- per-transaction read/write sets
with observed values -- rather than Leopard's interval traces.  This module
lowers a trace stream into that representation, which is also the honest
way to run the comparison: the baselines get every piece of information
they were designed to use (values, session order, commit order), just not
the interval timestamps that are Leopard's own contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from ..core.trace import OpKind, OpStatus, Trace

Key = Hashable
#: Values are flattened to a hashable form (column maps become sorted
#: tuples) so they can index dictionaries.
Value = Tuple


def flatten_value(columns: Mapping[str, object]) -> Value:
    return tuple(sorted(columns.items()))


@dataclass
class HistoryTxn:
    """One committed (or aborted) transaction in value-history form."""

    txn_id: str
    client_id: int
    committed: bool
    #: key -> last observed value (first read wins per key: later reads may
    #: see the txn's own writes, which carry no external information).
    reads: Dict[Key, Value] = field(default_factory=dict)
    #: key -> last written value.
    writes: Dict[Key, Value] = field(default_factory=dict)
    #: (key, read value, written value) triples for read-modify-write
    #: traceability (Elle's version-order inference).
    rmw: List[Tuple[Key, Value, Value]] = field(default_factory=list)
    #: position in commit order (index of the terminal trace).
    commit_order: int = 0
    #: before-timestamp of the first operation (transaction begin).
    begin_ts: float = 0.0
    #: after-timestamp of the terminal operation (definitely finished by).
    commit_ts: float = 0.0


def history_from_traces(
    traces: Iterable[Trace],
    include_aborted: bool = False,
) -> List[HistoryTxn]:
    """Lower a (sorted or unsorted) trace stream into commit-ordered
    history transactions."""
    building: Dict[str, HistoryTxn] = {}
    finished: List[Tuple[float, HistoryTxn]] = []
    for trace in sorted(traces, key=Trace.sort_key):
        txn = building.get(trace.txn_id)
        if txn is None:
            txn = HistoryTxn(
                txn_id=trace.txn_id,
                client_id=trace.client_id,
                committed=False,
                begin_ts=trace.ts_bef,
            )
            building[trace.txn_id] = txn
        if trace.kind is OpKind.READ and trace.status is OpStatus.OK:
            for key, observed in trace.reads.items():
                value = flatten_value(observed)
                if key not in txn.writes and key not in txn.reads:
                    txn.reads[key] = value
        elif trace.kind is OpKind.WRITE and trace.status is OpStatus.OK:
            for key, written in trace.writes.items():
                value = flatten_value(written)
                if key in txn.reads and key not in txn.writes:
                    txn.rmw.append((key, txn.reads[key], value))
                txn.writes[key] = value
        elif trace.is_terminal:
            txn.committed = trace.kind is OpKind.COMMIT
            txn.commit_ts = trace.ts_aft
            finished.append((trace.ts_bef, txn))
            del building[trace.txn_id]
    finished.sort(key=lambda pair: pair[0])
    history: List[HistoryTxn] = []
    for order, (_, txn) in enumerate(finished):
        txn.commit_order = order
        if txn.committed or include_aborted:
            history.append(txn)
    return history


def initial_history_txn(
    initial_db: Mapping[Key, Mapping[str, object]]
) -> HistoryTxn:
    """The synthetic transaction that wrote the initial database state."""
    txn = HistoryTxn(txn_id="__init__", client_id=-1, committed=True)
    txn.writes = {key: flatten_value(image) for key, image in initial_db.items()}
    txn.commit_order = -1
    return txn


def values_are_unique(history: List[HistoryTxn]) -> bool:
    """Whether every (key, written value) pair is distinct -- the
    version-manifesting property Elle's register inference requires."""
    seen = set()
    for txn in history:
        for key, value in txn.writes.items():
            if (key, value) in seen:
                return False
            seen.add((key, value))
    return True
