"""Baseline checkers the paper compares against (Sections VI-B/E/F)."""

from .cobra import CobraChecker, CobraResult
from .cyclesearch import NaiveCycleSearchChecker
from .elle import ElleAnomaly, ElleChecker, ElleResult, InapplicableWorkload
from .history import (
    HistoryTxn,
    flatten_value,
    history_from_traces,
    initial_history_txn,
    values_are_unique,
)

__all__ = [
    "CobraChecker",
    "CobraResult",
    "NaiveCycleSearchChecker",
    "ElleAnomaly",
    "ElleChecker",
    "ElleResult",
    "InapplicableWorkload",
    "HistoryTxn",
    "flatten_value",
    "history_from_traces",
    "initial_history_txn",
    "values_are_unique",
]
