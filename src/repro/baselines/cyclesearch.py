"""The naive cycle-searching verifier (Fig. 11 comparison).

Uses the same interval-based dependency deduction as Leopard but replaces
the mechanism-mirrored certifier with the textbook approach: after every
commit, run a full DFS cycle search over the accumulated dependency graph.
No garbage collection, no incremental oracle -- per-commit cost grows with
the whole graph, which is exactly the superlinear curve Fig. 11a plots
against Leopard's linear one.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..core.report import (
    Mechanism,
    VerificationReport,
    Violation,
    ViolationKind,
)
from ..core.spec import IsolationSpec, PG_SERIALIZABLE
from ..core.trace import Key, OpKind, Trace
from ..core.verifier import Verifier


class NaiveCycleSearchChecker:
    """Dependency graph + whole-graph cycle search per committed txn."""

    def __init__(
        self,
        spec: IsolationSpec = PG_SERIALIZABLE,
        initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
        check_every: int = 1,
    ):
        if check_every < 1:
            raise ValueError("check_every must be positive")
        # The certifier is stripped: this checker supplies its own SC step.
        # Garbage collection is disabled -- the naive approach retains the
        # complete graph, which is also what makes it slow.
        self._verifier = Verifier(
            spec=spec.without("SC"),
            initial_db=initial_db,
            gc_every=0,
            incremental_graph=False,
        )
        self._check_every = check_every
        self._commits_since_check = 0
        self._cycle_found = False

    @property
    def graph(self):
        return self._verifier.state.graph

    def process(self, trace: Trace) -> None:
        self._verifier.process(trace)
        if trace.kind is not OpKind.COMMIT or self._cycle_found:
            return
        self._commits_since_check += 1
        if self._commits_since_check < self._check_every:
            return
        self._commits_since_check = 0
        cycle = self.graph.find_cycle()
        if cycle is not None:
            self._cycle_found = True
            self._verifier.state.descriptor.record(
                Violation(
                    mechanism=Mechanism.SERIALIZATION_CERTIFIER,
                    kind=ViolationKind.DEPENDENCY_CYCLE,
                    txns=tuple(sorted(set(cycle))),
                    details=f"cycle found by full-graph search: {cycle}",
                )
            )

    def process_all(self, traces: Iterable[Trace]) -> "NaiveCycleSearchChecker":
        for trace in traces:
            self.process(trace)
        return self

    def finish(self) -> VerificationReport:
        report = self._verifier.finish()
        cycle = self.graph.find_cycle()
        if cycle is not None and not self._cycle_found:
            report.descriptor.record(
                Violation(
                    mechanism=Mechanism.SERIALIZATION_CERTIFIER,
                    kind=ViolationKind.DEPENDENCY_CYCLE,
                    txns=tuple(sorted(set(cycle))),
                    details=f"cycle found by final full-graph search: {cycle}",
                )
            )
        return report

    def live_structure_count(self) -> int:
        return self._verifier.state.live_structure_count()
