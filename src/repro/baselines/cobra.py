"""Cobra-like serializability checker (the Fig. 14 baseline).

Cobra (Tan et al., OSDI 2020) verifies *serializability only*, over
key-value histories whose written values identify versions.  Its pipeline:

1. build a *known graph* from wr edges (value matching), session order and
   read-modify-write inference;
2. generate *constraints* for every pair of writers of a key whose order is
   unknown (the polygraph);
3. *prune* constraints whose one orientation would contradict known
   reachability -- repeated graph traversals, the superlinear part;
4. hand the residue to a solver (MonoSAT in the original; an exhaustive
   backtracking search here) to decide whether an acyclic orientation
   exists;
5. optionally *garbage collect* using fence transactions: old, fully
   ordered transactions are contracted out of the graph after an expensive
   whole-graph traverse -- Fig. 14's "Cobra" (with GC) trades even more
   time for bounded memory, while "Cobra w/o GC" keeps everything.

The implementation mirrors those costs deliberately: the point of the
comparison is the asymptotic shape, not MonoSAT's constant factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from .history import HistoryTxn, Value, initial_history_txn

Key = Hashable


@dataclass
class CobraConstraint:
    """Undetermined write order between two transactions on one key."""

    key: Key
    a: str
    b: str
    resolved: bool = False


@dataclass
class CobraResult:
    ok: bool
    violations: List[str] = field(default_factory=list)
    txns: int = 0
    known_edges: int = 0
    constraints_generated: int = 0
    constraints_pruned: int = 0
    search_steps: int = 0
    peak_nodes: int = 0
    peak_edges: int = 0
    peak_constraints: int = 0

    @property
    def peak_structures(self) -> int:
        """Memory axis of Fig. 14: retained graph + constraint entries."""
        return self.peak_nodes + self.peak_edges + self.peak_constraints


class _Graph:
    """Minimal adjacency digraph with BFS reachability (kept separate from
    networkx so traversal costs are explicit and comparable)."""

    def __init__(self) -> None:
        self.succ: Dict[str, Set[str]] = {}
        self.pred: Dict[str, Set[str]] = {}
        self.edges = 0

    def add_node(self, node: str) -> None:
        self.succ.setdefault(node, set())
        self.pred.setdefault(node, set())

    def add_edge(self, u: str, v: str) -> None:
        if u == v:
            return
        self.add_node(u)
        self.add_node(v)
        if v not in self.succ[u]:
            self.succ[u].add(v)
            self.pred[v].add(u)
            self.edges += 1

    def reachable(self, src: str, dst: str) -> bool:
        if src not in self.succ or dst not in self.succ:
            return False
        stack = [src]
        seen = {src}
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            for nxt in self.succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def find_cycle(self) -> Optional[List[str]]:
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in self.succ}
        parent: Dict[str, Optional[str]] = {}
        for root in self.succ:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[str, object]] = [(root, iter(self.succ[root]))]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if colour[nxt] == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(self.succ[nxt])))
                        advanced = True
                        break
                    if colour[nxt] == GREY:
                        path = [node]
                        while path[-1] != nxt:
                            path.append(parent[path[-1]])
                        return list(reversed(path))
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def remove_node(self, node: str) -> None:
        preds = self.pred.pop(node, set())
        succs = self.succ.pop(node, set())
        for p in preds:
            self.succ[p].discard(node)
        for s in succs:
            self.pred[s].discard(node)
        self.edges -= len(preds) + len(succs)

    @property
    def node_count(self) -> int:
        return len(self.succ)


class CobraChecker:
    """Offline serializability check over a value history."""

    def __init__(
        self,
        fence_every: Optional[int] = 20,
        max_search_steps: int = 2_000_000,
    ):
        #: fence transaction spacing; None reproduces "Cobra w/o GC".
        self.fence_every = fence_every
        self.max_search_steps = max_search_steps

    # -- public API ----------------------------------------------------------

    def check(
        self,
        history: Sequence[HistoryTxn],
        initial_db: Optional[Mapping[Key, Mapping[str, object]]] = None,
    ) -> CobraResult:
        result = CobraResult(ok=True, txns=len(history))
        graph = _Graph()
        writer_of_value: Dict[Tuple[Key, Value], str] = {}
        writers_by_key: Dict[Key, List[str]] = {}
        #: (key, writer txn) -> readers of that writer's version of the key
        readers_of_writer: Dict[Tuple[Key, str], List[str]] = {}
        #: (key, writer txn) -> known overwriters of that writer's version
        #: (filled by constraint orientation); late readers of the version
        #: still anti-depend on these.
        self._overwriters = {}
        constraints: List[CobraConstraint] = []
        last_in_session: Dict[int, str] = {}
        #: the latest fence transaction and the physical time it closed.
        #: A fence orders transactions *finished before it* ahead of
        #: transactions *begun after it*; in-flight spanners stay unordered
        #: (the real fence is a transaction each session runs between its
        #: own transactions, so it never splits one).
        fence: List[Optional[str]] = [None]
        fence_time: List[float] = [float("-inf")]

        def observe_peaks() -> None:
            live = sum(1 for c in constraints if not c.resolved)
            result.peak_nodes = max(result.peak_nodes, graph.node_count)
            result.peak_edges = max(result.peak_edges, graph.edges)
            result.peak_constraints = max(result.peak_constraints, live)

        init = initial_history_txn(initial_db or {})
        graph.add_node(init.txn_id)
        for key, value in init.writes.items():
            writer_of_value[(key, value)] = init.txn_id
            writers_by_key.setdefault(key, []).append(init.txn_id)

        for index, txn in enumerate(history):
            before = len(constraints)
            self._ingest(
                txn,
                graph,
                writer_of_value,
                writers_by_key,
                readers_of_writer,
                constraints,
                last_in_session,
                result,
            )
            # Incremental pruning over this transaction's new constraints;
            # full fixpoint passes run at fence boundaries (Cobra batches
            # its expensive traversals the same way).
            if fence[0] is not None and txn.begin_ts >= fence_time[0]:
                graph.add_edge(fence[0], txn.txn_id)
            self._prune(graph, constraints[before:], readers_of_writer, result)
            if self.fence_every and (index + 1) % self.fence_every == 0:
                fence_time[0] = max(
                    (t.commit_ts for t in history[: index + 1]),
                    default=float("-inf"),
                )
                fence[0] = self._install_fence(
                    graph, index, history[: index + 1], fence_time[0]
                )
                self._prune(graph, constraints, readers_of_writer, result)
                # Round-based verification: solve the epoch's residual
                # constraints now so the epoch can be discarded (Cobra
                # verifies and garbage-collects in fence-delimited rounds).
                self._solve_round(graph, constraints, readers_of_writer, result)
                self._collect_garbage(
                    graph,
                    constraints,
                    writers_by_key,
                    readers_of_writer,
                    last_in_session,
                    fence[0],
                    result,
                )
            observe_peaks()
        self._prune(graph, constraints, readers_of_writer, result)

        cycle = graph.find_cycle()
        if cycle is not None:
            result.ok = False
            result.violations.append(
                f"known-graph cycle: {' -> '.join(cycle)}"
            )
            return result
        unresolved = [c for c in constraints if not c.resolved]
        if unresolved and not self._search(
            graph, unresolved, readers_of_writer, result
        ):
            result.ok = False
            result.violations.append(
                "no acyclic orientation of write-order constraints exists"
            )
        result.known_edges = graph.edges
        return result

    # -- phase 1: ingest -------------------------------------------------------------

    def _ingest(
        self,
        txn: HistoryTxn,
        graph: _Graph,
        writer_of_value,
        writers_by_key,
        readers_of_writer,
        constraints: List[CobraConstraint],
        last_in_session: Dict[int, str],
        result: CobraResult,
    ) -> None:
        graph.add_node(txn.txn_id)
        prev = last_in_session.get(txn.client_id)
        if prev is not None:
            graph.add_edge(prev, txn.txn_id)
        last_in_session[txn.client_id] = txn.txn_id
        for key, value in txn.reads.items():
            writer = writer_of_value.get((key, value))
            if writer is None:
                result.ok = False
                result.violations.append(
                    f"{txn.txn_id} read unknown/uncommitted value on {key!r}"
                )
                continue
            graph.add_edge(writer, txn.txn_id)
            readers_of_writer.setdefault((key, writer), []).append(txn.txn_id)
            for overwriter in self._overwriters.get((key, writer), ()):
                if overwriter != txn.txn_id:
                    graph.add_edge(txn.txn_id, overwriter)
        for key, read_value, _written in txn.rmw:
            # Read-modify-write: the new version directly follows the read
            # one -- a *known* ww edge, which also fixes the anti-dependency
            # edges of the overwritten version's readers.
            writer = writer_of_value.get((key, read_value))
            if writer is not None:
                graph.add_edge(writer, txn.txn_id)
                self._overwriters.setdefault((key, writer), set()).add(
                    txn.txn_id
                )
                for reader in readers_of_writer.get((key, writer), ()):
                    if reader != txn.txn_id:
                        graph.add_edge(reader, txn.txn_id)
        for key, value in txn.writes.items():
            rmw_bases = {k for k, _, _ in txn.rmw}
            for other in writers_by_key.get(key, ()):  # constraint per pair
                if other == txn.txn_id:
                    continue
                if key in rmw_bases and writer_of_value.get(
                    (key, txn.reads.get(key))
                ) == other:
                    continue  # already ordered by the RMW edge
                constraints.append(CobraConstraint(key=key, a=other, b=txn.txn_id))
                result.constraints_generated += 1
            writers_by_key.setdefault(key, []).append(txn.txn_id)
            writer_of_value[(key, value)] = txn.txn_id

    # -- phase 2: prune -----------------------------------------------------------------

    def _orient(
        self,
        graph: _Graph,
        constraint: CobraConstraint,
        readers_of_writer,
        first: str,
        second: str,
    ) -> None:
        """Commit one orientation: first's version precedes second's, so
        first -> second, and every reader of first's version anti-depends
        on second (Cobra's read-set constraint edges)."""
        graph.add_edge(first, second)
        for reader in readers_of_writer.get((constraint.key, first), ()):
            if reader != second:
                graph.add_edge(reader, second)
        self._overwriters.setdefault((constraint.key, first), set()).add(second)
        constraint.resolved = True

    def _prune(
        self,
        graph: _Graph,
        constraints: List[CobraConstraint],
        readers_of_writer,
        result: CobraResult,
    ) -> None:
        """Resolve constraints forced by known reachability; iterate to a
        fixpoint.  Each query is a BFS over the whole known graph -- the
        deliberate superlinear cost."""
        changed = True
        while changed:
            changed = False
            for constraint in constraints:
                if constraint.resolved:
                    continue
                a_before_b = graph.reachable(constraint.a, constraint.b)
                b_before_a = graph.reachable(constraint.b, constraint.a)
                if a_before_b and b_before_a:
                    result.ok = False
                    result.violations.append(
                        f"contradictory write order on {constraint.key!r} "
                        f"between {constraint.a} and {constraint.b}"
                    )
                    constraint.resolved = True
                    changed = True
                elif a_before_b:
                    self._orient(
                        graph, constraint, readers_of_writer, constraint.a, constraint.b
                    )
                    result.constraints_pruned += 1
                    changed = True
                elif b_before_a:
                    self._orient(
                        graph, constraint, readers_of_writer, constraint.b, constraint.a
                    )
                    result.constraints_pruned += 1
                    changed = True

    def _solve_round(
        self,
        graph: _Graph,
        constraints: List[CobraConstraint],
        readers_of_writer,
        result: CobraResult,
    ) -> None:
        self._round_readers = readers_of_writer
        unresolved = [c for c in constraints if not c.resolved]
        if not unresolved:
            return
        if self._search(graph, unresolved, self._round_readers, result):
            for constraint in unresolved:
                constraint.resolved = True
        else:
            result.ok = False
            result.violations.append(
                "no acyclic orientation of write-order constraints exists "
                "in this round"
            )
            for constraint in unresolved:  # keep checking later rounds
                constraint.resolved = True

    # -- phase 3: garbage collection (fence transactions) ----------------------------------

    @staticmethod
    def _install_fence(graph: _Graph, index: int, ingested, fence_time: float) -> str:
        """Insert a fence node ordered after every transaction that is
        definitely finished (``commit_ts <= fence_time``).  In the real
        system the fence is an extra workload transaction each session runs
        between its own transactions; synthesising the ordering edges here
        models its guarantee without charging Cobra for executing it (a
        concession in Cobra's favour)."""
        fence_id = f"__fence{index}"
        graph.add_node(fence_id)
        finished = {t.txn_id for t in ingested if t.commit_ts <= fence_time}
        finished.add("__init__")
        for node in list(graph.succ):
            if node != fence_id and (
                node in finished or node.startswith("__fence")
            ):
                graph.add_edge(node, fence_id)
        return fence_id

    def _collect_garbage(
        self,
        graph: _Graph,
        constraints: List[CobraConstraint],
        writers_by_key,
        readers_of_writer,
        last_in_session: Dict[int, str],
        fence: Optional[str],
        result: CobraResult,
    ) -> None:
        """Drop fully ordered old transactions (fence-based pruning).

        Cobra's fence transactions order everything before a fence ahead of
        everything after it, which lets the checker discard transactions
        that (a) participate in no unresolved constraint, (b) are not the
        latest writer of any key and (c) are not a session tail.  The
        identification pass is an expensive whole-graph traverse -- the cost
        the paper observes dominating Cobra's runtime -- but the reward is
        the bounded memory curve of Fig. 14b/d."""
        pinned: Set[str] = set()
        for constraint in constraints:
            if not constraint.resolved:
                pinned.add(constraint.a)
                pinned.add(constraint.b)
        for writers in writers_by_key.values():
            if writers:
                pinned.add(writers[-1])
        pinned.update(last_in_session.values())
        pinned.add("__init__")
        if fence is None:
            return
        pinned.add(fence)
        # The "expensive traverse" the paper observes dominating Cobra's
        # runtime: a whole-graph sweep establishing which transactions are
        # provably ordered before the fence (its ancestors).  Those are
        # fully in the past -- every future transaction is ordered after the
        # fence -- so the non-pinned ones can be discarded.
        ancestors: Set[str] = set()
        stack = [fence]
        while stack:
            current = stack.pop()
            for prev in graph.pred.get(current, ()):  # full walks
                if prev not in ancestors:
                    ancestors.add(prev)
                    stack.append(prev)
        dropped: Set[str] = set()
        for node in list(graph.succ):
            if node in pinned or node not in ancestors:
                continue
            graph.remove_node(node)
            dropped.add(node)
        if dropped:
            for pair in [p for p in readers_of_writer if p[1] in dropped]:
                del readers_of_writer[pair]
        constraints[:] = [c for c in constraints if not c.resolved]

    # -- phase 4: search ---------------------------------------------------------------------

    def _search(
        self,
        graph: _Graph,
        unresolved: List[CobraConstraint],
        readers_of_writer,
        result: CobraResult,
    ) -> bool:
        """Iterative backtracking over the remaining constraint
        orientations.  Each orientation adds the write-order edge plus the
        reader anti-dependency edges (readers of the earlier version must
        precede the overwriting writer); edges are only added when they keep
        the graph acyclic, so a completed assignment is a witness of
        serializability.  On success the final assignment's edges remain in
        the graph (the round is committed)."""
        n = len(unresolved)
        choice = [0] * n
        added: List[List[Tuple[str, str]]] = [[] for _ in range(n)]
        index = 0

        def undo(i: int) -> None:
            for u, v in reversed(added[i]):
                graph.succ[u].discard(v)
                graph.pred[v].discard(u)
                graph.edges -= 1
            added[i] = []

        def try_orientation(i: int, first: str, second: str) -> bool:
            """Add the orientation's edges if they keep acyclicity."""
            wanted = [(first, second)]
            wanted.extend(
                (reader, second)
                for reader in readers_of_writer.get(
                    (unresolved[i].key, first), ()
                )
                if reader != second
            )
            for u, v in wanted:
                if u == v:
                    continue
                if v in graph.succ.get(u, set()):
                    continue
                if graph.reachable(v, u):
                    undo(i)
                    return False
                graph.add_edge(u, v)
                added[i].append((u, v))
            return True

        while True:
            if index == n:
                return True  # every edge kept acyclicity: witness found
            result.search_steps += 1
            if result.search_steps > self.max_search_steps:
                raise RuntimeError("Cobra search budget exhausted")
            constraint = unresolved[index]
            options = (
                (constraint.a, constraint.b),
                (constraint.b, constraint.a),
            )
            placed = False
            while choice[index] < 2:
                first, second = options[choice[index]]
                choice[index] += 1
                if try_orientation(index, first, second):
                    placed = True
                    break
            if placed:
                index += 1
            else:
                choice[index] = 0
                index -= 1
                if index < 0:
                    return False
                undo(index)
