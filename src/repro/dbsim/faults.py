"""Fault injection: reproducing the bug classes of Section VI-F.

The paper found 17 real bugs in commercial engines; we cannot run those
engines, so each bug *class* is reproduced as a switchable fault in the
simulated engine.  Running a faulty engine while claiming the clean spec
produces traces carrying the same dependency/interval signature the real
bug produced, which is what the verification mechanisms consume.

Mapping to the paper's bug cases:

=========================  ====================================================
Fault                      Paper bug case
=========================  ====================================================
skip_lock_on_noop_update   Bug 1 -- TiDB acquired no lock when the first
                           UPDATE did not change the record, allowing a
                           dirty write (ME violation).
stale_read_prob            Bug 2 -- a read returned the first update but
                           not the second, violating linearizable reads
                           (CR violation).
forget_write_lock_prob     Bug 3 -- a FOR UPDATE read reached a record
                           through a join and TiDB forgot the lock
                           acquisition (ME violation).
ignore_own_write_prob      Bug 4 -- a query returned the deleted/old
                           version instead of the transaction's own write
                           (CR own-write violation).
dirty_read_prob            classic G1a/G1b: reads observing uncommitted or
                           later-aborted data (CR violation).
future_read_prob           non-repeatable reads under a claimed
                           transaction-level snapshot (CR violation).
disable_fuw                lost update while claiming SI (FUW violation).
disable_ssi                write skew while claiming serializable
                           (SC violation).
disable_write_locks        systematic dirty writes (ME violation).
=========================  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class FaultPlan:
    """Switchboard of injectable engine defects (all off by default)."""

    skip_lock_on_noop_update: bool = False
    stale_read_prob: float = 0.0
    forget_write_lock_prob: float = 0.0
    ignore_own_write_prob: float = 0.0
    dirty_read_prob: float = 0.0
    future_read_prob: float = 0.0
    #: probability a predicate scan silently drops a matching row (a
    #: phantom-style result-set bug).
    phantom_skip_prob: float = 0.0
    disable_fuw: bool = False
    disable_ssi: bool = False
    disable_write_locks: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "stale_read_prob",
            "forget_write_lock_prob",
            "ignore_own_write_prob",
            "dirty_read_prob",
            "future_read_prob",
            "phantom_skip_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    @property
    def is_clean(self) -> bool:
        """Whether every fault switch is off (the seed is not a fault)."""
        return not any(
            getattr(self, f.name) for f in fields(self) if f.name != "seed"
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


CLEAN = FaultPlan()


class FaultDice:
    """Seeded sampler deciding when probabilistic faults fire."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)

    def fires(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability
