"""Engine-side optimistic validation certifiers.

Two commit-time validators:

* :class:`OccValidator` -- classic backward validation: a transaction
  commits only if every record it read is still at the version it read.
  Together with atomic commit-time installation this yields conflict
  serializability, mirroring the OCC engines of Fig. 1 (FoundationDB,
  RocksDB optimistic mode) and standing in for timestamp-ordering engines
  (CockroachDB) whose committed histories are equally cycle-free.
* :class:`FirstCommitterValidator` -- Percolator-style snapshot-isolation
  write certification: a transaction commits only if no record it wrote
  was committed by anybody else after its snapshot.
"""

from __future__ import annotations

from typing import Optional

from .storage import MultiVersionStore


class OccValidator:
    """Backward validation over the read set."""

    def validate(self, txn, store: MultiVersionStore) -> Optional[str]:
        for key, seen_ts in txn.read_versions.items():
            latest = store.latest_commit_ts(key)
            if latest != seen_ts:
                return (
                    f"read validation failed on {key!r}: version "
                    f"{seen_ts} superseded by {latest}"
                )
        return None


class FirstCommitterValidator:
    """Write-write certification against the transaction snapshot."""

    def validate(self, txn, store: MultiVersionStore) -> Optional[str]:
        if txn.snapshot_ts is None:
            return None
        for key in txn.staged:
            latest = store.latest_commit_ts(key)
            if latest > txn.snapshot_ts:
                return (
                    f"write-write conflict on {key!r}: committed at "
                    f"{latest} after snapshot {txn.snapshot_ts}"
                )
        return None
