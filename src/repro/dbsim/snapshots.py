"""Snapshot assignment for the simulated engine.

Mirrors the two consistent-read granularities of Section II-B:
transaction-level CR pins the snapshot at the first operation,
statement-level CR (and the no-CR fallback, which simply reads the latest
committed state) re-snapshots at every operation.
"""

from __future__ import annotations


from ..core.spec import CRLevel


class SnapshotManager:
    """Assigns snapshot timestamps according to the spec's CR level."""

    def __init__(self, cr_level: CRLevel):
        self._level = cr_level

    def snapshot_for(self, txn, now: float) -> float:
        """Return the snapshot timestamp the operation executing at ``now``
        must read at, pinning the transaction-level snapshot on first use."""
        if self._level is CRLevel.TRANSACTION:
            if txn.snapshot_ts is None:
                txn.snapshot_ts = now
            return txn.snapshot_ts
        # Statement-level CR and the no-CR fallback both read the latest
        # committed state as of the operation.
        txn.snapshot_ts = now
        return now
