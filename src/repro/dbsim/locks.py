"""Engine-side two-phase-locking lock manager.

Implements strict 2PL with FIFO wait queues and wait-for-graph deadlock
detection.  Blocking is what stretches client-observed operation intervals
under contention, which in turn produces the overlapping traces whose
ratio Fig. 4 measures -- so the lock manager is load-bearing for the
realism of the whole trace substrate, not just for correctness.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Hashable, List, Optional, Set

Key = Hashable


class EngineLockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible(self, other: "EngineLockMode") -> bool:
        return self is EngineLockMode.SHARED and other is EngineLockMode.SHARED


@dataclass
class _Waiter:
    txn_id: str
    mode: EngineLockMode
    on_grant: Callable[[], None]


@dataclass
class _KeyLock:
    owners: Dict[str, EngineLockMode] = field(default_factory=dict)
    queue: Deque[_Waiter] = field(default_factory=deque)


class DeadlockError(Exception):
    """Raised to the requesting transaction chosen as deadlock victim."""

    def __init__(self, txn_id: str, cycle: List[str]):
        super().__init__(f"deadlock: {' -> '.join(cycle)}")
        self.txn_id = txn_id
        self.cycle = cycle


class EngineLockManager:
    """Per-key lock state with blocking continuations.

    ``acquire`` either grants synchronously (returns True), enqueues the
    continuation (returns False), or raises :class:`DeadlockError` when
    granting could never happen because the requester closes a wait cycle.
    The deadlock victim is always the requester -- the policy most engines
    use for the transaction that detects the cycle.
    """

    def __init__(self) -> None:
        self._locks: Dict[Key, _KeyLock] = {}
        self._waits_for: Dict[str, Set[str]] = {}
        # Insertion-ordered (dict keys, not a set): release_all grants
        # blocked waiters key by key, so the iteration order here decides
        # which client resumes first -- it must be a function of the
        # acquisition history, never of the per-process hash salt
        # (PYTHONHASHSEED), or seeded workload runs stop being
        # reproducible across interpreters.
        self._held: Dict[str, Dict[Key, None]] = {}

    # -- acquisition -----------------------------------------------------------

    def acquire(
        self,
        txn_id: str,
        key: Key,
        mode: EngineLockMode,
        on_grant: Callable[[], None],
    ) -> bool:
        lock = self._locks.setdefault(key, _KeyLock())
        if self._grantable(lock, txn_id, mode):
            self._grant(lock, txn_id, mode, key)
            return True
        blockers = self._blockers(lock, txn_id, mode)
        cycle = self._find_deadlock(txn_id, blockers)
        if cycle is not None:
            raise DeadlockError(txn_id, cycle)
        self._waits_for[txn_id] = blockers
        lock.queue.append(_Waiter(txn_id, mode, on_grant))
        return False

    def _grantable(self, lock: _KeyLock, txn_id: str, mode: EngineLockMode) -> bool:
        held = lock.owners.get(txn_id)
        if held is not None:
            if mode is EngineLockMode.SHARED or held is EngineLockMode.EXCLUSIVE:
                return True
            # Upgrade S -> X: only when sole owner and nobody queued ahead.
            return len(lock.owners) == 1 and not lock.queue
        if lock.queue:
            # FIFO fairness: no overtaking of queued waiters.
            return False
        return all(mode.compatible(m) for m in lock.owners.values())

    def _grant(self, lock: _KeyLock, txn_id: str, mode: EngineLockMode, key: Key) -> None:
        held = lock.owners.get(txn_id)
        if held is EngineLockMode.EXCLUSIVE:
            mode = EngineLockMode.EXCLUSIVE
        lock.owners[txn_id] = (
            EngineLockMode.EXCLUSIVE
            if EngineLockMode.EXCLUSIVE in (held, mode)
            else mode
        )
        self._held.setdefault(txn_id, {})[key] = None
        self._waits_for.pop(txn_id, None)

    def _blockers(self, lock: _KeyLock, txn_id: str, mode: EngineLockMode) -> Set[str]:
        blockers = {
            owner
            for owner, held in lock.owners.items()
            if owner != txn_id and not mode.compatible(held)
        }
        blockers.update(w.txn_id for w in lock.queue if w.txn_id != txn_id)
        return blockers

    def _find_deadlock(self, txn_id: str, blockers: Set[str]) -> Optional[List[str]]:
        """DFS over the wait-for graph: does any blocker (transitively)
        wait for the requester?"""
        stack = list(blockers)
        seen: Set[str] = set()
        parent: Dict[str, str] = {b: txn_id for b in blockers}
        while stack:
            node = stack.pop()
            if node == txn_id:
                cycle = [node]
                while cycle[-1] != txn_id or len(cycle) == 1:
                    nxt = parent.get(cycle[-1])
                    if nxt is None:
                        break
                    cycle.append(nxt)
                    if nxt == txn_id:
                        break
                return list(reversed(cycle))
            if node in seen:
                continue
            seen.add(node)
            for succ in self._waits_for.get(node, ()):
                parent.setdefault(succ, node)
                stack.append(succ)
        return None

    # -- release ----------------------------------------------------------------

    def release_all(self, txn_id: str) -> List[Callable[[], None]]:
        """Release every lock of a transaction and return the continuations
        of waiters that became grantable (the caller schedules them)."""
        granted: List[Callable[[], None]] = []
        keys = self._held.pop(txn_id, {})
        for key in self._remove_from_queues(txn_id):
            keys.setdefault(key, None)
        self._waits_for.pop(txn_id, None)
        for key in keys:
            lock = self._locks.get(key)
            if lock is None:
                continue
            lock.owners.pop(txn_id, None)
            granted.extend(self._drain_queue(lock, key))
            if not lock.owners and not lock.queue:
                del self._locks[key]
        return granted

    def _remove_from_queues(self, txn_id: str) -> List[Key]:
        """Remove a transaction from all wait queues; returns the keys whose
        queues changed (their heads may have become grantable), in lock-table
        insertion order (deterministic across hash seeds)."""
        affected: List[Key] = []
        for key, lock in self._locks.items():
            if any(w.txn_id == txn_id for w in lock.queue):
                lock.queue = deque(w for w in lock.queue if w.txn_id != txn_id)
                affected.append(key)
        return affected

    def _drain_queue(self, lock: _KeyLock, key: Key) -> List[Callable[[], None]]:
        granted: List[Callable[[], None]] = []
        while lock.queue:
            waiter = lock.queue[0]
            held = lock.owners.get(waiter.txn_id)
            compatible = all(
                waiter.mode.compatible(m)
                for owner, m in lock.owners.items()
                if owner != waiter.txn_id
            )
            if held is EngineLockMode.EXCLUSIVE:
                compatible = len(lock.owners) == 1
            if not compatible:
                break
            lock.queue.popleft()
            self._grant(lock, waiter.txn_id, waiter.mode, key)
            granted.append(waiter.on_grant)
            if waiter.mode is EngineLockMode.EXCLUSIVE:
                break
        return granted

    # -- introspection --------------------------------------------------------------

    def holds(self, txn_id: str, key: Key) -> Optional[EngineLockMode]:
        lock = self._locks.get(key)
        if lock is None:
            return None
        return lock.owners.get(txn_id)

    def held_keys(self, txn_id: str) -> Set[Key]:
        return set(self._held.get(txn_id, ()))

    def held_keys_ordered(self, txn_id: str) -> List[Key]:
        """Held keys in acquisition order (hash-seed independent)."""
        return list(self._held.get(txn_id, ()))

    def waiting_count(self) -> int:
        return sum(len(lock.queue) for lock in self._locks.values())
