"""Engine-side serializable snapshot isolation (SSI) certifier.

A simplified implementation of the PostgreSQL SSI rules (Ports & Grittner,
VLDB 2012): track rw anti-dependencies between concurrent transactions via
SIREAD records and abort any transaction observed with both an incoming and
an outgoing rw edge (the pivot of a dangerous structure).  The
simplification -- aborting on the pivot unconditionally rather than
checking commit orders -- only causes extra aborts, never an isolation
violation, which is exactly the conservatism the real engine also accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

Key = Hashable


@dataclass
class _SiRead:
    txn: object  # EngineTxn (duck-typed to avoid an import cycle)
    snapshot_ts: float


class SsiTracker:
    """SIREAD table plus rw-conflict flags."""

    def __init__(self) -> None:
        self._readers: Dict[Key, List[_SiRead]] = {}
        #: predicate SIREADs: scans conflict with later writers *creating*
        #: matching rows (phantom-protection, as PostgreSQL's predicate
        #: locks provide).
        self._predicates: List[tuple] = []

    # -- reads ----------------------------------------------------------------

    def register_read(self, txn, key: Key) -> None:
        entries = self._readers.setdefault(key, [])
        if not any(entry.txn is txn for entry in entries):
            entries.append(_SiRead(txn=txn, snapshot_ts=txn.snapshot_ts))

    def on_read(self, txn, key: Key, newer_writers: List[object]) -> Optional[str]:
        """The reader observed a version that ``newer_writers`` have already
        overwritten (committed or staged): record ``txn --rw--> writer``
        edges.  Returns an abort reason when the reader itself becomes a
        dangerous pivot against an already-committed peer."""
        for writer in newer_writers:
            if writer is txn:
                continue
            txn.out_conflict = True
            writer.in_conflict = True
            if writer.committed and writer.out_conflict:
                # The committed writer is a pivot we can no longer abort;
                # the reader must die instead.
                return (
                    f"rw conflict with committed pivot {writer.txn_id}"
                )
        return None

    def register_predicate(self, txn, predicate) -> None:
        self._predicates.append((txn, predicate))

    # -- writes -----------------------------------------------------------------

    def on_write(self, txn, key: Key) -> Optional[str]:
        """The writer is creating a newer version of a record somebody
        read: record ``reader --rw--> txn`` edges.  Predicate SIREADs
        conflict when the written key matches a scanned range."""
        readers = list(self._readers.get(key, ()))
        readers.extend(
            _SiRead(txn=scanner, snapshot_ts=scanner.snapshot_ts)
            for scanner, predicate in self._predicates
            if predicate.matches(key)
        )
        for entry in readers:  # includes committed readers
            reader = entry.txn
            if reader is txn or reader.aborted:
                continue
            if not self._concurrent(reader, txn):
                continue
            reader.out_conflict = True
            txn.in_conflict = True
            if reader.committed and reader.in_conflict:
                return (
                    f"rw conflict turning committed reader "
                    f"{reader.txn_id} into a pivot"
                )
        return None

    @staticmethod
    def _concurrent(a, b) -> bool:
        a_end = a.commit_ts if a.commit_ts is not None else float("inf")
        b_end = b.commit_ts if b.commit_ts is not None else float("inf")
        return a.begin_ts < b_end and b.begin_ts < a_end

    # -- commit ------------------------------------------------------------------

    def commit_check(self, txn) -> Optional[str]:
        if txn.in_conflict and txn.out_conflict:
            return "dangerous structure: pivot with in- and out-rw conflicts"
        return None

    # -- housekeeping ---------------------------------------------------------------

    def forget(self, txn) -> None:
        """Drop the SIREAD entries of an aborted transaction."""
        for key in list(self._readers):
            entries = [e for e in self._readers[key] if e.txn is not txn]
            if entries:
                self._readers[key] = entries
            else:
                del self._readers[key]
        self._predicates = [
            (scanner, predicate)
            for scanner, predicate in self._predicates
            if scanner is not txn
        ]

    def prune(self, oldest_active_begin: float) -> int:
        """Release SIREAD entries of transactions that committed before any
        active transaction began (they can no longer be concurrent with
        anything)."""
        pruned = 0
        for key in list(self._readers):
            kept = [
                entry
                for entry in self._readers[key]
                if not (
                    entry.txn.committed
                    and entry.txn.commit_ts is not None
                    and entry.txn.commit_ts < oldest_active_begin
                )
            ]
            pruned += len(self._readers[key]) - len(kept)
            if kept:
                self._readers[key] = kept
            else:
                del self._readers[key]
        before = len(self._predicates)
        self._predicates = [
            (scanner, predicate)
            for scanner, predicate in self._predicates
            if not (
                scanner.committed
                and scanner.commit_ts is not None
                and scanner.commit_ts < oldest_active_begin
            )
        ]
        pruned += before - len(self._predicates)
        return pruned

    def siread_count(self) -> int:
        return sum(len(v) for v in self._readers.values())
