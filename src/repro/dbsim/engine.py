"""The simulated multi-version DBMS engine.

A single-threaded, discrete-event transactional engine whose concurrency
control is assembled from the same four mechanisms the verifier checks
(Fig. 1): MVCC snapshots (CR), strict 2PL (ME), first-updater-wins (FUW)
and a pluggable commit certifier (SC: SSI, OCC-style validation, or
first-committer-wins).  Clients interact through asynchronous submit calls;
every operation spends sampled network and processing latency, may block on
locks, and mutates or reads the store atomically at one hidden instant
strictly inside its client-observed interval -- the property the whole
interval-based verification approach rests on.

Fault injection (see :mod:`repro.dbsim.faults`) perturbs exactly these code
paths to reproduce the paper's bug classes.
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..core.spec import CertifierKind, IsolationSpec, PG_SERIALIZABLE
from ..core.trace import as_columns, is_tombstone, squash_delta
from .events import EventLoop
from .faults import CLEAN, FaultDice, FaultPlan
from .locks import DeadlockError, EngineLockManager, EngineLockMode
from .mvto import MvtoValidator
from .occ import FirstCommitterValidator, OccValidator
from .snapshots import SnapshotManager
from .ssi import SsiTracker
from .storage import INITIAL_TS, MultiVersionStore

Key = Hashable
ResultCallback = Callable[["OpResult"], None]


@dataclass(frozen=True)
class LatencyModel:
    """Latency distribution of the simulated deployment (seconds).

    Exponential service times with a floor: long tails produce the interval
    overlaps the paper measures, the floor keeps intervals non-degenerate.
    """

    network_mean: float = 2e-4
    read_mean: float = 3e-4
    write_mean: float = 3e-4
    commit_mean: float = 6e-4
    floor: float = 5e-5

    def sample(self, rng: random.Random, mean: float) -> float:
        return max(self.floor, rng.expovariate(1.0 / mean))

    def network(self, rng: random.Random) -> float:
        return self.sample(rng, self.network_mean)


class TxnPhase(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class EngineTxn:
    """Engine-side transaction descriptor."""

    txn_id: str
    client_id: int
    begin_ts: float
    snapshot_ts: Optional[float] = None
    staged: Dict[Key, Dict[str, object]] = field(default_factory=dict)
    read_versions: Dict[Key, float] = field(default_factory=dict)
    in_conflict: bool = False
    out_conflict: bool = False
    phase: TxnPhase = TxnPhase.ACTIVE
    commit_ts: Optional[float] = None
    #: poisoned by a failed operation; only rollback is allowed afterwards.
    must_abort: Optional[str] = None

    @property
    def committed(self) -> bool:
        return self.phase is TxnPhase.COMMITTED

    @property
    def aborted(self) -> bool:
        return self.phase is TxnPhase.ABORTED


@dataclass
class OpResult:
    """What the client observes for one operation."""

    ok: bool
    values: Dict[Key, Optional[Dict[str, object]]] = field(default_factory=dict)
    error: Optional[str] = None


@dataclass
class EngineStats:
    begun: int = 0
    committed: int = 0
    aborted: int = 0
    deadlocks: int = 0
    serialization_failures: int = 0
    reads: int = 0
    writes: int = 0
    lock_waits: int = 0


class SimulatedDBMS:
    """The simulated engine; see module docstring."""

    _PRUNE_EVERY = 512

    def __init__(
        self,
        spec: IsolationSpec = PG_SERIALIZABLE,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        faults: FaultPlan = CLEAN,
        loop: Optional[EventLoop] = None,
        cc_protocol: str = "occ",
    ):
        """``cc_protocol`` selects the concrete engine protocol behind a
        CYCLE-certifier spec: ``"occ"`` (commit-time backward validation,
        FoundationDB/RocksDB-optimistic style) or ``"mvto"`` (write-time
        timestamp-ordering, CockroachDB style)."""
        if cc_protocol not in ("occ", "mvto"):
            raise ValueError(f"unknown cc_protocol {cc_protocol!r}")
        self.cc_protocol = cc_protocol
        self.spec = spec
        self.loop = loop or EventLoop()
        self.latency = latency or LatencyModel()
        self.rng = random.Random(seed)
        self.faults = faults
        self._dice = FaultDice(faults)
        self.store = MultiVersionStore()
        self.locks = EngineLockManager()
        self.snapshots = SnapshotManager(spec.cr)
        self.ssi = SsiTracker() if spec.certifier is CertifierKind.SSI else None
        is_cycle = spec.certifier is CertifierKind.CYCLE
        # Both lock-free protocols validate reads at commit (backward
        # validation); MVTO additionally enforces timestamp order at write
        # time, giving it the early-abort profile of a TO engine.
        self.occ = OccValidator() if is_cycle else None
        self.mvto = MvtoValidator() if is_cycle and cc_protocol == "mvto" else None
        self.fcw = (
            FirstCommitterValidator()
            if spec.certifier is CertifierKind.FIRST_COMMITTER
            else None
        )
        self.stats = EngineStats()
        self._txns: Dict[str, EngineTxn] = {}
        self._staged_by_key: Dict[Key, Dict[str, EngineTxn]] = {}
        self._txn_seq = itertools.count()
        self._commit_epsilon = 1e-9
        self._last_commit_ts = INITIAL_TS
        self._finishes_since_prune = 0
        self.initial_db: Dict[Key, Dict[str, object]] = {}

    # -- population --------------------------------------------------------------

    def load(self, initial: Mapping[Key, object]) -> Dict[Key, Dict[str, object]]:
        """Populate the store before the traced run; returns the normalised
        column images (pass them to the verifier's ``initial_db``)."""
        normalised = {key: as_columns(value) for key, value in initial.items()}
        self.store = MultiVersionStore(normalised)
        self.initial_db = normalised
        return normalised

    # -- transaction lifecycle -------------------------------------------------------

    def begin(self, client_id: int = 0, txn_id: Optional[str] = None) -> EngineTxn:
        if txn_id is None:
            txn_id = f"t{next(self._txn_seq)}"
        txn = EngineTxn(txn_id=txn_id, client_id=client_id, begin_ts=self.loop.now)
        self._txns[txn_id] = txn
        self.stats.begun += 1
        return txn

    # -- operation submission ------------------------------------------------------------

    def submit_read(
        self,
        txn: EngineTxn,
        keys: Sequence[Key],
        callback: ResultCallback,
        for_update: bool = False,
        columns: Optional[Sequence[str]] = None,
        predicate=None,
    ) -> None:
        keys = list(keys)
        self.stats.reads += 1

        def arrive() -> None:
            if not self._admit(txn, callback):
                return
            # Predicate scans resolve their key set at execution time, so
            # they take no per-key locks up front (index/gap locking is not
            # modelled; serializable engines cover scans via SSI/validation).
            plan = (
                []
                if predicate is not None
                else self._read_lock_plan(txn, keys, for_update)
            )
            self._with_locks(
                txn,
                plan,
                lambda: self._schedule_exec(
                    self.latency.read_mean,
                    lambda: self._exec_read(
                        txn, keys, columns, callback, predicate
                    ),
                ),
                lambda reason: self._fail(txn, callback, reason),
            )

        self.loop.schedule_after(self.latency.network(self.rng), arrive)

    def submit_write(
        self,
        txn: EngineTxn,
        writes: Mapping[Key, object],
        callback: ResultCallback,
    ) -> None:
        normalised = {key: as_columns(value) for key, value in writes.items()}
        self.stats.writes += 1

        def arrive() -> None:
            if not self._admit(txn, callback):
                return
            plan = self._write_lock_plan(txn, normalised)
            self._with_locks(
                txn,
                plan,
                lambda: self._schedule_exec(
                    self.latency.write_mean,
                    lambda: self._exec_write(txn, normalised, callback),
                ),
                lambda reason: self._fail(txn, callback, reason),
            )

        self.loop.schedule_after(self.latency.network(self.rng), arrive)

    def submit_commit(self, txn: EngineTxn, callback: ResultCallback) -> None:
        def arrive() -> None:
            if txn.phase is not TxnPhase.ACTIVE:
                callback(OpResult(ok=False, error="transaction not active"))
                return
            self._schedule_exec(
                self.latency.commit_mean, lambda: self._exec_commit(txn, callback)
            )

        self.loop.schedule_after(self.latency.network(self.rng), arrive)

    def submit_abort(self, txn: EngineTxn, callback: ResultCallback) -> None:
        def arrive() -> None:
            self._schedule_exec(
                self.latency.commit_mean, lambda: self._exec_abort(txn, callback)
            )

        self.loop.schedule_after(self.latency.network(self.rng), arrive)

    # -- lock planning --------------------------------------------------------------------

    def _read_lock_plan(
        self, txn: EngineTxn, keys: Sequence[Key], for_update: bool
    ) -> List[Tuple[Key, EngineLockMode]]:
        plan: List[Tuple[Key, EngineLockMode]] = []
        for key in keys:
            if for_update:
                if self._dice.fires(self.faults.forget_write_lock_prob):
                    continue  # Bug 3: the engine forgot the FOR UPDATE lock.
                plan.append((key, EngineLockMode.EXCLUSIVE))
            elif self.spec.me_read_locks:
                plan.append((key, EngineLockMode.SHARED))
        return plan

    def _write_lock_plan(
        self, txn: EngineTxn, writes: Mapping[Key, Dict[str, object]]
    ) -> List[Tuple[Key, EngineLockMode]]:
        if not self.spec.me or self.faults.disable_write_locks:
            return []
        plan: List[Tuple[Key, EngineLockMode]] = []
        for key, columns in writes.items():
            if self.faults.skip_lock_on_noop_update and self._is_noop_update(
                key, columns
            ):
                continue  # Bug 1: a no-op UPDATE acquired no lock.
            plan.append((key, EngineLockMode.EXCLUSIVE))
        return plan

    def _is_noop_update(self, key: Key, columns: Mapping[str, object]) -> bool:
        latest = self.store.latest(key)
        if latest is None:
            return False
        return all(latest.image.get(col) == val for col, val in columns.items())

    # -- lock acquisition driver ---------------------------------------------------------------

    def _with_locks(
        self,
        txn: EngineTxn,
        plan: List[Tuple[Key, EngineLockMode]],
        cont: Callable[[], None],
        on_deadlock: Callable[[str], None],
    ) -> None:
        def acquire(index: int) -> None:
            i = index
            while i < len(plan):
                key, mode = plan[i]
                next_i = i + 1
                try:
                    granted = self.locks.acquire(
                        txn.txn_id,
                        key,
                        mode,
                        on_grant=lambda n=next_i: self.loop.schedule_after(
                            self.latency.floor, lambda: acquire(n)
                        ),
                    )
                except DeadlockError as exc:
                    self.stats.deadlocks += 1
                    on_deadlock(str(exc))
                    return
                if not granted:
                    self.stats.lock_waits += 1
                    return  # resumed by on_grant when the lock frees up
                i = next_i
            cont()

        acquire(0)

    # -- execution ------------------------------------------------------------------------------

    def _schedule_exec(self, mean: float, fn: Callable[[], None]) -> None:
        self.loop.schedule_after(self.latency.sample(self.rng, mean), fn)

    def _admit(self, txn: EngineTxn, callback: ResultCallback) -> bool:
        if txn.phase is not TxnPhase.ACTIVE:
            callback(OpResult(ok=False, error="transaction not active"))
            return False
        if txn.must_abort is not None:
            callback(
                OpResult(
                    ok=False,
                    error=f"transaction must roll back: {txn.must_abort}",
                )
            )
            return False
        return True

    def _fail(self, txn: EngineTxn, callback: ResultCallback, reason: str) -> None:
        txn.must_abort = reason
        self._respond(callback, OpResult(ok=False, error=reason))

    def _respond(self, callback: ResultCallback, result: OpResult) -> None:
        self.loop.schedule_after(
            self.latency.network(self.rng), lambda: callback(result)
        )

    # -- reads ------------------------------------------------------------------------------------

    def _exec_read(
        self,
        txn: EngineTxn,
        keys: Sequence[Key],
        columns: Optional[Sequence[str]],
        callback: ResultCallback,
        predicate=None,
    ) -> None:
        if txn.phase is not TxnPhase.ACTIVE:
            callback(OpResult(ok=False, error="transaction not active"))
            return
        now = self.loop.now
        snapshot_ts = self.snapshots.snapshot_for(txn, now)
        if predicate is not None:
            keys = self._scan_keys(txn, predicate, snapshot_ts)
            if self.ssi is not None:
                self.ssi.register_predicate(txn, predicate)
        values: Dict[Key, Optional[Dict[str, object]]] = {}
        for key in keys:
            image, abort_reason = self._read_key(txn, key, snapshot_ts)
            if abort_reason is not None:
                self._fail(txn, callback, abort_reason)
                return
            if image is not None and columns is not None:
                image = {col: image.get(col) for col in columns}
            values[key] = image
        self._respond(callback, OpResult(ok=True, values=values))

    def _read_key(
        self, txn: EngineTxn, key: Key, snapshot_ts: float
    ) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
        plan = self.faults
        version = self.store.version_at(key, snapshot_ts)
        # -- fault injections on the chosen base version -------------------
        if version is not None and self._dice.fires(plan.stale_read_prob):
            older = self.store.version_before(key, version.commit_ts)
            if older is not None:
                version = older  # Bug 2: served an already-superseded version.
        elif self._dice.fires(plan.future_read_prob):
            latest = self.store.latest(key)
            if latest is not None and latest.commit_ts > snapshot_ts:
                version = latest  # non-repeatable read under snapshot CR
        image = dict(version.image) if version is not None else None
        seen_ts = version.commit_ts if version is not None else INITIAL_TS
        if self._dice.fires(plan.dirty_read_prob):
            dirty = self._some_foreign_staged(txn, key)
            if dirty is not None:
                image = dict(image or {})
                image.update(dirty)  # dirty read of uncommitted data
        own = txn.staged.get(key)
        if own and not self._dice.fires(plan.ignore_own_write_prob):
            from ..core.trace import apply_delta

            image = dict(image or {})
            apply_delta(image, own)  # a txn sees its own earlier writes (Bug 4 off)
        if image is not None and is_tombstone(image):
            image = None  # deleted rows read as absent
        txn.read_versions[key] = seen_ts
        self.store.note_read(key, snapshot_ts)
        if self.ssi is not None:
            self.ssi.register_read(txn, key)
            reason = self.ssi.on_read(txn, key, self._newer_writers(txn, key, snapshot_ts))
            if reason is not None and not self.faults.disable_ssi:
                self.stats.serialization_failures += 1
                return image, f"serialization failure: {reason}"
        return image, None

    def _scan_keys(self, txn: EngineTxn, predicate, snapshot_ts: float):
        """Keys matching a predicate with a version visible at the
        snapshot, plus the transaction's own staged inserts.  The
        ``phantom_skip_prob`` fault silently drops matching rows."""
        matching = []
        for key in self.store.keys():
            if not predicate.matches(key):
                continue
            visible = self.store.version_at(key, snapshot_ts)
            if visible is None or is_tombstone(visible.image):
                continue
            if self._dice.fires(self.faults.phantom_skip_prob):
                continue  # result-set bug: a row goes missing
            matching.append(key)
        for key, delta in txn.staged.items():
            if not predicate.matches(key):
                continue
            # A pure staged tombstone hides the row; a squashed
            # delete+re-insert (marker plus columns) or plain write shows it.
            staged_dead = is_tombstone(delta) and len(delta) == 1
            if staged_dead and key in matching:
                matching.remove(key)
            elif not staged_dead and key not in matching:
                matching.append(key)
        return sorted(matching)

    def _some_foreign_staged(
        self, txn: EngineTxn, key: Key
    ) -> Optional[Dict[str, object]]:
        staged = self._staged_by_key.get(key)
        if not staged:
            return None
        for other_id, other in staged.items():
            if other is not txn and other.phase is TxnPhase.ACTIVE:
                return dict(other.staged.get(key, {}))
        return None

    def _newer_writers(
        self, txn: EngineTxn, key: Key, snapshot_ts: float
    ) -> List[EngineTxn]:
        """Transactions that have overwritten (committed) or are overwriting
        (staged) the version the reader saw -- PostgreSQL's conflict-out
        check considers both."""
        writers: List[EngineTxn] = []
        for version in self.store.versions(key):
            if version.commit_ts <= snapshot_ts:
                continue
            writer = self._txns.get(version.txn_id)
            if writer is not None and writer is not txn:
                writers.append(writer)
        for other in self._staged_by_key.get(key, {}).values():
            if other is not txn and other.phase is TxnPhase.ACTIVE:
                writers.append(other)
        return writers

    # -- writes -------------------------------------------------------------------------------------

    def _exec_write(
        self,
        txn: EngineTxn,
        writes: Mapping[Key, Dict[str, object]],
        callback: ResultCallback,
    ) -> None:
        if txn.phase is not TxnPhase.ACTIVE:
            callback(OpResult(ok=False, error="transaction not active"))
            return
        now = self.loop.now
        snapshot_ts = self.snapshots.snapshot_for(txn, now)
        if self.spec.fuw and not self.faults.disable_fuw:
            for key in writes:
                if self.store.latest_commit_ts(key) > snapshot_ts:
                    self.stats.serialization_failures += 1
                    self._fail(
                        txn,
                        callback,
                        f"serialization failure: concurrent update on {key!r}",
                    )
                    return
        if self.mvto is not None:
            for key in writes:
                reason = self.mvto.check_write(txn, key, self.store)
                if reason is not None:
                    self.stats.serialization_failures += 1
                    self._fail(txn, callback, f"serialization failure: {reason}")
                    return
        for key, columns in writes.items():
            squash_delta(txn.staged.setdefault(key, {}), columns)
            self._staged_by_key.setdefault(key, {})[txn.txn_id] = txn
            if self.ssi is not None:
                reason = self.ssi.on_write(txn, key)
                if reason is not None and not self.faults.disable_ssi:
                    self.stats.serialization_failures += 1
                    self._fail(txn, callback, f"serialization failure: {reason}")
                    return
        self._respond(callback, OpResult(ok=True))

    # -- commit / abort --------------------------------------------------------------------------------

    def _exec_commit(self, txn: EngineTxn, callback: ResultCallback) -> None:
        if txn.phase is not TxnPhase.ACTIVE:
            callback(OpResult(ok=False, error="transaction not active"))
            return
        reason = txn.must_abort
        if reason is None and self.ssi is not None and not self.faults.disable_ssi:
            reason = self.ssi.commit_check(txn)
        if reason is None and self.occ is not None:
            reason = self.occ.validate(txn, self.store)
        if reason is None and self.fcw is not None:
            reason = self.fcw.validate(txn, self.store)
        if reason is not None:
            self.stats.serialization_failures += 1
            self._rollback(txn)
            self._respond(callback, OpResult(ok=False, error=reason))
            return
        now = self.loop.now
        commit_ts = max(now, self._last_commit_ts + self._commit_epsilon)
        self._last_commit_ts = commit_ts
        for key, columns in txn.staged.items():
            self.store.install(key, txn.txn_id, columns, commit_ts)
            staged = self._staged_by_key.get(key)
            if staged is not None:
                staged.pop(txn.txn_id, None)
                if not staged:
                    del self._staged_by_key[key]
        txn.commit_ts = commit_ts
        txn.phase = TxnPhase.COMMITTED
        self.stats.committed += 1
        self._release_locks(txn)
        self._maybe_prune()
        self._respond(callback, OpResult(ok=True))

    def _exec_abort(self, txn: EngineTxn, callback: ResultCallback) -> None:
        if txn.phase is TxnPhase.ACTIVE:
            self._rollback(txn)
        self._respond(callback, OpResult(ok=True))

    def _rollback(self, txn: EngineTxn) -> None:
        txn.phase = TxnPhase.ABORTED
        for key in txn.staged:
            staged = self._staged_by_key.get(key)
            if staged is not None:
                staged.pop(txn.txn_id, None)
                if not staged:
                    del self._staged_by_key[key]
        txn.staged.clear()
        if self.ssi is not None:
            self.ssi.forget(txn)
        self.stats.aborted += 1
        self._release_locks(txn)
        self._maybe_prune()

    def _release_locks(self, txn: EngineTxn) -> None:
        for continuation in self.locks.release_all(txn.txn_id):
            self.loop.schedule_after(self.latency.floor, continuation)

    # -- housekeeping -------------------------------------------------------------------------------------

    def _maybe_prune(self) -> None:
        self._finishes_since_prune += 1
        if self._finishes_since_prune < self._PRUNE_EVERY:
            return
        self._finishes_since_prune = 0
        active_begins = [
            t.begin_ts for t in self._txns.values() if t.phase is TxnPhase.ACTIVE
        ]
        horizon = min(active_begins) if active_begins else self.loop.now
        if self.ssi is not None:
            self.ssi.prune(horizon)
        for txn_id in list(self._txns):
            txn = self._txns[txn_id]
            if txn.phase is TxnPhase.ACTIVE:
                continue
            end = txn.commit_ts if txn.commit_ts is not None else txn.begin_ts
            if end < horizon:
                del self._txns[txn_id]
