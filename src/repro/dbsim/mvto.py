"""Engine-side multi-version timestamp ordering (MVTO).

The second lock-free serializable protocol of Fig. 1 (CockroachDB's
TO+MVCC row).  Transactions are ordered by their snapshot timestamps; the
protocol enforces that order at *write time* instead of at commit:

* **read-timestamp rule**: writing record ``k`` is refused when the version
  visible at the writer's snapshot has already been read by a transaction
  with a *later* snapshot -- installing the new version would invalidate
  that read (the write "travels into the observed past");
* **newer-version rule**: writing is refused when a version newer than the
  writer's snapshot already exists (write-write conflicts resolve in
  timestamp order; we abort rather than apply the Thomas write rule, as
  real engines do).

Reads are plain MVCC snapshot reads and register their timestamp on the
version they touch (``StoredVersion.max_read_ts``).  Committed histories
are conflict-equivalent to the serial order of snapshot timestamps, hence
cycle-free -- which is exactly what the verifier's CYCLE certifier checks.
"""

from __future__ import annotations

from typing import Optional

from .storage import MultiVersionStore


class MvtoValidator:
    """Write-time validation of the two MVTO rules."""

    def check_write(self, txn, key, store: MultiVersionStore) -> Optional[str]:
        if txn.snapshot_ts is None:
            return None
        visible = store.version_at(key, txn.snapshot_ts)
        if visible is not None and visible.max_read_ts > txn.snapshot_ts:
            return (
                f"timestamp order violated on {key!r}: version read at "
                f"{visible.max_read_ts} > writer timestamp {txn.snapshot_ts}"
            )
        latest = store.latest_commit_ts(key)
        if latest > txn.snapshot_ts:
            return (
                f"timestamp order violated on {key!r}: newer version at "
                f"{latest} > writer timestamp {txn.snapshot_ts}"
            )
        return None
