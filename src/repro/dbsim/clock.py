"""Client clock models.

Trace timestamps are taken on the *client*, so what Leopard sees is the
client's clock reading, not the simulator's true time.  The paper relies on
hardware clocks on a single machine or NTP-class synchronisation across
machines (Section IV-A); :class:`SkewedClock` models the residual offset
and jitter of such a service so the robustness of interval-based
verification under imperfect synchronisation can be tested.

All clocks guarantee per-client monotonicity (a client's successive
readings never go backwards), which real client libraries also guarantee
via monotonic-clock fallbacks.
"""

from __future__ import annotations

import random
from typing import Optional


class PerfectClock:
    """A perfectly synchronised client clock: reads true simulated time."""

    def observe(self, true_time: float) -> float:
        return true_time


class SkewedClock:
    """A client clock with a constant offset and bounded random jitter.

    Parameters
    ----------
    offset:
        Constant clock offset in simulated seconds (positive = fast clock).
    jitter:
        Half-width of the uniform per-reading jitter.
    rng:
        Seeded random source; required when ``jitter`` is non-zero.
    """

    def __init__(
        self,
        offset: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if jitter and rng is None:
            raise ValueError("jitter requires a seeded rng")
        self._offset = offset
        self._jitter = jitter
        self._rng = rng
        self._last = float("-inf")

    def observe(self, true_time: float) -> float:
        reading = true_time + self._offset
        if self._jitter:
            reading += self._rng.uniform(-self._jitter, self._jitter)
        # Client libraries never report time going backwards.
        reading = max(reading, self._last)
        self._last = reading
        return reading


def make_client_clocks(
    n_clients: int,
    max_offset: float = 0.0,
    jitter: float = 0.0,
    seed: int = 0,
):
    """Build one clock per client; with zero offset and jitter the clocks
    are perfect (the default for all paper-shape experiments)."""
    if max_offset == 0.0 and jitter == 0.0:
        return [PerfectClock() for _ in range(n_clients)]
    rng = random.Random(seed)
    return [
        SkewedClock(
            offset=rng.uniform(-max_offset, max_offset),
            jitter=jitter,
            rng=random.Random(rng.getrandbits(32)),
        )
        for _ in range(n_clients)
    ]
