"""Simulated DBMS substrate (see DESIGN.md substitution table).

A deterministic discrete-event multi-version engine assembling the four IL
mechanisms of Fig. 1, with client sessions that record interval-based
traces and a fault injector reproducing the paper's bug classes.
"""

from .clock import PerfectClock, SkewedClock, make_client_clocks
from .engine import (
    EngineStats,
    EngineTxn,
    LatencyModel,
    OpResult,
    SimulatedDBMS,
    TxnPhase,
)
from .events import EventLoop
from .faults import CLEAN, FaultPlan
from .locks import DeadlockError, EngineLockManager, EngineLockMode
from .mvto import MvtoValidator
from .occ import FirstCommitterValidator, OccValidator
from .session import AbortOp, ClientSession, DeleteOp, ReadOp, WriteOp, run_single_program
from .storage import MultiVersionStore, StoredVersion

__all__ = [
    "PerfectClock",
    "SkewedClock",
    "make_client_clocks",
    "EngineStats",
    "EngineTxn",
    "LatencyModel",
    "OpResult",
    "SimulatedDBMS",
    "TxnPhase",
    "EventLoop",
    "CLEAN",
    "FaultPlan",
    "DeadlockError",
    "MvtoValidator",
    "FirstCommitterValidator",
    "OccValidator",
    "EngineLockManager",
    "EngineLockMode",
    "AbortOp",
    "DeleteOp",
    "ClientSession",
    "ReadOp",
    "WriteOp",
    "run_single_program",
    "MultiVersionStore",
    "StoredVersion",
]
