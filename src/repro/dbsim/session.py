"""Client sessions: run transaction programs and record interval traces.

A *transaction program* is a Python generator that yields operation
requests and receives their results -- the natural encoding of application
logic such as SmallBank's read-modify-write transactions::

    def transfer(src, dst, amount):
        balances = yield ReadOp([src, dst])
        yield WriteOp({
            src: balances[src]["v"] - amount,
            dst: balances[dst]["v"] + amount,
        })
        # falling off the end commits; ``yield AbortOp()`` rolls back

The session is the paper's *Tracer* client half: it stamps ``ts_bef``
immediately before submitting each request and ``ts_aft`` when the response
arrives, using its (possibly skewed) client clock, and appends the
resulting interval-based trace to its stream.  Nothing in the application
logic changes, which is the black-box property of challenge C1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Mapping, Optional, Sequence

from ..core.trace import OpStatus, Trace, as_columns
from .clock import PerfectClock
from .engine import EngineTxn, OpResult, SimulatedDBMS


@dataclass(frozen=True)
class ReadOp:
    """Read a set of keys, or scan a :class:`~repro.core.trace.KeyRange`
    predicate (optionally a column projection, optionally locking, i.e.
    SELECT ... FOR UPDATE)."""

    keys: Sequence[object] = ()
    columns: Optional[Sequence[str]] = None
    for_update: bool = False
    predicate: Optional[object] = None


@dataclass(frozen=True)
class WriteOp:
    """Write column values to a set of keys."""

    writes: Mapping[object, object]


@dataclass(frozen=True)
class DeleteOp:
    """Delete a set of rows (traced as writes of the tombstone delta)."""

    keys: Sequence[object]


@dataclass(frozen=True)
class AbortOp:
    """Voluntary rollback."""


Program = Generator[object, object, None]
DoneCallback = Callable[["ClientSession", bool], None]


class ClientSession:
    """One client connection: issues programs op by op, records traces."""

    def __init__(
        self,
        client_id: int,
        db: SimulatedDBMS,
        clock=None,
    ):
        self.client_id = client_id
        self.db = db
        self.clock = clock or PerfectClock()
        self.traces: List[Trace] = []
        self.committed = 0
        self.aborted = 0
        self._txn: Optional[EngineTxn] = None
        self._program: Optional[Program] = None
        self._on_done: Optional[DoneCallback] = None
        self._op_index = 0
        self._issue_ts = 0.0

    @property
    def busy(self) -> bool:
        return self._program is not None

    # -- program driving ------------------------------------------------------

    def run_program(
        self,
        program: Program,
        on_done: DoneCallback,
        txn_id: Optional[str] = None,
    ) -> None:
        if self.busy:
            raise RuntimeError(f"client {self.client_id} already has a txn")
        self._txn = self.db.begin(client_id=self.client_id, txn_id=txn_id)
        self._program = program
        self._on_done = on_done
        self._op_index = 0
        self._advance(None)

    def _advance(self, to_send: Optional[object]) -> None:
        try:
            op = self._program.send(to_send)
        except StopIteration:
            self._issue_commit()
            return
        if isinstance(op, ReadOp):
            self._issue_read(op)
        elif isinstance(op, WriteOp):
            self._issue_write(op)
        elif isinstance(op, DeleteOp):
            from ..core.trace import tombstone

            self._issue_write(WriteOp({key: tombstone() for key in op.keys}))
        elif isinstance(op, AbortOp):
            self._issue_abort(voluntary=True)
        else:
            raise TypeError(f"program yielded unknown op {op!r}")

    # -- op issuing -----------------------------------------------------------------

    def _stamp_before(self) -> None:
        self._issue_ts = self.clock.observe(self.db.loop.now)

    def _stamp_after(self) -> float:
        return self.clock.observe(self.db.loop.now)

    def _issue_read(self, op: ReadOp) -> None:
        self._stamp_before()
        self.db.submit_read(
            self._txn,
            op.keys,
            callback=lambda result: self._on_read_done(op, result),
            for_update=op.for_update,
            columns=op.columns,
            predicate=op.predicate,
        )

    def _on_read_done(self, op: ReadOp, result: OpResult) -> None:
        ts_aft = self._stamp_after()
        if result.ok:
            from ..core.trace import tombstone

            # Absent rows (deleted or never inserted) are observed
            # explicitly as the tombstone marker so the verifier can hold
            # the engine to them.
            observed = {
                key: (value if value is not None else tombstone())
                for key, value in result.values.items()
            }
            self.traces.append(
                Trace.read(
                    self._issue_ts,
                    ts_aft,
                    self._txn.txn_id,
                    observed,
                    client_id=self.client_id,
                    op_index=self._op_index,
                    for_update=op.for_update,
                    predicate=op.predicate,
                )
            )
            self._op_index += 1
            self._advance(result.values)
        else:
            self._record_failed(Trace.read, ts_aft)
            self._issue_abort(voluntary=False)

    def _issue_write(self, op: WriteOp) -> None:
        self._stamp_before()
        normalised = {key: as_columns(value) for key, value in op.writes.items()}
        self.db.submit_write(
            self._txn,
            normalised,
            callback=lambda result: self._on_write_done(normalised, result),
        )

    def _on_write_done(self, writes, result: OpResult) -> None:
        ts_aft = self._stamp_after()
        if result.ok:
            self.traces.append(
                Trace.write(
                    self._issue_ts,
                    ts_aft,
                    self._txn.txn_id,
                    writes,
                    client_id=self.client_id,
                    op_index=self._op_index,
                )
            )
            self._op_index += 1
            self._advance(None)
        else:
            self._record_failed(Trace.write, ts_aft)
            self._issue_abort(voluntary=False)

    def _record_failed(self, factory, ts_aft: float) -> None:
        """A failed statement still occupies a client-observed interval but
        carries no data sets."""
        self.traces.append(
            factory(
                self._issue_ts,
                ts_aft,
                self._txn.txn_id,
                {},
                client_id=self.client_id,
                op_index=self._op_index,
                status=OpStatus.FAILED,
            )
        )
        self._op_index += 1

    # -- terminals -------------------------------------------------------------------

    def _issue_commit(self) -> None:
        self._stamp_before()
        self.db.submit_commit(self._txn, callback=self._on_commit_done)

    def _on_commit_done(self, result: OpResult) -> None:
        ts_aft = self._stamp_after()
        if result.ok:
            self.traces.append(
                Trace.commit(
                    self._issue_ts,
                    ts_aft,
                    self._txn.txn_id,
                    client_id=self.client_id,
                    op_index=self._op_index,
                )
            )
            self._finish(True)
        else:
            # A failed COMMIT is an engine-side rollback: the client-visible
            # terminal is an abort over the same interval.
            self.traces.append(
                Trace.abort(
                    self._issue_ts,
                    ts_aft,
                    self._txn.txn_id,
                    client_id=self.client_id,
                    op_index=self._op_index,
                )
            )
            self._finish(False)

    def _issue_abort(self, voluntary: bool) -> None:
        self._stamp_before()
        self.db.submit_abort(self._txn, callback=self._on_abort_done)

    def _on_abort_done(self, result: OpResult) -> None:
        ts_aft = self._stamp_after()
        self.traces.append(
            Trace.abort(
                self._issue_ts,
                ts_aft,
                self._txn.txn_id,
                client_id=self.client_id,
                op_index=self._op_index,
            )
        )
        self._finish(False)

    def _finish(self, committed: bool) -> None:
        if committed:
            self.committed += 1
        else:
            self.aborted += 1
        on_done, self._on_done = self._on_done, None
        self._program = None
        self._txn = None
        if on_done is not None:
            on_done(self, committed)


def run_single_program(
    db: SimulatedDBMS, program: Program, client_id: int = 0
) -> List[Trace]:
    """Test helper: run one program to completion and return its traces."""
    session = ClientSession(client_id, db)
    outcome = {}
    session.run_program(program, lambda _s, ok: outcome.setdefault("ok", ok))
    db.loop.run()
    if "ok" not in outcome:
        raise RuntimeError("program did not complete")
    return session.traces
