"""Discrete-event loop driving the simulated DBMS and its clients.

The paper's experiments run real client threads against a real DBMS; here
both sides are simulated on a deterministic event loop (see DESIGN.md's
substitution table).  Events are ``(time, seq, callback)`` triples ordered
by simulated time; ties resolve in scheduling order, which keeps runs
reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]


class EventLoop:
    """A minimal single-threaded discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callback]] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self._stopped = False

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        heapq.heappush(self._queue, (time, next(self._seq), callback))

    def schedule_after(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, callback)

    def stop(self) -> None:
        """Request the loop to stop before the next event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> int:
        """Process events until the queue drains, ``until`` is reached, or
        :meth:`stop` is called.  Returns the number of events processed."""
        processed = 0
        self._stopped = False
        while self._queue and not self._stopped:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            callback()
            processed += 1
            if processed >= max_events:
                raise RuntimeError(
                    f"event budget exceeded ({max_events}); likely a livelock"
                )
        if until is not None and (not self._queue or self._queue[0][0] > until):
            self.now = max(self.now, until)
        return processed

    @property
    def pending(self) -> int:
        return len(self._queue)
