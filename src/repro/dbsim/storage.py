"""Multi-version record store of the simulated engine.

Every committed write appends a version stamped with its commit timestamp;
reads reconstruct the record image visible at a snapshot timestamp.  Images
are cumulative (column merges folded in at install time) so partial-column
updates -- the TPC-C pattern that Fig. 13 shows defeating dependency
deduction -- behave exactly as in a relational engine.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional

Key = Hashable

#: Commit timestamp of pre-loaded data: before any simulated event.
INITIAL_TS = float("-inf")


@dataclass
class StoredVersion:
    """One committed version inside the engine."""

    commit_ts: float
    txn_id: str
    columns: Dict[str, object]
    image: Dict[str, object]
    #: largest snapshot timestamp that has read this version (MVTO/OCC aid).
    max_read_ts: float = INITIAL_TS


class MultiVersionStore:
    """Append-mostly multi-version storage keyed by record id."""

    def __init__(self, initial: Optional[Mapping[Key, Mapping[str, object]]] = None):
        self._records: Dict[Key, List[StoredVersion]] = {}
        self._commit_keys: Dict[Key, List[float]] = {}
        if initial:
            for key, image in initial.items():
                version = StoredVersion(
                    commit_ts=INITIAL_TS,
                    txn_id="__init__",
                    columns=dict(image),
                    image=dict(image),
                )
                self._records[key] = [version]
                self._commit_keys[key] = [INITIAL_TS]

    # -- reads -----------------------------------------------------------------

    def version_at(self, key: Key, snapshot_ts: float) -> Optional[StoredVersion]:
        """Latest version committed at or before ``snapshot_ts``."""
        versions = self._records.get(key)
        if not versions:
            return None
        idx = bisect.bisect_right(self._commit_keys[key], snapshot_ts) - 1
        if idx < 0:
            return None
        return versions[idx]

    def image_at(self, key: Key, snapshot_ts: float) -> Optional[Dict[str, object]]:
        version = self.version_at(key, snapshot_ts)
        return None if version is None else dict(version.image)

    def latest(self, key: Key) -> Optional[StoredVersion]:
        versions = self._records.get(key)
        return versions[-1] if versions else None

    def latest_commit_ts(self, key: Key) -> float:
        version = self.latest(key)
        return INITIAL_TS if version is None else version.commit_ts

    def versions(self, key: Key) -> List[StoredVersion]:
        return list(self._records.get(key, ()))

    def version_before(self, key: Key, commit_ts: float) -> Optional[StoredVersion]:
        """Latest version strictly older than ``commit_ts`` (used by the
        stale-read fault injector)."""
        versions = self._records.get(key)
        if not versions:
            return None
        idx = bisect.bisect_left(self._commit_keys[key], commit_ts) - 1
        if idx < 0:
            return None
        return versions[idx]

    # -- writes -----------------------------------------------------------------

    def install(
        self, key: Key, txn_id: str, columns: Mapping[str, object], commit_ts: float
    ) -> StoredVersion:
        """Install a committed version.  Commit timestamps are assigned by
        the single-threaded engine at distinct instants, so appends are
        always in order."""
        from ..core.trace import apply_delta

        versions = self._records.setdefault(key, [])
        keys = self._commit_keys.setdefault(key, [])
        if keys and commit_ts < keys[-1]:
            raise ValueError(
                f"out-of-order install on {key!r}: {commit_ts} after {keys[-1]}"
            )
        base = dict(versions[-1].image) if versions else {}
        apply_delta(base, dict(columns))
        version = StoredVersion(
            commit_ts=commit_ts,
            txn_id=txn_id,
            columns=dict(columns),
            image=base,
        )
        versions.append(version)
        keys.append(commit_ts)
        return version

    def note_read(self, key: Key, snapshot_ts: float) -> None:
        version = self.version_at(key, snapshot_ts)
        if version is not None:
            version.max_read_ts = max(version.max_read_ts, snapshot_ts)

    # -- bookkeeping -----------------------------------------------------------------

    def key_count(self) -> int:
        return len(self._records)

    def version_count(self) -> int:
        return sum(len(v) for v in self._records.values())

    def keys(self) -> List[Key]:
        return list(self._records)
