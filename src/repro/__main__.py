"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``run``
    Run a workload on the simulated DBMS and capture per-client trace
    files (JSONL, or binary frames with ``--format binary``) plus the
    initial database image.
``verify``
    Verify a captured trace directory against an isolation spec and print
    the verification report.
``profiles``
    Print the Fig. 1 registry of DBMS isolation-level implementations.
``bench``
    Regenerate the paper's tables/figures (same as ``python -m repro.bench``).

A typical round trip::

    python -m repro run --workload smallbank --dbms postgresql --level SR \
        --txns 2000 --clients 16 --out /tmp/capture
    python -m repro verify /tmp/capture --dbms postgresql --level SR
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core.io import (
    dump_client_streams,
    dump_initial_db,
    load_client_streams,
    load_initial_db,
)
from .core.metrics import MetricsRegistry, render_stats, run_stats
from .core.pipeline import pipeline_from_client_streams
from .core.spec import IsolationLevel, IsolationSpec, profile, supported_dbms
from .core.verifier import Verifier
from .dbsim.engine import SimulatedDBMS
from .dbsim.faults import FaultPlan


def _build_workload(name: str, seed: int):
    from .workloads import (
        BlindW,
        InsertScanWorkload,
        ListAppendWorkload,
        LostUpdateWorkload,
        SmallBank,
        TpcC,
        WriteSkewWorkload,
        YcsbA,
    )

    factories = {
        "blindw-w": lambda: BlindW.w(seed=seed),
        "blindw-rw": lambda: BlindW.rw(seed=seed),
        "blindw-rw+": lambda: BlindW.rw_plus(seed=seed),
        "smallbank": lambda: SmallBank(scale_factor=0.5, seed=seed),
        "tpcc": lambda: TpcC(scale_factor=1, seed=seed),
        "ycsb-a": lambda: YcsbA(seed=seed),
        "ycsb-b": lambda: YcsbA.b(seed=seed),
        "ycsb-c": lambda: YcsbA.c(seed=seed),
        "ycsb-f": lambda: YcsbA.f(seed=seed),
        "list-append": lambda: ListAppendWorkload(seed=seed),
        "insert-scan": lambda: InsertScanWorkload(
            initial_rows=50, insert_ratio=0.35, delete_ratio=0.15, seed=seed
        ),
        "write-skew": lambda: WriteSkewWorkload(seed=seed),
        "lost-update": lambda: LostUpdateWorkload(seed=seed),
    }
    try:
        return factories[name]()
    except KeyError:
        known = ", ".join(sorted(factories))
        raise SystemExit(f"unknown workload {name!r}; known: {known}")


def _resolve_spec(dbms: str, level: str) -> IsolationSpec:
    try:
        iso_level = IsolationLevel(level.upper())
    except ValueError:
        options = ", ".join(lvl.value for lvl in IsolationLevel)
        raise SystemExit(f"unknown isolation level {level!r}; known: {options}")
    try:
        return profile(dbms, iso_level)
    except KeyError as exc:
        raise SystemExit(str(exc))


def _fault_plan(args) -> FaultPlan:
    return FaultPlan(
        skip_lock_on_noop_update="noop-lock" in args.inject,
        stale_read_prob=0.05 if "stale-read" in args.inject else 0.0,
        forget_write_lock_prob=0.5 if "forget-lock" in args.inject else 0.0,
        ignore_own_write_prob=0.5 if "ignore-own-write" in args.inject else 0.0,
        dirty_read_prob=0.05 if "dirty-read" in args.inject else 0.0,
        future_read_prob=0.1 if "future-read" in args.inject else 0.0,
        phantom_skip_prob=0.05 if "phantom" in args.inject else 0.0,
        disable_fuw="no-fuw" in args.inject,
        disable_ssi="no-ssi" in args.inject,
        disable_write_locks="no-locks" in args.inject,
        seed=args.seed,
    )


def cmd_run(args) -> int:
    from .workloads import WorkloadRunner

    spec = _resolve_spec(args.dbms, args.level)
    workload = _build_workload(args.workload, args.seed)
    db = SimulatedDBMS(spec=spec, seed=args.seed, faults=_fault_plan(args))
    runner = WorkloadRunner(
        db,
        workload,
        clients=args.clients,
        seed=args.seed,
        clock_skew=args.clock_skew,
        clock_jitter=args.clock_jitter,
    )
    run = runner.run(txns=args.txns)
    out = Path(args.out)
    dump_client_streams(run.client_streams, out, fmt=args.format)
    dump_initial_db(run.initial_db, out / "initial_db.json")
    print(
        f"{run.workload} on {spec.name}: {run.committed} committed, "
        f"{run.aborted} aborted, {run.trace_count} traces -> {out} "
        f"({args.format})"
    )
    return 0


def cmd_verify(args) -> int:
    import json
    import time

    spec = _resolve_spec(args.dbms, args.level)
    capture = Path(args.capture)
    streams = load_client_streams(capture)
    initial_path = capture / "initial_db.json"
    initial_db = load_initial_db(initial_path) if initial_path.exists() else None
    instrumented = args.stats or args.stats_json is not None
    metrics = MetricsRegistry() if instrumented else None
    if args.parallel > 0:
        from .core.parallel import ParallelVerifier

        verifier = ParallelVerifier(
            spec=spec,
            initial_db=initial_db,
            shards=args.parallel,
            backend=args.parallel_backend,
            stream_merge=args.stream,
            gc_every=args.gc_every,
            exchange_dependencies=not args.no_exchange,
            minimize_candidates=not args.naive_candidates,
            metrics=metrics,
        )
    else:
        verifier = Verifier(
            spec=spec,
            initial_db=initial_db,
            gc_every=args.gc_every,
            exchange_dependencies=not args.no_exchange,
            minimize_candidates=not args.naive_candidates,
            metrics=metrics,
        )
    pipeline = pipeline_from_client_streams(streams, metrics=metrics)
    if instrumented:
        # Charge the pipeline's own sort/dispatch work (the time spent
        # inside the batch iterator, between batches) to the
        # "pipeline-sort" phase; everything inside process_batch() is the
        # mechanisms' time.
        wall_start = time.perf_counter()
        sort_seconds = 0.0
        batches = pipeline.iter_batches()
        while True:
            tick = time.perf_counter()
            batch = next(batches, None)
            sort_seconds += time.perf_counter() - tick
            if batch is None:
                break
            verifier.process_batch(batch)
        report = verifier.finish()
        wall_seconds = time.perf_counter() - wall_start
        document = run_stats(
            report,
            metrics=metrics,
            pipeline_sort_seconds=sort_seconds,
            wall_seconds=wall_seconds,
        )
    else:
        for batch in pipeline.iter_batches():
            verifier.process_batch(batch)
        report = verifier.finish()
        document = None
    print(report.summary())
    if document is not None:
        if args.stats:
            print(render_stats(document))
        if args.stats_json is not None:
            Path(args.stats_json).write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from .service import ServiceConfig, create_gateway

    spec = _resolve_spec(args.dbms, args.level)
    initial_db = (
        load_initial_db(Path(args.initial_db)) if args.initial_db else None
    )
    metrics = MetricsRegistry() if args.stats else None
    config = ServiceConfig(
        spec=spec,
        initial_db=initial_db,
        host=args.host,
        port=args.port,
        status_port=args.status_port,
        ingest_unix=args.unix,
        status_unix=args.status_unix,
        shards=args.parallel,
        backend=args.parallel_backend,
        stream_merge=args.stream,
        gc_every=args.gc_every,
        session_credit=args.credit,
        pending_budget=args.budget,
        status_refresh=args.status_refresh,
        metrics=metrics,
    )
    if args.workers is not None:
        # None keeps ServiceConfig's default (the REPRO_SERVICE_WORKERS
        # escape hatch).
        config.acceptor_workers = max(1, args.workers)

    async def serve() -> int:
        gateway = create_gateway(config)
        await gateway.start()
        print(f"ingest endpoint : {gateway.ingest_endpoint}", flush=True)
        print(f"status endpoint : {gateway.status_endpoint}", flush=True)
        loop = asyncio.get_running_loop()

        def request_drain() -> None:
            asyncio.ensure_future(gateway.drain())

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, request_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        # Runs until a drain arrives -- via signal or the status
        # endpoint's `drain` query.
        await gateway.drained.wait()
        report = gateway.final_report
        print(report.summary())
        print(f"fingerprint     : {gateway.fingerprint}")
        await gateway.aclose()
        return 0 if report.ok else 1

    return asyncio.run(serve())


def cmd_profiles(args) -> int:
    from .bench.experiments import fig1_profiles

    print(fig1_profiles().render())
    return 0


def cmd_bench(args) -> int:
    from .bench.harness import main as bench_main

    return bench_main(args.bench_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Black-box isolation-level verification (Leopard reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a workload and capture traces")
    run_p.add_argument("--workload", default="blindw-rw")
    run_p.add_argument("--dbms", default="postgresql", choices=supported_dbms())
    run_p.add_argument("--level", default="SR")
    run_p.add_argument("--txns", type=int, default=2000)
    run_p.add_argument("--clients", type=int, default=8)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--clock-skew", type=float, default=0.0)
    run_p.add_argument("--clock-jitter", type=float, default=0.0)
    run_p.add_argument(
        "--inject",
        nargs="*",
        default=[],
        choices=[
            "noop-lock",
            "stale-read",
            "forget-lock",
            "ignore-own-write",
            "dirty-read",
            "future-read",
            "phantom",
            "no-fuw",
            "no-ssi",
            "no-locks",
        ],
        help="fault classes to inject into the engine",
    )
    run_p.add_argument("--out", required=True, help="capture directory")
    run_p.add_argument(
        "--format",
        choices=["jsonl", "binary"],
        default="jsonl",
        help="trace capture format (binary = repro.traces/v1b frames)",
    )
    run_p.set_defaults(fn=cmd_run)

    verify_p = sub.add_parser("verify", help="verify a captured trace directory")
    verify_p.add_argument("capture", help="directory written by `run`")
    verify_p.add_argument("--dbms", default="postgresql", choices=supported_dbms())
    verify_p.add_argument("--level", default="SR")
    verify_p.add_argument("--gc-every", type=int, default=512)
    verify_p.add_argument("--no-exchange", action="store_true")
    verify_p.add_argument("--naive-candidates", action="store_true")
    verify_p.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="verify with N key-partitioned shards (0 = serial verifier)",
    )
    verify_p.add_argument(
        "--parallel-backend",
        choices=["process", "inline"],
        default="process",
        help="shard execution backend for --parallel",
    )
    stream_group = verify_p.add_mutually_exclusive_group()
    stream_group.add_argument(
        "--stream",
        dest="stream",
        action="store_true",
        default=None,
        help="stream the parallel certifier merge (overlap certification "
        "with shard compute; default unless REPRO_PARALLEL_STREAM=0)",
    )
    stream_group.add_argument(
        "--no-stream",
        dest="stream",
        action="store_false",
        help="defer the whole certifier merge to finish() (escape hatch; "
        "byte-identical report)",
    )
    verify_p.add_argument(
        "--stats",
        action="store_true",
        help="instrument the run and print the stats block under the report",
    )
    verify_p.add_argument(
        "--stats-json",
        metavar="PATH",
        default=None,
        help="instrument the run and write the repro.stats/v1 JSON document",
    )
    verify_p.set_defaults(fn=cmd_verify)

    serve_p = sub.add_parser(
        "serve", help="run the online verification service (docs/service.md)"
    )
    serve_p.add_argument("--dbms", default="postgresql", choices=supported_dbms())
    serve_p.add_argument("--level", default="SR")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7401)
    serve_p.add_argument("--status-port", type=int, default=7402)
    serve_p.add_argument(
        "--unix", default=None, metavar="PATH",
        help="serve ingest on a Unix socket instead of TCP",
    )
    serve_p.add_argument(
        "--status-unix", default=None, metavar="PATH",
        help="serve status on a Unix socket instead of TCP",
    )
    serve_p.add_argument(
        "--initial-db", default=None, metavar="PATH",
        help="initial database image (initial_db.json from `run`)",
    )
    serve_p.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="verify with N key-partitioned shards (0 = serial verifier)",
    )
    serve_p.add_argument(
        "--parallel-backend", choices=["process", "inline"], default="process"
    )
    serve_stream = serve_p.add_mutually_exclusive_group()
    serve_stream.add_argument(
        "--stream", dest="stream", action="store_true", default=None
    )
    serve_stream.add_argument("--no-stream", dest="stream", action="store_false")
    serve_p.add_argument("--gc-every", type=int, default=512)
    serve_p.add_argument(
        "--credit", type=int, default=8,
        help="TRACES frames a session may have in flight",
    )
    serve_p.add_argument(
        "--budget", type=int, default=200_000,
        help="service-wide pending-event ceiling",
    )
    serve_p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="acceptor worker processes (default: REPRO_SERVICE_WORKERS "
        "or 1 = single-loop gateway)",
    )
    serve_p.add_argument(
        "--status-refresh", type=float, default=0.25, metavar="SECONDS",
        help="multi-worker status snapshot-cache refresh interval",
    )
    serve_p.add_argument(
        "--stats", action="store_true",
        help="instrument the service (metrics query serves the registry)",
    )
    serve_p.set_defaults(fn=cmd_serve)

    profiles_p = sub.add_parser("profiles", help="print the Fig. 1 registry")
    profiles_p.set_defaults(fn=cmd_profiles)

    bench_p = sub.add_parser("bench", help="regenerate paper tables/figures")
    bench_p.add_argument("bench_args", nargs=argparse.REMAINDER)
    bench_p.set_defaults(fn=cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "bench":
        # Hand the whole tail to the bench harness untouched (argparse's
        # REMAINDER mishandles leading options like ``--list``).
        from .bench.harness import main as bench_main

        return bench_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
