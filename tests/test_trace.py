"""Trace model: construction, normalisation, matching."""

import pytest

from repro.core.trace import (
    DEFAULT_COLUMN,
    OpKind,
    OpStatus,
    Trace,
    as_columns,
    reads_match,
)


class TestAsColumns:
    def test_scalar_normalised(self):
        assert as_columns(42) == {DEFAULT_COLUMN: 42}

    def test_mapping_passthrough(self):
        assert as_columns({"a": 1, "b": 2}) == {"a": 1, "b": 2}

    def test_none_scalar(self):
        assert as_columns(None) == {DEFAULT_COLUMN: None}


class TestConstruction:
    def test_read_trace(self):
        trace = Trace.read(1.0, 2.0, "t1", {"x": 5}, client_id=3, op_index=2)
        assert trace.kind is OpKind.READ
        assert trace.reads == {"x": {DEFAULT_COLUMN: 5}}
        assert trace.writes == {}
        assert trace.client_id == 3
        assert trace.op_index == 2
        assert trace.is_data_op and not trace.is_terminal

    def test_write_trace(self):
        trace = Trace.write(1.0, 2.0, "t1", {"x": {"a": 1}})
        assert trace.kind is OpKind.WRITE
        assert trace.writes == {"x": {"a": 1}}

    def test_commit_and_abort(self):
        commit = Trace.commit(1.0, 2.0, "t1")
        abort = Trace.abort(1.0, 2.0, "t1")
        assert commit.is_terminal and abort.is_terminal
        assert commit.kind is OpKind.COMMIT
        assert abort.kind is OpKind.ABORT

    def test_for_update_flag(self):
        trace = Trace.read(1.0, 2.0, "t1", {"x": 5}, for_update=True)
        assert trace.for_update

    def test_failed_status(self):
        trace = Trace.read(1.0, 2.0, "t1", {}, status=OpStatus.FAILED)
        assert trace.status is OpStatus.FAILED

    def test_trace_ids_monotone(self):
        a = Trace.read(0, 1, "t", {})
        b = Trace.read(0, 1, "t", {})
        assert b.trace_id > a.trace_id

    def test_sort_key_ties_broken_by_id(self):
        a = Trace.read(5, 6, "t", {})
        b = Trace.read(5, 6, "u", {})
        assert sorted([b, a], key=Trace.sort_key) == [a, b]

    def test_timestamp_accessors(self):
        trace = Trace.commit(1.5, 2.5, "t1")
        assert trace.ts_bef == 1.5
        assert trace.ts_aft == 2.5

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Trace.read(2.0, 1.0, "t1", {})


class TestReadsMatch:
    def test_exact(self):
        assert reads_match({"v": 1}, {"v": 1})

    def test_subset_of_image(self):
        assert reads_match({"a": 1}, {"a": 1, "b": 2})

    def test_mismatch(self):
        assert not reads_match({"a": 1}, {"a": 2})

    def test_missing_column_matches_none_observation(self):
        assert reads_match({"a": None}, {"b": 2})
        assert not reads_match({"a": 1}, {"b": 2})

    def test_empty_observation_matches_anything(self):
        assert reads_match({}, {"a": 1})
