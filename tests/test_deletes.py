"""Row deletion (tombstones): engine semantics and verification."""

import pytest

from repro import (
    PG_REPEATABLE_READ,
    PG_SERIALIZABLE,
    Trace,
    ViolationKind,
    verify_traces,
)
from repro.core.trace import (
    KeyRange,
    apply_delta,
    is_tombstone,
    reads_match,
    tombstone,
)
from repro.dbsim import (
    FaultPlan,
    ReadOp,
    SimulatedDBMS,
    WriteOp,
    run_single_program,
)
from repro.dbsim.session import DeleteOp


class TestDeltaSemantics:
    def test_tombstone_replaces(self):
        image = {"a": 1, "b": 2}
        apply_delta(image, tombstone())
        assert is_tombstone(image)
        assert "a" not in image

    def test_reinsert_starts_fresh(self):
        image = {}
        apply_delta(image, tombstone())
        apply_delta(image, {"b": 9})
        assert image == {"b": 9}

    def test_ordinary_merge(self):
        image = {"a": 1}
        apply_delta(image, {"b": 2})
        assert image == {"a": 1, "b": 2}

    def test_matching_rules(self):
        assert reads_match(tombstone(), tombstone())
        assert not reads_match(tombstone(), {"a": 1})
        assert not reads_match({"a": 1}, tombstone())


class TestEngineDeletes:
    def make_db(self, spec=PG_SERIALIZABLE, faults=None):
        db = SimulatedDBMS(spec=spec, seed=1, faults=faults or FaultPlan())
        db.load({("r", i): {"a": i} for i in range(3)})
        return db

    def test_deleted_row_reads_absent(self):
        db = self.make_db()

        def program():
            yield DeleteOp([("r", 1)])

        run_single_program(db, program())

        def reader():
            rows = yield ReadOp([("r", 1)])
            assert rows[("r", 1)] is None

        run_single_program(db, reader(), client_id=1)

    def test_own_delete_visible(self):
        db = self.make_db()

        def program():
            yield DeleteOp([("r", 1)])
            rows = yield ReadOp([("r", 1)])
            assert rows[("r", 1)] is None

        run_single_program(db, program())

    def test_reinsert_after_delete(self):
        db = self.make_db()

        def program():
            yield DeleteOp([("r", 1)])
            yield WriteOp({("r", 1): {"a": 99}})
            rows = yield ReadOp([("r", 1)])
            assert rows[("r", 1)] == {"a": 99}

        run_single_program(db, program())

    def test_scan_excludes_deleted(self):
        db = self.make_db()

        def program():
            yield DeleteOp([("r", 1)])

        run_single_program(db, program())

        def scanner():
            rows = yield ReadOp(predicate=KeyRange(("r",), 0, 10))
            assert sorted(rows) == [("r", 0), ("r", 2)]

        run_single_program(db, scanner(), client_id=1)

    def test_scan_respects_own_staged_delete(self):
        db = self.make_db()

        def program():
            yield DeleteOp([("r", 0)])
            rows = yield ReadOp(predicate=KeyRange(("r",), 0, 10))
            assert ("r", 0) not in rows

        run_single_program(db, program())

    def test_aborted_delete_rolls_back(self):
        from repro.dbsim.session import AbortOp

        db = self.make_db()

        def program():
            yield DeleteOp([("r", 1)])
            yield AbortOp()

        run_single_program(db, program())

        def reader():
            rows = yield ReadOp([("r", 1)])
            assert rows[("r", 1)] == {"a": 1}

        run_single_program(db, reader(), client_id=1)


class TestVerifierDeletes:
    INIT = {("r", 0): {"a": 0}, ("r", 1): {"a": 1}}

    def verify(self, traces, spec=PG_SERIALIZABLE):
        return verify_traces(
            sorted(traces, key=Trace.sort_key), spec=spec, initial_db=self.INIT
        )

    def test_clean_delete_then_absent_read(self):
        traces = [
            Trace.write(0.0, 0.1, "t1", {("r", 1): tombstone()}, client_id=0),
            Trace.commit(0.2, 0.3, "t1", client_id=0),
            Trace.read(1.0, 1.1, "t2", {("r", 1): tombstone()}, client_id=1),
            Trace.commit(1.2, 1.3, "t2", client_id=1),
        ]
        assert self.verify(traces).ok

    def test_reading_live_value_after_delete_flagged(self):
        traces = [
            Trace.write(0.0, 0.1, "t1", {("r", 1): tombstone()}, client_id=0),
            Trace.commit(0.2, 0.3, "t1", client_id=0),
            Trace.read(1.0, 1.1, "t2", {("r", 1): {"a": 1}}, client_id=1),
            Trace.commit(1.2, 1.3, "t2", client_id=1),
        ]
        report = self.verify(traces)
        assert not report.ok

    def test_absence_claim_with_live_row_flagged(self):
        traces = [
            Trace.read(0.0, 0.1, "t1", {("r", 1): tombstone()}),
            Trace.commit(0.2, 0.3, "t1"),
        ]
        report = self.verify(traces)
        assert not report.ok
        assert report.violations[0].kind is ViolationKind.PHANTOM

    def test_never_existed_absence_ok(self):
        traces = [
            Trace.read(0.0, 0.1, "t1", {("r", 99): tombstone()}),
            Trace.commit(0.2, 0.3, "t1"),
        ]
        assert self.verify(traces).ok

    def test_scan_missing_deleted_row_ok(self):
        traces = [
            Trace.write(0.0, 0.1, "t1", {("r", 1): tombstone()}, client_id=0),
            Trace.commit(0.2, 0.3, "t1", client_id=0),
            Trace.read(
                1.0,
                1.1,
                "t2",
                {("r", 0): {"a": 0}},
                client_id=1,
                predicate=KeyRange(("r",), 0, 10),
            ),
            Trace.commit(1.2, 1.3, "t2", client_id=1),
        ]
        assert self.verify(traces).ok

    def test_end_to_end_bug4_shape(self):
        """The paper's Bug 4 class: after DELETE + re-INSERT in a new txn,
        a buggy engine serves the deleted state instead of the insert."""
        db = SimulatedDBMS(
            spec=PG_REPEATABLE_READ,
            seed=1,
            faults=FaultPlan(ignore_own_write_prob=1.0),
        )
        init = db.load({("s", 2): {"a": 2, "b": 1}})

        def deleter():
            yield DeleteOp([("s", 2)])

        def insert_and_read():
            yield WriteOp({("s", 2): {"a": 2, "b": 3}})
            yield ReadOp([("s", 2)])

        t1 = run_single_program(db, deleter())
        t2 = run_single_program(db, insert_and_read(), client_id=1)
        report = verify_traces(
            sorted(t1 + t2, key=Trace.sort_key),
            spec=PG_REPEATABLE_READ,
            initial_db=init,
        )
        assert not report.ok


class TestDeleteMixWorkload:
    @pytest.mark.parametrize("seed", [7, 13, 29])
    def test_insert_delete_scan_clean(self, seed):
        from repro.workloads import InsertScanWorkload, run_workload
        from tests.conftest import verify_run

        run = run_workload(
            InsertScanWorkload(
                initial_rows=12, insert_ratio=0.35, delete_ratio=0.25
            ),
            PG_SERIALIZABLE,
            clients=8,
            txns=300,
            seed=seed,
        )
        report = verify_run(run, PG_SERIALIZABLE)
        assert report.ok, [str(v) for v in report.violations[:4]]

    def test_phantom_fault_still_detected_with_deletes(self):
        from repro.workloads import InsertScanWorkload, run_workload
        from tests.conftest import verify_run

        run = run_workload(
            InsertScanWorkload(
                initial_rows=12, insert_ratio=0.3, delete_ratio=0.2
            ),
            PG_SERIALIZABLE,
            clients=8,
            txns=300,
            seed=7,
            faults=FaultPlan(phantom_skip_prob=0.05),
        )
        report = verify_run(run, PG_SERIALIZABLE)
        assert not report.ok
