"""Client sessions: trace recording and failure handling."""

import pytest

from repro.core.spec import PG_REPEATABLE_READ, PG_SERIALIZABLE
from repro.core.trace import OpKind, OpStatus
from repro.dbsim import (
    AbortOp,
    ClientSession,
    ReadOp,
    SimulatedDBMS,
    WriteOp,
    run_single_program,
)


def make_db(spec=PG_SERIALIZABLE, seed=0):
    db = SimulatedDBMS(spec=spec, seed=seed)
    db.load({"x": 0})
    return db


class TestTraceRecording:
    def test_full_transaction_shape(self):
        db = make_db()

        def program():
            yield ReadOp(["x"])
            yield WriteOp({"x": 1})

        traces = run_single_program(db, program())
        assert [t.kind for t in traces] == [
            OpKind.READ,
            OpKind.WRITE,
            OpKind.COMMIT,
        ]
        assert [t.op_index for t in traces] == [0, 1, 2]
        assert all(t.txn_id == traces[0].txn_id for t in traces)

    def test_observed_values_recorded(self):
        db = make_db()

        def program():
            yield ReadOp(["x"])

        traces = run_single_program(db, program())
        assert traces[0].reads == {"x": {"v": 0}}

    def test_written_values_recorded(self):
        db = make_db()

        def program():
            yield WriteOp({"x": 42})

        traces = run_single_program(db, program())
        assert traces[0].writes == {"x": {"v": 42}}

    def test_missing_key_recorded_as_absence_observation(self):
        """Absent rows are observed explicitly as the tombstone marker so
        the verifier can hold the engine to the absence claim."""
        from repro.core.trace import tombstone

        db = make_db()

        def program():
            yield ReadOp(["ghost"])

        traces = run_single_program(db, program())
        assert traces[0].reads == {"ghost": tombstone()}

    def test_for_update_flag_propagates(self):
        db = make_db()

        def program():
            yield ReadOp(["x"], for_update=True)

        traces = run_single_program(db, program())
        assert traces[0].for_update

    def test_client_stream_monotone(self):
        db = make_db()

        def program():
            yield ReadOp(["x"])
            yield WriteOp({"x": 1})
            yield ReadOp(["x"])

        traces = run_single_program(db, program())
        stamps = [t.ts_bef for t in traces]
        assert stamps == sorted(stamps)

    def test_voluntary_abort_trace(self):
        db = make_db()

        def program():
            yield WriteOp({"x": 1})
            yield AbortOp()

        traces = run_single_program(db, program())
        assert traces[-1].kind is OpKind.ABORT


class TestFailureHandling:
    def test_failed_write_then_rollback(self):
        """A serialization failure marks the op FAILED and the session
        rolls the transaction back with an abort trace."""
        db = make_db(spec=PG_REPEATABLE_READ, seed=4)
        from tests.test_engine import collect

        def rmw():
            values = yield ReadOp(["x"])
            yield WriteOp({"x": values["x"]["v"] + 1})

        sessions = collect(db, rmw(), rmw())
        loser = next(s for s in sessions if s.aborted)
        kinds = [t.kind for t in loser.traces]
        assert kinds[-1] is OpKind.ABORT
        failed = [t for t in loser.traces if t.status is OpStatus.FAILED]
        assert failed and failed[0].writes == {}

    def test_session_busy_guard(self):
        db = make_db()
        session = ClientSession(0, db)

        def program():
            yield ReadOp(["x"])

        session.run_program(program(), lambda *_: None)
        with pytest.raises(RuntimeError):
            session.run_program(program(), lambda *_: None)

    def test_unknown_op_rejected(self):
        db = make_db()

        def program():
            yield "not an op"

        session = ClientSession(0, db)
        with pytest.raises(TypeError):
            session.run_program(program(), lambda *_: None)
            db.loop.run()

    def test_commit_abort_counters(self):
        db = make_db()
        session = ClientSession(0, db)

        def ok_program():
            yield ReadOp(["x"])

        session.run_program(ok_program(), lambda *_: None)
        db.loop.run()
        assert session.committed == 1 and session.aborted == 0
