"""Experiment harness: tiny-scale smoke runs of every table/figure."""

import pytest

from repro.bench import EXPERIMENTS, ExperimentTable, run_experiment
from repro.bench.harness import main


class TestHarness:
    def test_table_rendering(self):
        table = ExperimentTable(
            exp_id="t", title="demo", headers=("a", "b")
        )
        table.add_row(1, 0.5)
        table.add_row("x", 1e-6)
        table.add_note("shape holds")
        text = table.render()
        assert "demo" in text and "shape holds" in text
        assert "1.00e-06" in text

    def test_column_access(self):
        table = ExperimentTable(exp_id="t", title="demo", headers=("a", "b"))
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_registry_has_all_paper_experiments(self):
        import repro.bench.experiments  # noqa: F401

        for exp_id in ("fig1", "fig4", "fig10", "fig11", "fig12", "fig13",
                       "fig14", "bugs", "ablation"):
            assert exp_id in EXPERIMENTS

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_cli_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out


class TestExperimentSmoke:
    """Each experiment runs end to end at a tiny scale and produces rows
    with the paper-shape invariants that survive even tiny runs."""

    def test_fig1(self):
        table = run_experiment("fig1")
        assert len(table.rows) >= 25
        assert all(verdict != "NO" for verdict in table.column("matches paper"))

    def test_fig13_deduction_shape(self):
        table = run_experiment("fig13", scale=0.05, seed=1)
        rows = {row[0]: row for row in table.rows}
        blindw_w = next(v for k, v in rows.items() if k == "blindw-w")
        # BlindW-W overlaps are fully deduced (ww via intervals/locks).
        assert blindw_w[3] == pytest.approx(1.0)

    def test_bugs_leopard_finds_all(self):
        table = run_experiment("bugs", scale=0.5, seed=1)
        for row in table.rows:
            assert str(row[1]).startswith("found"), row

    def test_ablation_gc_off_uses_more_memory(self):
        table = run_experiment("ablation", scale=0.1, seed=1)
        rows = {row[0]: row for row in table.rows}
        full = rows["full leopard"]
        no_gc = rows["no garbage collection"]
        assert no_gc[2] > full[2]
