"""Binary trace codec (``repro.traces/v1b``): round-trips, framing, fuzz.

Three equivalences are pinned here: encode/decode round-trips every trace
field exactly (``trace_id`` excepted -- it is process-local by design);
the inlined hot-loop :func:`decode_batch` decodes the identical grammar as
the readable :class:`PayloadDecoder.trace` reference; and the binary file
surface agrees with the JSONL one on whatever it is given.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro import MetricsRegistry
from repro.core.codec import (
    MAGIC,
    BinaryTraceWriter,
    CodecError,
    PayloadDecoder,
    decode_batch,
    dump_traces_binary,
    encode_batch,
    iter_binary_frames,
    load_traces_binary,
    payload_stats,
)
from repro.core.trace import KeyRange, OpStatus, Trace


def trace_fields(trace):
    """Everything serialised about a trace (``trace_id`` is process-local
    and deliberately not on the wire)."""
    return (
        trace.ts_bef,
        trace.ts_aft,
        trace.kind,
        trace.txn_id,
        trace.client_id,
        {k: dict(v) for k, v in trace.reads.items()},
        {k: dict(v) for k, v in trace.writes.items()},
        trace.status,
        trace.for_update,
        trace.predicate,
        trace.op_index,
    )


def assert_same_traces(decoded, originals):
    assert len(decoded) == len(originals)
    for got, want in zip(decoded, originals):
        assert trace_fields(got) == trace_fields(want)


SAMPLE = [
    Trace.read(1.0, 1.5, "t1", {"x": 1, "y": None}, client_id=0),
    Trace.read(
        2.0,
        2.25,
        "t1",
        {("acct", 7): {"bal": 10.5, "open": True}},
        client_id=0,
        op_index=1,
        for_update=True,
    ),
    Trace.write(2.5, 2.75, "t2", {"x": {"v": -3}}, client_id=-1),
    Trace.write(
        3.0, 3.5, "t2", {("tbl", "pk", 0): {"col": "value"}},
        client_id=-1, op_index=1, status=OpStatus.FAILED,
    ),
    Trace.read(
        4.0,
        4.5,
        "t3",
        {("idx", 3): {"v": 1}, ("idx", 4): {"v": 2}},
        client_id=5,
        predicate=KeyRange(prefix=("idx",), lo=0, hi=10),
    ),
    Trace.commit(5.0, 5.5, "t1", client_id=0, op_index=2),
    Trace.abort(6.0, 6.5, "t2", client_id=-1, op_index=2),
    Trace.commit(7.0, 7.5, "t3", client_id=5, op_index=1),
]


class TestBatchRoundTrip:
    def test_sample_round_trip(self):
        decoded = decode_batch(encode_batch(SAMPLE))
        assert_same_traces(decoded, SAMPLE)

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_fresh_trace_ids_monotone(self):
        decoded = decode_batch(encode_batch(SAMPLE))
        ids = [t.trace_id for t in decoded]
        assert ids == sorted(ids)

    def test_memoryview_payload(self):
        decoded = decode_batch(memoryview(encode_batch(SAMPLE)))
        assert_same_traces(decoded, SAMPLE)

    def test_string_interning_dedupes(self):
        repeated = [
            Trace.write(float(i), float(i) + 0.1, "same-txn", {"same-key": i})
            for i in range(50)
        ]
        stats = payload_stats(encode_batch(repeated))
        assert stats["traces"] == 50
        # "same-txn", "same-key" and the default column name, each once.
        assert stats["strings"] == 3

    def test_fast_decoder_matches_reference(self):
        payload = encode_batch(SAMPLE)
        decoder = PayloadDecoder(payload)
        reference = [decoder.trace() for _ in range(decoder.varint())]
        assert decoder.exhausted
        assert_same_traces(decode_batch(payload), reference)


class TestMalformedInput:
    def test_truncated_payload(self):
        payload = encode_batch(SAMPLE)
        with pytest.raises(CodecError):
            decode_batch(payload[:-1])

    def test_trailing_garbage(self):
        payload = encode_batch(SAMPLE)
        with pytest.raises(CodecError):
            decode_batch(payload + b"\x00")

    def test_bad_magic(self):
        with pytest.raises(CodecError):
            list(load_traces_binary(io.BytesIO(b"not a trace file")))

    def test_truncated_frame_length(self):
        blob = MAGIC + b"\x01\x02"
        with pytest.raises(CodecError):
            list(load_traces_binary(io.BytesIO(blob)))

    def test_truncated_frame_payload(self):
        sink = io.BytesIO()
        dump_traces_binary(SAMPLE, sink)
        blob = sink.getvalue()
        with pytest.raises(CodecError):
            list(load_traces_binary(io.BytesIO(blob[:-4])))


class TestFileFraming:
    def test_dump_load_round_trip(self):
        sink = io.BytesIO()
        count = dump_traces_binary(SAMPLE, sink)
        assert count == len(SAMPLE)
        assert sink.getvalue().startswith(MAGIC)
        decoded = list(load_traces_binary(io.BytesIO(sink.getvalue())))
        assert_same_traces(decoded, SAMPLE)

    def test_frame_granularity_preserved(self):
        sink = io.BytesIO()
        dump_traces_binary(SAMPLE, sink, batch_size=3)
        batches = list(iter_binary_frames(io.BytesIO(sink.getvalue())))
        assert [len(b) for b in batches] == [3, 3, 2]

    def test_writer_flushes_on_batch_size(self):
        sink = io.BytesIO()
        with BinaryTraceWriter(sink, batch_size=2) as writer:
            writer.write(SAMPLE[0])
            assert writer.count == 0  # buffered
            writer.write(SAMPLE[1])
            assert writer.count == 2  # flushed one frame
        decoded = list(load_traces_binary(io.BytesIO(sink.getvalue())))
        assert_same_traces(decoded, SAMPLE[:2])

    def test_empty_file_is_just_magic(self):
        sink = io.BytesIO()
        assert dump_traces_binary([], sink) == 0
        assert sink.getvalue() == MAGIC
        assert list(load_traces_binary(io.BytesIO(sink.getvalue()))) == []

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BinaryTraceWriter(io.BytesIO(), batch_size=0)

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        sink = io.BytesIO()
        dump_traces_binary(SAMPLE, sink, batch_size=3, metrics=metrics)
        list(load_traces_binary(io.BytesIO(sink.getvalue()), metrics=metrics))
        counters = {
            name: sum(metrics.counters_with_name(name).values())
            for name in (
                "codec.encode.frames",
                "codec.encode.traces",
                "codec.decode.frames",
                "codec.decode.traces",
            )
        }
        assert counters["codec.encode.frames"] == 3
        assert counters["codec.encode.traces"] == len(SAMPLE)
        assert counters["codec.decode.frames"] == 3
        assert counters["codec.decode.traces"] == len(SAMPLE)


# -- fuzz ---------------------------------------------------------------------

_scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=12),
)
_keys = st.recursive(
    _scalar_values,
    lambda children: st.lists(children, min_size=0, max_size=3).map(tuple),
    max_leaves=6,
)
_columns = st.dictionaries(st.text(max_size=8), _scalar_values, max_size=4)
_sets = st.dictionaries(_keys, _columns, max_size=4)


@st.composite
def _traces(draw):
    ts_bef = draw(st.floats(0.0, 1e9, allow_nan=False))
    ts_aft = ts_bef + draw(st.floats(0.0, 1e3, allow_nan=False))
    choice = draw(st.integers(0, 3))
    txn_id = draw(st.text(max_size=10))
    client_id = draw(st.integers(-(2**31), 2**31))
    op_index = draw(st.integers(0, 2**20))
    if choice == 0:
        predicate = None
        if draw(st.booleans()):
            lo = draw(st.integers(-100, 100))
            predicate = KeyRange(
                prefix=draw(st.lists(_scalar_values, max_size=2).map(tuple)),
                lo=lo,
                hi=lo + draw(st.integers(0, 50)),
            )
        return Trace.read(
            ts_bef,
            ts_aft,
            txn_id,
            draw(_sets),
            client_id=client_id,
            op_index=op_index,
            status=draw(st.sampled_from(list(OpStatus))),
            for_update=draw(st.booleans()),
            predicate=predicate,
        )
    if choice == 1:
        return Trace.write(
            ts_bef,
            ts_aft,
            txn_id,
            draw(_sets),
            client_id=client_id,
            op_index=op_index,
            status=draw(st.sampled_from(list(OpStatus))),
        )
    maker = Trace.commit if choice == 2 else Trace.abort
    return maker(ts_bef, ts_aft, txn_id, client_id=client_id, op_index=op_index)


@settings(max_examples=120, deadline=None)
@given(st.lists(_traces(), max_size=20))
def test_fuzz_round_trip(batch):
    """Any batch of wire-representable traces round-trips field-exactly,
    and the fast decoder agrees with the reference decoder on it."""
    payload = encode_batch(batch)
    decoded = decode_batch(payload)
    assert_same_traces(decoded, batch)
    decoder = PayloadDecoder(payload)
    reference = [decoder.trace() for _ in range(decoder.varint())]
    assert decoder.exhausted
    assert_same_traces(decoded, reference)


@settings(max_examples=60, deadline=None)
@given(st.lists(_traces(), max_size=12), st.integers(1, 8))
def test_fuzz_file_round_trip(batch, batch_size):
    sink = io.BytesIO()
    assert dump_traces_binary(batch, sink, batch_size=batch_size) == len(batch)
    decoded = list(load_traces_binary(io.BytesIO(sink.getvalue())))
    assert_same_traces(decoded, batch)
