"""Isolation specs and the Fig. 1 registry."""

import pytest

from repro.core.spec import (
    DBMS_PROFILES,
    CertifierKind,
    CRLevel,
    IsolationLevel,
    PG_READ_COMMITTED,
    PG_REPEATABLE_READ,
    PG_SERIALIZABLE,
    profile,
    profiles_for,
    supported_dbms,
)


class TestCanonicalSpecs:
    def test_pg_serializable_uses_all_four(self):
        assert PG_SERIALIZABLE.mechanisms() == ("ME", "CR", "FUW", "SC")
        assert PG_SERIALIZABLE.certifier is CertifierKind.SSI

    def test_pg_si(self):
        assert PG_REPEATABLE_READ.mechanisms() == ("ME", "CR", "FUW")
        assert PG_REPEATABLE_READ.cr is CRLevel.TRANSACTION

    def test_pg_rc_statement_level(self):
        assert PG_READ_COMMITTED.cr is CRLevel.STATEMENT
        assert not PG_READ_COMMITTED.fuw


class TestWithout:
    def test_disable_each_mechanism(self):
        spec = PG_SERIALIZABLE
        assert not spec.without("ME").me
        assert spec.without("CR").cr is CRLevel.NONE
        assert not spec.without("FUW").fuw
        assert spec.without("SC").certifier is CertifierKind.NONE

    def test_without_unknown_raises(self):
        with pytest.raises(ValueError):
            PG_SERIALIZABLE.without("XYZ")

    def test_original_untouched(self):
        PG_SERIALIZABLE.without("SC")
        assert PG_SERIALIZABLE.certifier is CertifierKind.SSI


class TestRegistry:
    def test_profile_lookup(self):
        spec = profile("PostgreSQL", IsolationLevel.SERIALIZABLE)
        assert spec is PG_SERIALIZABLE or spec.mechanisms() == (
            "ME",
            "CR",
            "FUW",
            "SC",
        )

    def test_unknown_combination(self):
        with pytest.raises(KeyError):
            profile("sqlite", IsolationLevel.READ_COMMITTED)

    def test_profiles_for(self):
        specs = profiles_for("postgresql")
        assert len(specs) == 3

    def test_supported_dbms(self):
        names = supported_dbms()
        for expected in ("postgresql", "innodb", "tidb", "cockroachdb", "sqlite"):
            assert expected in names

    def test_fig1_rows_present(self):
        # Spot-check distinctive rows of Fig. 1.
        assert profile("sqlite", IsolationLevel.SERIALIZABLE).mechanisms() == ("ME",)
        assert profile("cockroachdb", IsolationLevel.SERIALIZABLE).mechanisms() == (
            "CR",
            "SC",
        )
        assert profile(
            "tidb", IsolationLevel.SNAPSHOT_ISOLATION
        ).certifier is CertifierKind.FIRST_COMMITTER
        # InnoDB repeatable read allows lost updates (no FUW) -- the paper's
        # introductory example of per-DBMS differences.
        assert not profile("innodb", IsolationLevel.REPEATABLE_READ).fuw

    def test_all_specs_well_formed(self):
        for (dbms, level), spec in DBMS_PROFILES.items():
            assert spec.name == f"{dbms}/{level.value}"
            assert spec.level is level
            assert spec.mechanisms(), f"{spec.name} claims no mechanisms"
