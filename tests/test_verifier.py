"""Verifier orchestration: end-to-end behaviour on crafted and generated
histories, dependency derivation (Fig. 9), and API contracts."""

import pytest

from repro import (
    DepType,
    PG_REPEATABLE_READ,
    PG_SERIALIZABLE,
    Trace,
    Verifier,
    verify_traces,
)
from tests.conftest import verify_run

INIT = {"x": {"v": 0}, "y": {"v": 0}}


class TestApiContracts:
    def test_process_after_finish_rejected(self):
        verifier = Verifier(spec=PG_SERIALIZABLE)
        verifier.finish()
        with pytest.raises(RuntimeError):
            verifier.process(Trace.commit(0, 1, "t"))

    def test_trace_after_terminal_rejected(self):
        verifier = Verifier(spec=PG_SERIALIZABLE)
        verifier.process(Trace.commit(0.0, 0.1, "t1"))
        with pytest.raises(ValueError):
            verifier.process(Trace.read(0.2, 0.3, "t1", {}))

    def test_process_all_chains(self):
        traces = [
            Trace.write(0.0, 0.1, "t1", {"x": 1}),
            Trace.commit(0.2, 0.3, "t1"),
        ]
        verifier = Verifier(spec=PG_SERIALIZABLE, initial_db=INIT)
        assert verifier.process_all(traces) is verifier

    def test_empty_stream(self):
        report = verify_traces([], spec=PG_SERIALIZABLE)
        assert report.ok
        assert report.stats.traces_processed == 0

    def test_empty_transaction(self):
        report = verify_traces(
            [Trace.commit(0.0, 0.1, "t1")], spec=PG_SERIALIZABLE
        )
        assert report.ok

    def test_failed_ops_carry_no_data(self):
        from repro.core.trace import OpStatus

        traces = [
            Trace.write(0.0, 0.1, "t1", {}, status=OpStatus.FAILED),
            Trace.abort(0.2, 0.3, "t1"),
        ]
        report = verify_traces(traces, spec=PG_SERIALIZABLE, initial_db=INIT)
        assert report.ok
        assert report.stats.txns_aborted == 1

    def test_stats_counted(self):
        traces = [
            Trace.write(0.0, 0.1, "t1", {"x": 1}),
            Trace.commit(0.2, 0.3, "t1"),
            Trace.read(0.5, 0.6, "t2", {"x": 1}, client_id=1),
            Trace.commit(0.7, 0.8, "t2", client_id=1),
        ]
        report = verify_traces(traces, spec=PG_SERIALIZABLE, initial_db=INIT)
        assert report.stats.traces_processed == 4
        assert report.stats.txns_committed == 2
        assert report.stats.reads_checked == 1
        assert report.stats.deps_wr == 1


class TestRwDerivation:
    """Fig. 9: rw edges derived from wr + confirmed version adjacency."""

    def history(self):
        return [
            # t_r reads the initial version of x.
            Trace.read(0.0, 0.1, "t_r", {"x": 0}, client_id=0),
            Trace.commit(0.2, 0.3, "t_r", client_id=0),
            # t_w later installs the successor version.
            Trace.write(0.5, 0.6, "t_w", {"x": 1}, client_id=1),
            Trace.commit(0.7, 0.8, "t_w", client_id=1),
        ]

    def test_rw_from_initial_read(self):
        verifier = Verifier(spec=PG_SERIALIZABLE, initial_db=INIT, gc_every=0)
        verifier.process_all(self.history())
        verifier.finish()
        assert DepType.RW in verifier.state.graph.edge_types("t_r", "t_w")

    def test_rw_when_reader_commits_after_writer(self):
        traces = [
            Trace.write(0.0, 0.1, "t_a", {"x": 1}, client_id=0),
            Trace.commit(0.2, 0.3, "t_a", client_id=0),
            # Reader takes its snapshot before t_b commits, reads t_a's
            # version, and commits last.
            Trace.read(0.4, 0.5, "t_r", {"x": 1}, client_id=1),
            Trace.write(0.6, 0.7, "t_b", {"x": 2}, client_id=2),
            Trace.commit(0.8, 0.9, "t_b", client_id=2),
            Trace.commit(1.0, 1.1, "t_r", client_id=1),
        ]
        verifier = Verifier(spec=PG_REPEATABLE_READ, initial_db=INIT, gc_every=0)
        verifier.process_all(sorted(traces, key=Trace.sort_key))
        report = verifier.finish()
        assert report.ok
        graph = verifier.state.graph
        assert DepType.WR in graph.edge_types("t_a", "t_r")
        assert DepType.RW in graph.edge_types("t_r", "t_b")
        assert DepType.WW in graph.edge_types("t_a", "t_b")


class TestAblationModes:
    def test_no_exchange_still_sound(self, blindw_rw_run):
        report = verify_run(
            blindw_rw_run, PG_SERIALIZABLE, exchange_dependencies=False
        )
        assert report.ok

    def test_naive_candidates_still_sound(self, blindw_rw_run):
        report = verify_run(
            blindw_rw_run, PG_SERIALIZABLE, minimize_candidates=False
        )
        assert report.ok

    def test_naive_candidates_weaker(self):
        """The naive all-versions candidate set cannot flag stale reads --
        the minimisation is what gives CR its teeth."""
        traces = [
            Trace.write(0.0, 0.1, "t1", {"x": 1}),
            Trace.commit(0.2, 0.3, "t1"),
            Trace.read(1.0, 1.1, "t2", {"x": 0}, client_id=1),  # stale!
            Trace.commit(1.2, 1.3, "t2", client_id=1),
        ]
        strict = verify_traces(
            sorted(traces, key=Trace.sort_key),
            spec=PG_SERIALIZABLE,
            initial_db=INIT,
        )
        naive = verify_traces(
            sorted(traces, key=Trace.sort_key),
            spec=PG_SERIALIZABLE,
            initial_db=INIT,
            minimize_candidates=False,
        )
        assert not strict.ok
        assert naive.ok  # the naive set contains the stale version


class TestCleanWorkloads:
    def test_blindw_clean(self, blindw_rw_run):
        assert verify_run(blindw_rw_run, PG_SERIALIZABLE).ok

    def test_smallbank_clean(self, smallbank_run):
        assert verify_run(smallbank_run, PG_SERIALIZABLE).ok

    def test_beta_small_on_clean_runs(self, blindw_rw_run):
        report = verify_run(blindw_rw_run, PG_SERIALIZABLE)
        assert 0.0 <= report.stats.beta < 0.3
