"""Incremental topology (Pearce-Kelly): correctness against brute force."""

import random

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.core.topo import IncrementalTopology


class TestBasics:
    def test_add_nodes(self):
        topo = IncrementalTopology()
        topo.add_node("a")
        topo.add_node("b")
        assert "a" in topo and "b" in topo
        assert len(topo) == 2

    def test_add_node_idempotent(self):
        topo = IncrementalTopology()
        topo.add_node("a")
        order = topo.order_of("a")
        topo.add_node("a")
        assert topo.order_of("a") == order

    def test_simple_edge(self):
        topo = IncrementalTopology()
        assert topo.add_edge("a", "b") is None
        assert topo.has_edge("a", "b")
        assert topo.order_of("a") < topo.order_of("b")

    def test_duplicate_edge_noop(self):
        topo = IncrementalTopology()
        topo.add_edge("a", "b")
        assert topo.add_edge("a", "b") is None
        assert topo.edge_count == 1

    def test_self_loop_is_cycle(self):
        topo = IncrementalTopology()
        assert topo.add_edge("a", "a") == ["a"]

    def test_two_cycle_detected(self):
        topo = IncrementalTopology()
        assert topo.add_edge("a", "b") is None
        cycle = topo.add_edge("b", "a")
        assert cycle is not None
        assert set(cycle) == {"a", "b"}
        # The rejected edge is not inserted.
        assert not topo.has_edge("b", "a")

    def test_long_cycle_path_reported(self):
        topo = IncrementalTopology()
        for u, v in [("a", "b"), ("b", "c"), ("c", "d")]:
            assert topo.add_edge(u, v) is None
        cycle = topo.add_edge("d", "a")
        assert cycle is not None
        # Path a..d through forward edges, closed by d -> a.
        assert cycle[0] == "a" and cycle[-1] == "d"

    def test_back_edge_triggers_reorder(self):
        topo = IncrementalTopology()
        topo.add_node("a")
        topo.add_node("b")
        # b was added after a, so ord[b] > ord[a]; inserting b -> a forces a
        # local reorder rather than a cycle.
        assert topo.add_edge("b", "a") is None
        assert topo.order_of("b") < topo.order_of("a")
        assert topo.verify_invariant()

    def test_remove_node(self):
        topo = IncrementalTopology()
        topo.add_edge("a", "b")
        topo.add_edge("b", "c")
        topo.remove_node("b")
        assert "b" not in topo
        assert topo.successors("a") == set()
        assert topo.in_degree("c") == 0
        # a -> c can now go either way.
        assert topo.add_edge("c", "a") is None

    def test_in_degree_and_neighbours(self):
        topo = IncrementalTopology()
        topo.add_edge("a", "c")
        topo.add_edge("b", "c")
        assert topo.in_degree("c") == 2
        assert topo.predecessors("c") == {"a", "b"}
        assert topo.successors("a") == {"c"}

    def test_topological_order_valid(self):
        topo = IncrementalTopology()
        edges = [(1, 2), (1, 3), (3, 4), (2, 4), (4, 5)]
        for u, v in edges:
            assert topo.add_edge(u, v) is None
        order = topo.topological_order()
        position = {node: i for i, node in enumerate(order)}
        for u, v in edges:
            assert position[u] < position[v]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)),
        min_size=1,
        max_size=60,
    )
)
def test_matches_networkx(edge_list):
    """Randomised cross-check: the incremental oracle accepts exactly the
    edges a from-scratch DAG check would accept."""
    topo = IncrementalTopology()
    reference = nx.DiGraph()
    for u, v in edge_list:
        reference.add_node(u)
        reference.add_node(v)
        would_cycle = u == v or (
            reference.has_node(u)
            and reference.has_node(v)
            and nx.has_path(reference, v, u)
        )
        cycle = topo.add_edge(u, v)
        if would_cycle:
            assert cycle is not None, (u, v)
        else:
            assert cycle is None, (u, v)
            reference.add_edge(u, v)
        assert topo.verify_invariant()
    assert topo.edge_count == reference.number_of_edges()


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_random_insert_remove_keeps_invariant(seed):
    rng = random.Random(seed)
    topo = IncrementalTopology()
    nodes = list(range(10))
    for _ in range(80):
        action = rng.random()
        if action < 0.7:
            topo.add_edge(rng.choice(nodes), rng.choice(nodes))
        else:
            topo.remove_node(rng.choice(nodes))
        assert topo.verify_invariant()


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_interleaved_cycle_rejections_and_reorders(seed):
    """Regression for the ``_delta_f`` scratch list: cycle-rejecting
    insertions fill the forward-search scratch and bail before the
    reorder consumes it, so interleaving them with back-edge insertions
    (which trigger the Pearce-Kelly reorder) must not let one search's
    leftovers poison the next reorder.  Cross-checked against networkx
    the whole way."""
    rng = random.Random(seed)
    topo = IncrementalTopology()
    reference = nx.DiGraph()
    nodes = list(range(9))
    for node in nodes:
        topo.add_node(node)
        reference.add_node(node)
    for step in range(120):
        u, v = rng.choice(nodes), rng.choice(nodes)
        if step % 3 == 2:
            # Bias towards back edges (ord[v] < ord[u]): these force
            # either a cycle rejection or an affected-region reorder,
            # the two paths that share the scratch list.
            if topo.order_of(v) > topo.order_of(u):
                u, v = v, u
        would_cycle = u == v or nx.has_path(reference, v, u)
        cycle = topo.add_edge(u, v)
        if would_cycle:
            assert cycle is not None, (step, u, v)
            # Reported path must be a real forward path closed by (u, v).
            if len(cycle) > 1:
                assert cycle[0] == v and cycle[-1] == u
                for a, b in zip(cycle, cycle[1:]):
                    assert topo.has_edge(a, b)
        else:
            assert cycle is None, (step, u, v)
            reference.add_edge(u, v)
        assert topo.verify_invariant()
    assert topo.edge_count == reference.number_of_edges()
