"""Unit tests for the engine-side mechanism helpers (snapshots, SSI, OCC,
first-committer) and the bench metrics utilities."""

from types import SimpleNamespace


from repro.bench.metrics import MemorySeries, Timer, time_call
from repro.core.spec import CRLevel
from repro.dbsim.occ import FirstCommitterValidator, OccValidator
from repro.dbsim.snapshots import SnapshotManager
from repro.dbsim.ssi import SsiTracker
from repro.dbsim.storage import INITIAL_TS, MultiVersionStore


def txn(**kwargs):
    defaults = dict(
        txn_id="t",
        snapshot_ts=None,
        begin_ts=0.0,
        commit_ts=None,
        committed=False,
        aborted=False,
        in_conflict=False,
        out_conflict=False,
        staged={},
        read_versions={},
    )
    defaults.update(kwargs)
    return SimpleNamespace(**defaults)


class TestSnapshotManager:
    def test_transaction_level_pins(self):
        manager = SnapshotManager(CRLevel.TRANSACTION)
        t = txn()
        assert manager.snapshot_for(t, 1.0) == 1.0
        assert manager.snapshot_for(t, 9.0) == 1.0  # pinned

    def test_statement_level_advances(self):
        manager = SnapshotManager(CRLevel.STATEMENT)
        t = txn()
        assert manager.snapshot_for(t, 1.0) == 1.0
        assert manager.snapshot_for(t, 9.0) == 9.0

    def test_none_behaves_like_statement(self):
        manager = SnapshotManager(CRLevel.NONE)
        t = txn()
        assert manager.snapshot_for(t, 5.0) == 5.0
        assert manager.snapshot_for(t, 7.0) == 7.0


class TestSsiTracker:
    def test_pivot_aborted_at_commit(self):
        tracker = SsiTracker()
        pivot = txn(txn_id="p", in_conflict=True, out_conflict=True)
        assert tracker.commit_check(pivot) is not None
        clean = txn(txn_id="c", in_conflict=True)
        assert tracker.commit_check(clean) is None

    def test_on_write_marks_concurrent_readers(self):
        tracker = SsiTracker()
        reader = txn(txn_id="r", snapshot_ts=1.0, begin_ts=0.5)
        writer = txn(txn_id="w", snapshot_ts=1.2, begin_ts=0.6)
        tracker.register_read(reader, "x")
        assert tracker.on_write(writer, "x") is None
        assert reader.out_conflict and writer.in_conflict

    def test_non_concurrent_reader_ignored(self):
        tracker = SsiTracker()
        reader = txn(
            txn_id="r",
            snapshot_ts=1.0,
            begin_ts=0.5,
            commit_ts=2.0,
            committed=True,
        )
        writer = txn(txn_id="w", snapshot_ts=10.0, begin_ts=9.0)
        tracker.register_read(reader, "x")
        tracker.on_write(writer, "x")
        assert not writer.in_conflict

    def test_forget_and_prune(self):
        tracker = SsiTracker()
        old = txn(
            txn_id="old",
            snapshot_ts=1.0,
            begin_ts=0.5,
            commit_ts=2.0,
            committed=True,
        )
        young = txn(txn_id="young", snapshot_ts=5.0, begin_ts=4.5)
        tracker.register_read(old, "x")
        tracker.register_read(young, "x")
        assert tracker.siread_count() == 2
        assert tracker.prune(oldest_active_begin=3.0) == 1
        tracker.forget(young)
        assert tracker.siread_count() == 0

    def test_register_read_idempotent(self):
        tracker = SsiTracker()
        reader = txn(txn_id="r", snapshot_ts=1.0, begin_ts=0.5)
        tracker.register_read(reader, "x")
        tracker.register_read(reader, "x")
        assert tracker.siread_count() == 1


class TestOccValidator:
    def test_unchanged_reads_pass(self):
        store = MultiVersionStore({"x": {"v": 0}})
        t = txn(read_versions={"x": INITIAL_TS})
        assert OccValidator().validate(t, store) is None

    def test_superseded_read_fails(self):
        store = MultiVersionStore({"x": {"v": 0}})
        t = txn(read_versions={"x": INITIAL_TS})
        store.install("x", "w", {"v": 1}, commit_ts=1.0)
        assert OccValidator().validate(t, store) is not None


class TestFirstCommitter:
    def test_conflicting_write_fails(self):
        store = MultiVersionStore({"x": {"v": 0}})
        store.install("x", "w", {"v": 1}, commit_ts=5.0)
        t = txn(snapshot_ts=1.0, staged={"x": {"v": 9}})
        assert FirstCommitterValidator().validate(t, store) is not None

    def test_clean_write_passes(self):
        store = MultiVersionStore({"x": {"v": 0}})
        t = txn(snapshot_ts=1.0, staged={"x": {"v": 9}})
        assert FirstCommitterValidator().validate(t, store) is None

    def test_no_snapshot_passes(self):
        store = MultiVersionStore()
        t = txn(snapshot_ts=None, staged={"x": {"v": 9}})
        assert FirstCommitterValidator().validate(t, store) is None


class TestMetrics:
    def test_timer(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0

    def test_time_call(self):
        elapsed, result = time_call(lambda: 42)
        assert result == 42 and elapsed >= 0

    def test_memory_series(self):
        series = MemorySeries(sample_every=2)
        values = iter([10, 20, 5])
        probe = lambda: next(values)
        series.observe(probe)  # below period: no sample
        series.observe(probe)  # samples 10
        series.observe(probe)
        series.observe(probe)  # samples 20
        series.finish(probe)   # samples 5
        assert series.peak == 20
        assert series.final == 5


class TestYcsbVariants:
    def test_variant_factories(self):
        from repro.workloads import YcsbA

        assert YcsbA.b().read_ratio == 0.95
        assert YcsbA.c().read_ratio == 1.0
        assert YcsbA.f().rmw_ratio == 0.5
        assert "ycsb-f" in YcsbA.f().name

    def test_ycsb_f_produces_rmw(self):
        import random

        from repro.dbsim.session import ReadOp, WriteOp
        from repro.workloads import YcsbA

        workload = YcsbA.f(records=50)
        rng = random.Random(0)
        saw_rmw = False
        for _ in range(20):
            program = workload.transaction(rng)
            ops = []
            try:
                op = program.send(None)
                while True:
                    ops.append(op)
                    if isinstance(op, ReadOp):
                        op = program.send({k: {"v": 0} for k in op.keys})
                    else:
                        op = program.send(None)
            except StopIteration:
                pass
            for first, second in zip(ops, ops[1:]):
                if (
                    isinstance(first, ReadOp)
                    and isinstance(second, WriteOp)
                    and list(first.keys)[0] in second.writes
                ):
                    saw_rmw = True
        assert saw_rmw

    def test_ycsb_variants_verify_clean(self):
        from repro import PG_REPEATABLE_READ
        from repro.workloads import YcsbA, run_workload
        from tests.conftest import verify_run

        for workload in (YcsbA.b(records=200), YcsbA.f(records=200)):
            run = run_workload(
                workload, PG_REPEATABLE_READ, clients=8, txns=200, seed=6
            )
            assert verify_run(run, PG_REPEATABLE_READ).ok

    def test_breakdown_timing_collected(self):
        from repro import PG_SERIALIZABLE
        from repro.workloads import BlindW, run_workload
        from tests.conftest import verify_run

        run = run_workload(
            BlindW.rw(keys=64), PG_SERIALIZABLE, clients=4, txns=100, seed=6
        )
        report = verify_run(run, PG_SERIALIZABLE)
        buckets = report.stats.mechanism_seconds
        assert set(buckets) >= {"CR", "ME", "FUW"}
        assert all(v >= 0 for v in buckets.values())
