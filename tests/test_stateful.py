"""Hypothesis stateful tests: structural invariants under random op
sequences.

* :class:`EngineLockManager` -- at no point may two transactions hold
  incompatible locks on the same key, blocked transactions stay blocked
  until a release, and every grant callback fires at most once.
* :class:`VersionChain` -- chain order stays sorted by effective install,
  cumulative images always equal the replay of deltas in chain order, and
  pruning never changes what a later snapshot would read.
"""


from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.versions import VersionChain
from repro.dbsim.locks import DeadlockError, EngineLockManager, EngineLockMode

KEYS = ["k0", "k1", "k2"]
TXNS = ["a", "b", "c", "d"]


class LockManagerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.locks = EngineLockManager()
        #: (txn, key) -> granted mode, tracked through callbacks.
        self.held = {}
        self.blocked = set()

    def _on_grant(self, txn, key, mode):
        def grant():
            self.blocked.discard((txn, key))
            current = self.held.get((txn, key))
            if current is not EngineLockMode.EXCLUSIVE:
                self.held[(txn, key)] = mode

        return grant

    @rule(
        txn=st.sampled_from(TXNS),
        key=st.sampled_from(KEYS),
        exclusive=st.booleans(),
    )
    def acquire(self, txn, key, exclusive):
        if (txn, key) in self.blocked:
            return  # a real client waits; it cannot issue another request
        if any(t == txn and (t, k) in self.blocked for t in TXNS for k in KEYS):
            return  # the txn is blocked on something else
        mode = EngineLockMode.EXCLUSIVE if exclusive else EngineLockMode.SHARED
        try:
            granted = self.locks.acquire(txn, key, mode, self._on_grant(txn, key, mode))
        except DeadlockError:
            return
        if granted:
            current = self.held.get((txn, key))
            if mode is EngineLockMode.EXCLUSIVE or current is None:
                if current is not EngineLockMode.EXCLUSIVE:
                    self.held[(txn, key)] = mode
        else:
            self.blocked.add((txn, key))

    @rule(txn=st.sampled_from(TXNS))
    def release(self, txn):
        for key in KEYS:
            self.held.pop((txn, key), None)
            self.blocked.discard((txn, key))
        for grant in self.locks.release_all(txn):
            grant()

    @invariant()
    def no_incompatible_holders(self):
        for key in KEYS:
            holders = [
                (txn, mode)
                for (txn, k), mode in self.held.items()
                if k == key
            ]
            exclusive = [t for t, m in holders if m is EngineLockMode.EXCLUSIVE]
            if exclusive:
                assert len(holders) == 1, (
                    f"{key}: exclusive holder {exclusive} coexists with "
                    f"{holders}"
                )

    @invariant()
    def model_matches_manager(self):
        for (txn, key), mode in self.held.items():
            actual = self.locks.holds(txn, key)
            assert actual is not None, f"{txn} lost its lock on {key}"


class VersionChainMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.chain = VersionChain("x", initial_image={"v": 0})
        self.clock = 0.0
        self.counter = 0
        self.active = {}

    def _tick(self, width=0.5):
        start = self.clock
        self.clock += width
        return Interval(start, self.clock)

    @rule()
    def stage_and_commit(self):
        txn = f"t{self.counter}"
        self.counter += 1
        install = self._tick()
        self.chain.stage_write(txn, {"v": self.counter}, install)
        commit = self._tick()
        self.chain.commit_txn(txn, commit)

    @rule()
    def stage_and_abort(self):
        txn = f"t{self.counter}"
        self.counter += 1
        self.chain.stage_write(txn, {"v": -self.counter}, self._tick())
        self.chain.abort_txn(txn)

    @rule(horizon_back=st.floats(0.0, 5.0))
    def prune(self, horizon_back):
        horizon_ts = max(0.0, self.clock - horizon_back)
        before = self.chain.candidate_set(Interval(self.clock, self.clock + 1))
        before_values = {v.columns["v"] for v in before}
        self.chain.prune_garbage(
            Interval(horizon_ts, horizon_ts), lambda txn: True
        )
        after = self.chain.candidate_set(Interval(self.clock, self.clock + 1))
        after_values = {v.columns["v"] for v in after}
        # Pruning must not change what a now-or-later snapshot can read.
        assert after_values == before_values

    @invariant()
    def chain_sorted_by_effective_install(self):
        stamps = [
            v.effective_install.ts_aft for v in self.chain.committed_versions()
        ]
        assert stamps == sorted(stamps)

    @invariant()
    def images_are_replay_of_deltas(self):
        image = {}
        for version in self.chain.committed_versions():
            image.update(version.columns)
            for col, val in version.columns.items():
                assert version.image[col] == val

    @invariant()
    def aborted_never_committed(self):
        committed_txns = {v.txn_id for v in self.chain.committed_versions()}
        assert not any(
            v.txn_id in committed_txns for v in self.chain.aborted_versions()
        )


TestLockManagerStateful = LockManagerMachine.TestCase
TestLockManagerStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestVersionChainStateful = VersionChainMachine.TestCase
TestVersionChainStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
