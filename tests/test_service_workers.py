"""The multi-loop ingest tier: cross-worker cursor handoff, poison
isolation across acceptor workers, and drain-fingerprint identity.

The single-loop ``IngestGateway`` stays the reference oracle (PR 9 keeps
its code verbatim behind ``create_gateway``); these tests pin the sharded
tier to the same observable behavior.  The fingerprint-identity matrix
runs real subprocesses (like ``tests/test_hashseed.py``) so each gateway
gets a clean interpreter to fork its acceptor workers from.
"""

import asyncio
import json
import os
import subprocess
import sys

from repro.service import (
    IngestGateway,
    MultiLoopGateway,
    ServiceConfig,
    create_gateway,
)
from repro.service import protocol
from repro.service.load import (
    LoadConfig,
    drive_client,
    initial_db,
    iter_frames,
    offline_fingerprint,
)


def _quick_cfg(tmp_path, **overrides) -> LoadConfig:
    defaults = dict(
        traces=640,
        sessions=2,
        shards=2,
        workers=2,
        backend="inline",
        frame_traces=16,
        session_credit=4,
        pending_budget=5_000,
        gc_every=64,
        socket_dir=str(tmp_path),
    )
    defaults.update(overrides)
    return LoadConfig(**defaults)


def _gateway(cfg: LoadConfig, tmp_path) -> MultiLoopGateway:
    return create_gateway(
        ServiceConfig(
            spec=cfg.spec,
            initial_db=initial_db(cfg),
            ingest_unix=os.path.join(str(tmp_path), "ingest.sock"),
            status_unix=os.path.join(str(tmp_path), "status.sock"),
            shards=cfg.shards,
            backend=cfg.backend,
            gc_every=cfg.gc_every,
            session_credit=cfg.session_credit,
            pending_budget=cfg.pending_budget,
            acceptor_workers=cfg.workers,
        )
    )


async def _partial_session(path, client_id, frames):
    """Send ``frames`` without BYE, then drop the connection."""
    reader, writer = await asyncio.open_unix_connection(path)
    writer.write(protocol.SERVICE_MAGIC + protocol.hello_frame(client_id))
    await writer.drain()
    payload = await protocol.read_frame(reader)
    tag, _ = protocol.split_frame(payload)
    assert tag == protocol.S_WELCOME
    for frame in frames:
        writer.write(frame)
        await writer.drain()
        payload = await protocol.read_frame(reader)
        tag, _ = protocol.split_frame(payload)
        assert tag == protocol.S_CREDIT
    writer.close()
    await writer.wait_closed()


async def _connect_and_hello(path, client_id):
    """Open a session and handshake, but send no traces yet: a bound
    idle client pins the watermark at its -inf floor, so nothing another
    session streams meanwhile can be dispatched past it."""
    reader, writer = await asyncio.open_unix_connection(path)
    writer.write(protocol.SERVICE_MAGIC + protocol.hello_frame(client_id))
    await writer.drain()
    payload = await protocol.read_frame(reader)
    tag, _ = protocol.split_frame(payload)
    assert tag == protocol.S_WELCOME
    return reader, writer


async def _stream_and_bye(reader, writer, frames):
    acked = 0
    for frame in frames:
        writer.write(frame)
        await writer.drain()
        while True:
            payload = await protocol.read_frame(reader)
            tag, _ = protocol.split_frame(payload)
            if tag == protocol.S_CREDIT:
                acked += 1
                break
            assert tag in (protocol.S_PAUSE, protocol.S_RESUME)
    writer.write(protocol.bye_frame())
    await writer.drain()
    while True:
        payload = await protocol.read_frame(reader)
        tag, _ = protocol.split_frame(payload)
        if tag == protocol.S_BYE:
            break
    writer.close()
    await writer.wait_closed()
    return acked


async def _bad_client(path, client_id, bad_payload):
    """Connect, handshake, send one poison frame, return the ERROR."""
    reader, writer = await asyncio.open_unix_connection(path)
    try:
        writer.write(protocol.SERVICE_MAGIC + protocol.hello_frame(client_id))
        await writer.drain()
        payload = await protocol.read_frame(reader)
        tag, body = protocol.split_frame(payload)
        if tag == protocol.S_ERROR:
            # Refused at HELLO (e.g. an evicted client rejoining).
            return protocol.parse_control(tag, body)
        assert tag == protocol.S_WELCOME
        writer.write(bad_payload)
        await writer.drain()
        while True:
            payload = await protocol.read_frame(reader)
            if payload is None:
                return None
            tag, body = protocol.split_frame(payload)
            if tag == protocol.S_ERROR:
                return protocol.parse_control(tag, body)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestFactory:
    def test_single_loop_stays_the_reference_gateway(self, tmp_path):
        # acceptor_workers=1 must return the untouched single-loop class,
        # not a one-worker multi-loop arrangement: it is the oracle every
        # multi-worker drain is compared against.
        config = ServiceConfig(
            ingest_unix=os.path.join(str(tmp_path), "i.sock"),
            status_unix=os.path.join(str(tmp_path), "s.sock"),
            acceptor_workers=1,
        )
        assert type(create_gateway(config)) is IngestGateway

    def test_multi_loop_requires_two_workers(self, tmp_path):
        config = ServiceConfig(
            ingest_unix=os.path.join(str(tmp_path), "i.sock"),
            status_unix=os.path.join(str(tmp_path), "s.sock"),
            acceptor_workers=2,
        )
        assert type(create_gateway(config)) is MultiLoopGateway


class TestCrossWorkerHandoff:
    def test_reconnect_resumes_on_a_different_worker(self, tmp_path):
        """Sessions are dealt round robin by accept order (session 1 ->
        worker 0, session 2 -> worker 1, session 3 -> worker 0), so the
        choreography below lands client 0's dropped connection and its
        resume on DIFFERENT workers -- the coordinator directory carries
        the cursor across the handoff and the drained report is still
        byte-identical to the offline run."""
        cfg = _quick_cfg(tmp_path)

        async def scenario():
            gateway = _gateway(cfg, tmp_path)
            await gateway.start()
            ingest = gateway.ingest_endpoint
            try:
                frames = list(iter_frames(cfg, 0))
                half = len(frames) // 2
                # Session 1 (worker 0): client 1 binds and idles -- its
                # -inf floor pins the watermark so client 0's resume
                # below can never trip the late-join rule.
                held = await _connect_and_hello(ingest, 1)
                # Session 2 (worker 1): client 0's first half, dropped
                # without BYE.
                await _partial_session(ingest, 0, frames[:half])
                # Session 3 (worker 0): the same client resumes from its
                # coordinator-held cursor on the OTHER worker.
                resumed = await drive_client(ingest, 0, iter(frames[half:]))
                # Client 1 now streams its whole history on session 1.
                other_acked = await _stream_and_bye(*held, iter_frames(cfg, 1))
                report = await gateway.drain()
            finally:
                await gateway.aclose()
            return gateway, resumed, other_acked, report

        gateway, resumed, other_acked, report = asyncio.run(scenario())
        assert not resumed["errors"]
        per_client = cfg.actual_traces // cfg.sessions
        # One credit per drained frame: client 1's whole stream.
        assert other_acked == per_client // cfg.frame_traces
        assert gateway.traces_total == cfg.actual_traces
        # The handoff really crossed processes: client 0 was served by
        # both acceptor workers, client 1 by one.
        assert gateway.directory.client_record(0).workers == {0, 1}
        assert gateway.directory.client_record(1).workers == {0}
        assert report.ok
        from repro.core.report import report_fingerprint

        assert report_fingerprint(report) == offline_fingerprint(cfg)

    def test_worker_counts_sum_to_accepted(self, tmp_path):
        cfg = _quick_cfg(tmp_path)

        async def scenario():
            gateway = _gateway(cfg, tmp_path)
            await gateway.start()
            try:
                gate = asyncio.Barrier(cfg.sessions)
                await asyncio.gather(
                    *(
                        drive_client(
                            gateway.ingest_endpoint,
                            c,
                            iter_frames(cfg, c),
                            start_gate=gate,
                        )
                        for c in range(cfg.sessions)
                    )
                )
                await gateway.drain()
            finally:
                await gateway.aclose()
            return gateway

        gateway = asyncio.run(scenario())
        counts = gateway.worker_trace_counts()
        assert len(counts) == cfg.workers
        assert sum(counts) == cfg.actual_traces
        # Round-robin placement with one session per client spreads the
        # fleet: no worker sat idle.
        assert all(count > 0 for count in counts)


class TestPoisonIsolation:
    def test_poison_evicts_across_workers_without_stalling_good_clients(
        self, tmp_path
    ):
        """A poison frame on worker 0 must (a) not stall good clients on
        either worker, (b) evict the client service-wide so its re-HELLO
        is refused even when the retry lands on worker 1, and (c) leave
        the drained report byte-identical to the offline run."""
        cfg = _quick_cfg(tmp_path)

        async def scenario():
            gateway = _gateway(cfg, tmp_path)
            await gateway.start()
            ingest = gateway.ingest_endpoint
            try:
                # Session 1 -> worker 0: client 99 registers in watermark
                # accounting, then sends garbage.  Without service-wide
                # eviction its -inf floor would hold every worker's
                # sessions forever.
                error = await _bad_client(
                    ingest, 99, protocol.traces_frame(b"\x00 not a batch")
                )
                # Sessions 2 and 3 -> workers 1 and 0: the good clients.
                gate = asyncio.Barrier(cfg.sessions)
                stats = await asyncio.wait_for(
                    asyncio.gather(
                        *(
                            drive_client(
                                ingest,
                                c,
                                iter_frames(cfg, c),
                                start_gate=gate,
                            )
                            for c in range(cfg.sessions)
                        )
                    ),
                    timeout=60,
                )
                # Session 4 -> worker 1: the evicted client retries on
                # the OTHER worker and is refused at HELLO.
                refused = await _bad_client(ingest, 99, protocol.bye_frame())
                report = await gateway.drain()
            finally:
                await gateway.aclose()
            return gateway, error, stats, refused, report

        gateway, error, stats, refused, report = asyncio.run(scenario())
        assert error is not None
        assert gateway.evictions_total == 1
        per_client = cfg.actual_traces // cfg.sessions
        assert [s["acked"] for s in stats] == [per_client] * cfg.sessions
        assert not any(s["errors"] for s in stats)
        assert refused is not None and "evicted" in refused["message"]
        assert report.ok
        from repro.core.report import report_fingerprint

        assert report_fingerprint(report) == offline_fingerprint(cfg)


# -- drain-fingerprint identity matrix (subprocess) ----------------------------

_FINGERPRINT_SCRIPT = r"""
import json, sys, tempfile
from repro.service.load import LoadConfig, run_load_sync

workers = int(sys.argv[1])
with tempfile.TemporaryDirectory(prefix="repro-svc-test-") as socket_dir:
    doc = run_load_sync(
        LoadConfig(
            traces=640,
            sessions=4,
            shards=2,
            workers=workers,
            backend="inline",
            frame_traces=16,
            session_credit=4,
            pending_budget=5_000,
            gc_every=64,
            poll_interval=0.1,
            socket_dir=socket_dir,
        )
    )
print(
    json.dumps(
        {
            "online": doc["online_fingerprint"],
            "offline": doc["offline_fingerprint"],
            "match": doc["fingerprints_match"],
            "worker_traces": doc["worker_traces"],
            "traces_accepted": doc["traces_accepted"],
            "client_errors": doc["client_errors"],
            "report_ok": doc["report_ok"],
        }
    )
)
"""


def _run_load_subprocess(workers: int) -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT, str(workers)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


class TestFingerprintIdentity:
    def test_workers_1_and_2_drain_identically_to_offline(self):
        """The whole matrix in one pass: the single-loop gateway (the
        pre-PR reference path, selected verbatim by ``create_gateway``)
        and the two-worker tier must both drain to the byte-identical
        offline fingerprint -- hence to each other."""
        single = _run_load_subprocess(1)
        multi = _run_load_subprocess(2)
        for doc in (single, multi):
            assert doc["match"], doc
            assert doc["online"] == doc["offline"]
            assert doc["client_errors"] == 0
            assert doc["report_ok"] is True
            assert sum(doc["worker_traces"]) == doc["traces_accepted"]
        assert single["online"] == multi["online"]
        assert len(single["worker_traces"]) == 1
        assert len(multi["worker_traces"]) == 2
