"""Sharded parallel verification: routing, equivalence, and coverage.

The load-bearing guarantees pinned here:

* ``ParallelVerifier(shards=1)`` produces a report *identical* to the
  serial :class:`Verifier` -- same violations in the same order, same
  witness counts, same dependency/check counters -- on clean and
  fault-injected histories, with both the inline and the process backend;
* ``shards=4`` flags every bug site the serial verifier flags (same
  transaction + key), for each injected fault class;
* the inline and process backends are byte-identical to each other.
"""

from __future__ import annotations

import pytest

from repro import (
    PG_SERIALIZABLE,
    Verifier,
    pipeline_from_client_streams,
)
from repro.core.parallel import (
    GraphOnlyCertifier,
    ParallelVerifier,
    ShardVerifier,
    verify_traces_parallel,
)
from repro.core.sharding import ShardedState, ShardRouter, stable_hash
from repro.core.trace import KeyRange, Trace
from repro.dbsim.faults import FaultPlan
from repro.workloads import BlindW, run_workload


def report_fingerprint(report):
    """Everything two runs must agree on to count as identical (float
    timing buckets excluded)."""
    stats = report.stats
    return (
        tuple(
            (v.mechanism, v.kind, v.txns, v.key, v.details)
            for v in report.violations
        ),
        report.descriptor.raw_count,
        stats.traces_processed,
        stats.txns_committed,
        stats.txns_aborted,
        stats.reads_checked,
        stats.writes_checked,
        stats.deps_wr,
        stats.deps_ww,
        stats.deps_rw,
        stats.deps_so,
        stats.conflict_pairs,
        stats.overlapped_pairs,
        stats.deduced_overlapped_pairs,
        stats.gc_versions_pruned,
        stats.gc_locks_pruned,
        stats.gc_txns_pruned,
    )


def serial_report(run):
    verifier = Verifier(spec=PG_SERIALIZABLE, initial_db=run.initial_db)
    for trace in pipeline_from_client_streams(run.client_streams):
        verifier.process(trace)
    return verifier.finish()


def parallel_report(run, shards, backend):
    verifier = ParallelVerifier(
        spec=PG_SERIALIZABLE,
        initial_db=run.initial_db,
        shards=shards,
        backend=backend,
    )
    for trace in pipeline_from_client_streams(run.client_streams):
        verifier.process(trace)
    return verifier.finish()


FAULT_CASES = {
    "stale-read": FaultPlan(stale_read_prob=0.05),
    "forget-lock": FaultPlan(forget_write_lock_prob=0.3, disable_fuw=True),
    "lost-update": FaultPlan(disable_fuw=True),
    "dirty-read": FaultPlan(dirty_read_prob=0.05),
}


def fault_run(name):
    return run_workload(
        BlindW.rw(keys=64),
        PG_SERIALIZABLE,
        clients=8,
        txns=300,
        seed=7,
        faults=FAULT_CASES[name],
    )


class TestShardRouter:
    def test_stable_hash_is_process_stable(self):
        # CRC-32 of the repr: fixed values, not the salted builtin hash.
        assert stable_hash("kv1") == stable_hash("kv1")
        assert stable_hash(("acct", 3)) == stable_hash(("acct", 3))
        assert stable_hash("kv1") != stable_hash("kv2")

    def test_single_shard_routes_original_object(self):
        router = ShardRouter(1)
        trace = Trace.write(1.0, 2.0, "t1", {"a": 1, "b": 2})
        assert router.split(trace) == {0: trace}

    def test_data_trace_split_by_key_ownership(self):
        router = ShardRouter(4)
        keys = [f"kv{i}" for i in range(64)]
        trace = Trace.write(1.0, 2.0, "t1", {k: 1 for k in keys})
        parts = router.split(trace)
        seen = {}
        for shard, part in parts.items():
            for key in part.writes:
                assert router.shard_of(key) == shard
                seen[key] = shard
        assert set(seen) == set(keys)

    def test_terminals_broadcast(self):
        router = ShardRouter(3)
        commit = Trace.commit(5.0, 6.0, "t1")
        parts = router.split(commit)
        assert set(parts) == {0, 1, 2}
        assert all(part is commit for part in parts.values())

    def test_keyless_data_trace_broadcasts(self):
        router = ShardRouter(3)
        failed = Trace.read(1.0, 2.0, "t1", {})
        assert set(router.split(failed)) == {0, 1, 2}

    def test_predicate_scan_broadcasts_with_filtered_rows(self):
        router = ShardRouter(2)
        predicate = KeyRange(prefix=("row",), lo=0, hi=10)
        reads = {("row", i): {"v": i} for i in range(10)}
        trace = Trace.read(1.0, 2.0, "t1", reads, predicate=predicate)
        parts = router.split(trace)
        assert set(parts) == {0, 1}
        for shard, part in parts.items():
            assert part.predicate == predicate
            assert all(router.shard_of(k) == shard for k in part.reads)
        recombined = {k for part in parts.values() for k in part.reads}
        assert recombined == set(reads)

    def test_initial_db_partition(self):
        router = ShardRouter(4)
        initial = {f"kv{i}": {"v": i} for i in range(32)}
        parts = router.partition_initial_db(initial)
        assert sum(len(p) for p in parts) == len(initial)
        for shard, part in enumerate(parts):
            assert all(router.shard_of(k) == shard for k in part)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestShardedState:
    def test_chain_routed_to_owner_partition(self):
        sharded = ShardedState(4, initial_db={"kv1": {"v": 0}})
        chain = sharded.chain("kv1")
        owner = sharded.router.shard_of("kv1")
        assert sharded.partition(owner).chains["kv1"] is chain
        for shard in range(4):
            if shard != owner:
                assert "kv1" not in sharded.partition(shard).chains

    def test_live_structure_count_aggregates(self):
        sharded = ShardedState(2)
        sharded.chain("a")
        sharded.chain("b")
        total = sum(
            part.live_structure_count() for part in sharded.partitions
        )
        assert sharded.live_structure_count() == total


class TestSingleShardEquivalence:
    def test_blindw_rw_identical(self, blindw_rw_run):
        serial = serial_report(blindw_rw_run)
        parallel = parallel_report(blindw_rw_run, shards=1, backend="inline")
        assert report_fingerprint(parallel) == report_fingerprint(serial)

    def test_smallbank_identical(self, smallbank_run):
        serial = serial_report(smallbank_run)
        parallel = parallel_report(smallbank_run, shards=1, backend="inline")
        assert report_fingerprint(parallel) == report_fingerprint(serial)

    @pytest.mark.parametrize("fault", sorted(FAULT_CASES))
    def test_fault_cases_identical(self, fault):
        run = fault_run(fault)
        serial = serial_report(run)
        parallel = parallel_report(run, shards=1, backend="inline")
        assert not serial.ok  # the fault actually produced violations
        assert report_fingerprint(parallel) == report_fingerprint(serial)

    def test_process_backend_identical_to_inline(self, blindw_rw_run):
        inline = parallel_report(blindw_rw_run, shards=1, backend="inline")
        process = parallel_report(blindw_rw_run, shards=1, backend="process")
        assert report_fingerprint(process) == report_fingerprint(inline)

    def test_process_backend_identical_on_faults(self):
        run = fault_run("stale-read")
        inline = parallel_report(run, shards=1, backend="inline")
        process = parallel_report(run, shards=1, backend="process")
        assert report_fingerprint(process) == report_fingerprint(inline)


class TestMultiShard:
    def test_clean_run_stays_clean(self, blindw_rw_run):
        report = parallel_report(blindw_rw_run, shards=4, backend="inline")
        assert report.ok
        serial = serial_report(blindw_rw_run)
        assert report.stats.traces_processed == serial.stats.traces_processed
        assert report.stats.txns_committed == serial.stats.txns_committed

    def test_backends_agree_at_four_shards(self):
        run = fault_run("dirty-read")
        inline = parallel_report(run, shards=4, backend="inline")
        process = parallel_report(run, shards=4, backend="process")
        assert report_fingerprint(process) == report_fingerprint(inline)

    @pytest.mark.parametrize("fault", sorted(FAULT_CASES))
    def test_four_shards_flag_every_serial_bug_site(self, fault):
        """Every (transaction, key) site the serial verifier flags is also
        flagged at shards=4.  Classification may be *more* precise in the
        sharded run (per-shard GC prunes later, so a garbage version can
        still be identified as the stale source), but no site may vanish.
        """
        run = fault_run(fault)
        serial = serial_report(run)
        parallel = parallel_report(run, shards=4, backend="process")
        assert not serial.ok
        flagged = {
            (txn, v.key) for v in parallel.violations for txn in v.txns
        }
        for violation in serial.violations:
            assert any(
                (txn, violation.key) in flagged for txn in violation.txns
            ), f"serial violation not covered at shards=4: {violation}"

    def test_convenience_helper(self, blindw_rw_run):
        traces = list(
            pipeline_from_client_streams(blindw_rw_run.client_streams)
        )
        report = verify_traces_parallel(
            traces,
            spec=PG_SERIALIZABLE,
            initial_db=blindw_rw_run.initial_db,
            shards=2,
            backend="inline",
        )
        assert report.ok


class TestCoordinatorGuards:
    def test_duplicate_terminal_rejected(self):
        verifier = ParallelVerifier(shards=2, backend="inline")
        verifier.process(Trace.write(1.0, 2.0, "t1", {"a": 1}))
        verifier.process(Trace.commit(3.0, 4.0, "t1"))
        with pytest.raises(ValueError, match="already-terminated"):
            verifier.process(Trace.commit(5.0, 6.0, "t1"))

    def test_process_after_finish_rejected(self):
        verifier = ParallelVerifier(shards=1, backend="inline")
        verifier.process(Trace.write(1.0, 2.0, "t1", {"a": 1}))
        verifier.process(Trace.commit(3.0, 4.0, "t1"))
        verifier.finish()
        with pytest.raises(RuntimeError):
            verifier.process(Trace.commit(5.0, 6.0, "t2"))

    def test_finish_is_idempotent(self):
        verifier = ParallelVerifier(shards=1, backend="inline")
        verifier.process(Trace.write(1.0, 2.0, "t1", {"a": 1}))
        verifier.process(Trace.commit(3.0, 4.0, "t1"))
        assert verifier.finish() is verifier.finish()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelVerifier(shards=1, backend="threads")


class TestShardVerifier:
    def test_certifier_swapped_for_graph_only(self):
        shard = ShardVerifier(shard_id=0, spec=PG_SERIALIZABLE)
        assert isinstance(shard.mechanism("SC"), GraphOnlyCertifier)

    def test_journal_tags_trace_indices(self):
        shard = ShardVerifier(shard_id=0, spec=PG_SERIALIZABLE)
        shard.begin("t1", 0, Trace.write(1.0, 2.0, "t1", {"a": 1}).interval)
        shard.ingest(0, Trace.write(1.0, 2.0, "t1", {"a": 1}))
        shard.ingest(1, Trace.commit(3.0, 4.0, "t1"))
        shard.begin("t2", 0, Trace.read(5.0, 6.0, "t2", {"a": {"v": 1}}).interval)
        shard.ingest(2, Trace.read(5.0, 6.0, "t2", {"a": {"v": 1}}))
        shard.ingest(3, Trace.commit(7.0, 8.0, "t2"))
        result = shard.finish_shard()
        assert result.shard_id == 0
        # The wr dependency t1 -> t2 was journaled while ingesting trace 3
        # (reads are checked at their transaction's terminal).
        dep_events = [e for e in result.events if e[2] == "d"]
        assert any(
            e[0] == 3 and e[3].src == "t1" and e[3].dst == "t2"
            for e in dep_events
        )
        # Sequence numbers are strictly increasing in journal order.
        seqs = [e[1] for e in result.events]
        assert seqs == sorted(seqs)


class TestOnlineIntegration:
    def test_online_with_parallel_backend(self, blindw_rw_run):
        from repro import OnlineVerifier

        backend = ParallelVerifier(
            spec=PG_SERIALIZABLE,
            initial_db=blindw_rw_run.initial_db,
            shards=2,
            backend="inline",
        )
        online = OnlineVerifier(verifier=backend)
        fed = 0
        for trace in pipeline_from_client_streams(blindw_rw_run.client_streams):
            online.feed(trace)
            fed += 1
        report = online.finish()
        assert report.ok
        assert report.stats.traces_processed == fed

    def test_online_alerts_merge_pass_violations(self):
        from repro import OnlineVerifier

        run = fault_run("dirty-read")
        alerts = []
        backend = ParallelVerifier(
            spec=PG_SERIALIZABLE,
            initial_db=run.initial_db,
            shards=2,
            backend="inline",
        )
        online = OnlineVerifier(
            verifier=backend, on_violation=alerts.append
        )
        for trace in pipeline_from_client_streams(run.client_streams):
            online.feed(trace)
        report = online.finish()
        assert not report.ok
        assert len(alerts) == len(report.violations)

    def test_injected_verifier_excludes_kwargs(self):
        from repro import OnlineVerifier

        with pytest.raises(ValueError):
            OnlineVerifier(
                verifier=ParallelVerifier(shards=1, backend="inline"),
                gc_every=64,
            )
