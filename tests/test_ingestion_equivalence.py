"""Batched ingestion spine equivalences, pinned at the report level.

The ISSUE 4 escape hatches must be real escapes: the per-trace heap path
(``run_merge=False`` / ``REPRO_PIPELINE_RUNS=0``), the batched
``process_batch`` entry point, and both serialisation formats have to
produce *identical* verification reports over the same workload run.
``tools/bench_baseline.py`` asserts the same equivalences before it
records any timing; these tests keep them under the regular suite.
"""

import dataclasses
import io

import pytest

from repro import PG_SERIALIZABLE, Verifier, pipeline_from_client_streams
from repro.core.codec import dump_traces_binary, load_traces_binary
from repro.core.io import (
    dump_client_streams,
    dump_traces,
    load_client_streams,
    load_traces,
)


def report_fingerprint(report):
    """Everything observable about a report except timing."""
    stats = dataclasses.asdict(report.stats)
    stats.pop("mechanism_seconds", None)
    return {
        "summary": report.summary(),
        "ok": report.ok,
        "violations": [str(v) for v in report.violations],
        "witnesses": report.descriptor.raw_count,
        "stats": stats,
    }


def verify_batched(run, streams=None, run_merge=None):
    verifier = Verifier(spec=PG_SERIALIZABLE, initial_db=run.initial_db)
    pipeline = pipeline_from_client_streams(
        run.client_streams if streams is None else streams, run_merge=run_merge
    )
    for batch in pipeline.iter_batches():
        verifier.process_batch(batch)
    return verifier.finish()


def verify_per_trace(run):
    """The pre-batching consumption shape, trace by trace."""
    verifier = Verifier(spec=PG_SERIALIZABLE, initial_db=run.initial_db)
    for trace in pipeline_from_client_streams(run.client_streams, run_merge=False):
        verifier.process(trace)
    return verifier.finish()


class TestPathEquivalence:
    def test_batched_equals_per_trace_reference(self, blindw_rw_run):
        batched = report_fingerprint(verify_batched(blindw_rw_run))
        reference = report_fingerprint(verify_per_trace(blindw_rw_run))
        assert batched == reference

    def test_env_escape_hatch_same_report(self, blindw_rw_run, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE_RUNS", "0")
        hatch = report_fingerprint(verify_batched(blindw_rw_run))
        monkeypatch.delenv("REPRO_PIPELINE_RUNS")
        assert hatch == report_fingerprint(verify_batched(blindw_rw_run))

    def test_smallbank_paths_agree(self, smallbank_run):
        batched = report_fingerprint(verify_batched(smallbank_run))
        reference = report_fingerprint(verify_per_trace(smallbank_run))
        assert batched == reference


class TestFormatEquivalence:
    @staticmethod
    def roundtrip(streams, fmt):
        out = {}
        for client_id, traces in streams.items():
            if fmt == "binary":
                buf = io.BytesIO()
                dump_traces_binary(traces, buf)
                buf.seek(0)
                out[client_id] = list(load_traces_binary(buf))
            else:
                buf = io.StringIO()
                dump_traces(traces, buf)
                buf.seek(0)
                out[client_id] = list(load_traces(buf))
        return out

    def test_binary_equals_jsonl_report(self, blindw_rw_run):
        direct = report_fingerprint(verify_batched(blindw_rw_run))
        for fmt in ("jsonl", "binary"):
            streams = self.roundtrip(blindw_rw_run.client_streams, fmt)
            assert report_fingerprint(
                verify_batched(blindw_rw_run, streams=streams)
            ) == direct, f"{fmt} round-trip changed the report"

    @pytest.mark.parametrize("fmt", ["jsonl", "binary"])
    def test_capture_directory_round_trip(self, tmp_path, blindw_rw_run, fmt):
        capture = tmp_path / fmt
        paths = dump_client_streams(
            blindw_rw_run.client_streams, capture, fmt=fmt
        )
        suffix = ".rtb" if fmt == "binary" else ".jsonl"
        assert all(p.suffix == suffix for p in paths)
        loaded = load_client_streams(capture)
        direct = report_fingerprint(verify_batched(blindw_rw_run))
        assert report_fingerprint(
            verify_batched(blindw_rw_run, streams=loaded)
        ) == direct
