"""SC mechanism: certifier mirroring (Algorithm 2, lines 27-31)."""


from repro import (
    PG_REPEATABLE_READ,
    PG_SERIALIZABLE,
    Trace,
    ViolationKind,
    verify_traces,
)
from repro.core.spec import IsolationLevel, IsolationSpec, profile

INIT = {"x": {"v": 0}, "y": {"v": 0}}


def verify(traces, spec, **kwargs):
    return verify_traces(
        sorted(traces, key=Trace.sort_key), spec=spec, initial_db=INIT, **kwargs
    )


def write_skew_traces():
    """t1 reads x,y writes y; t2 reads x,y writes x; concurrent."""
    return [
        Trace.read(0.00, 0.01, "t1", {"x": 0, "y": 0}, client_id=0),
        Trace.read(0.00, 0.01, "t2", {"x": 0, "y": 0}, client_id=1),
        Trace.write(0.02, 0.03, "t1", {"y": 1}, client_id=0),
        Trace.write(0.02, 0.03, "t2", {"x": 2}, client_id=1),
        Trace.commit(0.04, 0.05, "t1", client_id=0),
        Trace.commit(0.055, 0.06, "t2", client_id=1),
    ]


class TestSSI:
    def test_write_skew_flagged_under_ssi(self):
        report = verify(write_skew_traces(), PG_SERIALIZABLE)
        kinds = {v.kind for v in report.violations}
        assert ViolationKind.DANGEROUS_STRUCTURE in kinds

    def test_write_skew_legal_under_si(self):
        report = verify(write_skew_traces(), PG_REPEATABLE_READ)
        assert report.ok

    def test_serial_consecutive_rw_not_flagged(self):
        """Non-concurrent rw chains are normal serial behaviour; the SSI
        check must require concurrency (no false positives on serial
        histories)."""
        traces = [
            # t0 reads x; later t1 overwrites x (rw t0->t1, serial).
            Trace.read(0.0, 0.1, "t0", {"x": 0, "y": 0}, client_id=0),
            Trace.write(0.15, 0.2, "t0", {"y": 5}, client_id=0),
            Trace.commit(0.25, 0.3, "t0", client_id=0),
            Trace.read(0.4, 0.45, "t1", {"y": 5}, client_id=0),
            Trace.write(0.5, 0.55, "t1", {"x": 6}, client_id=0),
            Trace.commit(0.6, 0.65, "t1", client_id=0),
            Trace.read(0.7, 0.75, "t2", {"x": 6}, client_id=0),
            Trace.write(0.8, 0.85, "t2", {"y": 7}, client_id=0),
            Trace.commit(0.9, 0.95, "t2", client_id=0),
        ]
        assert verify(traces, PG_SERIALIZABLE).ok


class TestCycleCertifier:
    def cyclic_history(self):
        """Serializability violation without write skew shape: t1 and t2
        each read the other's pre-state and overwrite it (rw cycle), built
        on a lock-free engine profile."""
        return write_skew_traces()

    def test_cycle_flagged_by_cycle_certifier(self):
        spec = profile("cockroachdb", IsolationLevel.SERIALIZABLE)
        report = verify(self.cyclic_history(), spec)
        kinds = {v.kind for v in report.violations}
        assert ViolationKind.DEPENDENCY_CYCLE in kinds

    def test_clean_serial_history_ok(self):
        spec = profile("cockroachdb", IsolationLevel.SERIALIZABLE)
        traces = [
            Trace.write(0.0, 0.1, "t0", {"x": 1}, client_id=0),
            Trace.commit(0.2, 0.3, "t0", client_id=0),
            Trace.read(0.4, 0.5, "t1", {"x": 1}, client_id=1),
            Trace.commit(0.6, 0.7, "t1", client_id=1),
        ]
        assert verify(traces, spec).ok


class TestContradictoryDependencies:
    def test_ww_wr_cycle_flagged_under_any_level(self):
        """A cycle of ww/wr dependencies contradicts physical time and is a
        bug even when no serializability is claimed.  Here t2 reads t1's
        write *before* t1's write happened -- impossible."""
        spec = IsolationSpec(
            name="test/RC-noSC",
            level=IsolationLevel.READ_COMMITTED,
            cr=__import__("repro.core.spec", fromlist=["CRLevel"]).CRLevel.STATEMENT,
            me=False,
        )
        traces = [
            # t2 reads x=1 (claims wr t1->t2) and commits before t1 even runs.
            Trace.read(0.0, 0.1, "t2", {"x": 1}, client_id=1),
            Trace.commit(0.2, 0.3, "t2", client_id=1),
            Trace.write(1.0, 1.1, "t1", {"x": 1}, client_id=0),
            Trace.commit(1.2, 1.3, "t1", client_id=0),
        ]
        report = verify(traces, spec)
        assert not report.ok  # surfaces as dirty/unknown read or cycle
        assert report.violations


class TestFirstCommitterCertifier:
    def test_concurrent_writers_flagged(self):
        spec = profile("tidb", IsolationLevel.SNAPSHOT_ISOLATION)
        traces = [
            Trace.read(0.00, 0.01, "t0", {"x": 0}, client_id=0),
            Trace.read(0.00, 0.01, "t1", {"x": 0}, client_id=1),
            Trace.write(0.02, 0.03, "t0", {"x": 1}, client_id=0),
            Trace.write(0.02, 0.03, "t1", {"x": 2}, client_id=1),
            Trace.commit(0.04, 0.05, "t0", client_id=0),
            Trace.commit(0.055, 0.06, "t1", client_id=1),
        ]
        report = verify(traces, spec)
        assert not report.ok
        kinds = {v.kind for v in report.violations}
        assert ViolationKind.LOST_UPDATE in kinds

    def test_serial_writers_clean(self):
        spec = profile("tidb", IsolationLevel.SNAPSHOT_ISOLATION)
        traces = [
            Trace.write(0.0, 0.1, "t0", {"x": 1}, client_id=0),
            Trace.commit(0.2, 0.3, "t0", client_id=0),
            Trace.write(0.5, 0.6, "t1", {"x": 2}, client_id=1),
            Trace.commit(0.7, 0.8, "t1", client_id=1),
        ]
        assert verify(traces, spec).ok
