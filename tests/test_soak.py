"""Soak matrix: every (workload x spec x protocol) clean combination must
verify clean; every (fault x spec) injection must be detected.

Small per-combination transaction counts keep the matrix fast while still
covering the cross-product the individual test files sample only
pointwise.
"""

import pytest

from repro import IsolationLevel, PG_REPEATABLE_READ, PG_SERIALIZABLE, profile
from repro.dbsim import FaultPlan, SimulatedDBMS
from repro.workloads import (
    BlindW,
    InsertScanWorkload,
    ListAppendWorkload,
    SmallBank,
    WorkloadRunner,
    YcsbA,
)
from tests.conftest import verify_run


def run_combo(workload, spec, cc_protocol="occ", txns=150, seed=5, faults=None):
    db = SimulatedDBMS(
        spec=spec, seed=seed, faults=faults or FaultPlan(), cc_protocol=cc_protocol
    )
    runner = WorkloadRunner(db, workload, clients=8, seed=seed)
    return runner.run(txns=txns)


CLEAN_SPECS = [
    profile("postgresql", IsolationLevel.SERIALIZABLE),
    profile("postgresql", IsolationLevel.SNAPSHOT_ISOLATION),
    profile("postgresql", IsolationLevel.READ_COMMITTED),
    profile("innodb", IsolationLevel.REPEATABLE_READ),
    profile("sqlite", IsolationLevel.SERIALIZABLE),
    profile("cockroachdb", IsolationLevel.SERIALIZABLE),
    profile("tidb", IsolationLevel.SNAPSHOT_ISOLATION),
    profile("yugabytedb", IsolationLevel.SERIALIZABLE),
]

CLEAN_WORKLOADS = [
    lambda seed: BlindW.rw(keys=96, seed=seed),
    lambda seed: SmallBank(scale_factor=0.03, seed=seed),
    lambda seed: YcsbA(records=150, theta=0.7, seed=seed),
    lambda seed: ListAppendWorkload(keys=12, seed=seed),
    lambda seed: InsertScanWorkload(initial_rows=8, seed=seed),
]


@pytest.mark.parametrize("spec", CLEAN_SPECS, ids=lambda s: s.name)
@pytest.mark.parametrize(
    "make_workload",
    CLEAN_WORKLOADS,
    ids=["blindw-rw", "smallbank", "ycsb-a", "list-append", "insert-scan"],
)
def test_soak_clean_matrix(spec, make_workload):
    run = run_combo(make_workload(5), spec)
    report = verify_run(run, spec)
    assert report.ok, [str(v) for v in report.violations[:4]]


@pytest.mark.parametrize("seed", [2, 9, 17])
def test_soak_mvto_protocol(seed):
    spec = profile("cockroachdb", IsolationLevel.SERIALIZABLE)
    run = run_combo(SmallBank(scale_factor=0.03, seed=seed), spec,
                    cc_protocol="mvto", seed=seed)
    assert verify_run(run, spec).ok


@pytest.mark.parametrize("seed", [3, 8, 21, 34])
def test_soak_fault_matrix(seed):
    """Each seed runs every probabilistic fault class once; all must be
    caught (the deterministic anomaly workloads make detection reliable)."""
    from repro.workloads import LostUpdateWorkload, WriteSkewWorkload

    cases = [
        (
            LostUpdateWorkload(counters=3, seed=seed),
            PG_REPEATABLE_READ,
            FaultPlan(disable_fuw=True, seed=seed),
        ),
        (
            WriteSkewWorkload(pairs=3, seed=seed),
            PG_SERIALIZABLE,
            FaultPlan(disable_ssi=True, seed=seed),
        ),
        (
            BlindW.w(keys=12, seed=seed),
            PG_SERIALIZABLE,
            FaultPlan(
                disable_write_locks=True,
                disable_fuw=True,
                disable_ssi=True,
                seed=seed,
            ),
        ),
    ]
    for workload, spec, faults in cases:
        run = run_combo(workload, spec, txns=350, seed=seed, faults=faults)
        report = verify_run(run, spec)
        assert not report.ok, f"{workload.name} fault undetected (seed={seed})"
