"""Predicate (range) reads and phantom detection."""

import pytest

from repro import (
    PG_READ_COMMITTED,
    PG_REPEATABLE_READ,
    PG_SERIALIZABLE,
    Trace,
    ViolationKind,
    verify_traces,
)
from repro.core.trace import KeyRange
from repro.dbsim import FaultPlan, ReadOp, SimulatedDBMS, WriteOp, run_single_program
from repro.workloads import InsertScanWorkload, run_workload
from tests.conftest import verify_run


class TestKeyRange:
    def test_matches(self):
        predicate = KeyRange(("row",), 5, 10)
        assert predicate.matches(("row", 5))
        assert predicate.matches(("row", 9))
        assert not predicate.matches(("row", 10))
        assert not predicate.matches(("row", 4))
        assert not predicate.matches(("other", 5))
        assert not predicate.matches("row5")
        assert not predicate.matches(("row", 5, 6))

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            KeyRange(("row",), 10, 5)

    def test_nested_prefix(self):
        predicate = KeyRange(("order", 1, 2), 0, 100)
        assert predicate.matches(("order", 1, 2, 7))
        assert not predicate.matches(("order", 1, 3, 7))


class TestEngineScans:
    def make_db(self, faults=None, spec=PG_SERIALIZABLE):
        db = SimulatedDBMS(spec=spec, seed=1, faults=faults or FaultPlan())
        db.load({("row", i): {"a": i} for i in range(5)})
        return db

    def test_scan_returns_visible_rows(self):
        db = self.make_db()

        def scan():
            rows = yield ReadOp(predicate=KeyRange(("row",), 0, 100))
            assert sorted(rows) == [("row", i) for i in range(5)]

        run_single_program(db, scan())

    def test_scan_sees_committed_insert(self):
        db = self.make_db()

        def insert():
            yield WriteOp({("row", 77): {"a": 77}})

        run_single_program(db, insert())

        def scan():
            rows = yield ReadOp(predicate=KeyRange(("row",), 0, 100))
            assert ("row", 77) in rows

        run_single_program(db, scan(), client_id=1)

    def test_scan_sees_own_staged_insert(self):
        db = self.make_db()

        def program():
            yield WriteOp({("row", 42): {"a": 42}})
            rows = yield ReadOp(predicate=KeyRange(("row",), 0, 100))
            assert ("row", 42) in rows

        run_single_program(db, program())

    def test_scan_window(self):
        db = self.make_db()

        def scan():
            rows = yield ReadOp(predicate=KeyRange(("row",), 1, 3))
            assert sorted(rows) == [("row", 1), ("row", 2)]

        run_single_program(db, scan())

    def test_snapshot_scan_repeatable_under_si(self):
        from tests.test_engine import collect

        db = self.make_db(spec=PG_REPEATABLE_READ)
        sizes = []

        def scanner():
            first = yield ReadOp(predicate=KeyRange(("row",), 0, 1000))
            second = yield ReadOp(predicate=KeyRange(("row",), 0, 1000))
            third = yield ReadOp(predicate=KeyRange(("row",), 0, 1000))
            sizes.extend([len(first), len(second), len(third)])

        def inserter():
            yield WriteOp({("row", 99): {"a": 99}})

        collect(db, scanner(), inserter())
        assert sizes[0] == sizes[1] == sizes[2]

    def test_phantom_fault_drops_rows(self):
        db = self.make_db(faults=FaultPlan(phantom_skip_prob=1.0))

        def scan():
            rows = yield ReadOp(predicate=KeyRange(("row",), 0, 100))
            assert rows == {}

        run_single_program(db, scan())


class TestVerifierPhantoms:
    INIT = {("row", 0): {"a": 0}, ("row", 1): {"a": 1}}

    def test_complete_scan_clean(self):
        traces = [
            Trace.read(
                0.0,
                0.1,
                "t1",
                {("row", 0): {"a": 0}, ("row", 1): {"a": 1}},
                predicate=KeyRange(("row",), 0, 10),
            ),
            Trace.commit(0.2, 0.3, "t1"),
        ]
        report = verify_traces(traces, spec=PG_SERIALIZABLE, initial_db=self.INIT)
        assert report.ok

    def test_missing_initial_row_flagged(self):
        traces = [
            Trace.read(
                0.0,
                0.1,
                "t1",
                {("row", 0): {"a": 0}},  # row 1 missing!
                predicate=KeyRange(("row",), 0, 10),
            ),
            Trace.commit(0.2, 0.3, "t1"),
        ]
        report = verify_traces(traces, spec=PG_SERIALIZABLE, initial_db=self.INIT)
        assert not report.ok
        assert report.violations[0].kind is ViolationKind.PHANTOM

    def test_missing_committed_insert_flagged(self):
        traces = [
            Trace.write(0.0, 0.1, "w", {("row", 5): {"a": 5}}, client_id=0),
            Trace.commit(0.2, 0.3, "w", client_id=0),
            Trace.read(
                1.0,
                1.1,
                "t1",
                {("row", 0): {"a": 0}, ("row", 1): {"a": 1}},  # misses row 5
                client_id=1,
                predicate=KeyRange(("row",), 0, 10),
            ),
            Trace.commit(1.2, 1.3, "t1", client_id=1),
        ]
        report = verify_traces(
            sorted(traces, key=Trace.sort_key),
            spec=PG_SERIALIZABLE,
            initial_db=self.INIT,
        )
        assert not report.ok
        kinds = {v.kind for v in report.violations}
        assert ViolationKind.PHANTOM in kinds

    def test_concurrent_insert_may_be_absent(self):
        """An insert whose commit interval overlaps the snapshot interval
        is only *possibly* visible: its absence is not a violation."""
        traces = [
            Trace.write(0.00, 0.10, "w", {("row", 5): {"a": 5}}, client_id=0),
            Trace.commit(0.15, 0.60, "w", client_id=0),
            Trace.read(
                0.2,
                0.5,
                "t1",
                {("row", 0): {"a": 0}, ("row", 1): {"a": 1}},
                client_id=1,
                predicate=KeyRange(("row",), 0, 10),
            ),
            Trace.commit(0.7, 0.8, "t1", client_id=1),
        ]
        report = verify_traces(
            sorted(traces, key=Trace.sort_key),
            spec=PG_SERIALIZABLE,
            initial_db=self.INIT,
        )
        assert report.ok

    def test_scan_with_no_cr_claim_not_flagged(self):
        from repro.core.spec import profile, IsolationLevel

        spec = profile("sqlite", IsolationLevel.SERIALIZABLE)
        traces = [
            Trace.read(
                0.0,
                0.1,
                "t1",
                {("row", 0): {"a": 0}},
                predicate=KeyRange(("row",), 0, 10),
            ),
            Trace.commit(0.2, 0.3, "t1"),
        ]
        report = verify_traces(traces, spec=spec, initial_db=self.INIT)
        phantoms = [
            v for v in report.violations if v.kind is ViolationKind.PHANTOM
        ]
        assert not phantoms


class TestInsertScanWorkload:
    def test_clean_run_verifies(self):
        run = run_workload(
            InsertScanWorkload(initial_rows=10),
            PG_SERIALIZABLE,
            clients=8,
            txns=300,
            seed=7,
        )
        report = verify_run(run, PG_SERIALIZABLE)
        assert report.ok, [str(v) for v in report.violations[:5]]

    def test_clean_under_rc(self):
        run = run_workload(
            InsertScanWorkload(initial_rows=10),
            PG_READ_COMMITTED,
            clients=8,
            txns=300,
            seed=7,
        )
        assert verify_run(run, PG_READ_COMMITTED).ok

    def test_phantom_fault_detected_end_to_end(self):
        run = run_workload(
            InsertScanWorkload(initial_rows=10),
            PG_SERIALIZABLE,
            clients=8,
            txns=300,
            seed=7,
            faults=FaultPlan(phantom_skip_prob=0.05),
        )
        report = verify_run(run, PG_SERIALIZABLE)
        assert not report.ok
        assert ViolationKind.PHANTOM in {v.kind for v in report.violations}

    def test_io_round_trip_preserves_predicates(self, tmp_path):
        from repro.core.io import dump_client_streams, load_client_streams

        run = run_workload(
            InsertScanWorkload(initial_rows=5),
            PG_SERIALIZABLE,
            clients=4,
            txns=60,
            seed=7,
        )
        dump_client_streams(run.client_streams, tmp_path)
        loaded = load_client_streams(tmp_path)
        predicates = [
            t.predicate
            for stream in loaded.values()
            for t in stream
            if t.predicate is not None
        ]
        assert predicates
        assert all(p.prefix == ("row",) for p in predicates)
