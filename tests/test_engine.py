"""Simulated DBMS engine: transaction semantics per isolation spec."""

import pytest

from repro.core.spec import (
    IsolationLevel,
    PG_READ_COMMITTED,
    PG_REPEATABLE_READ,
    PG_SERIALIZABLE,
    profile,
)
from repro.core.trace import OpKind
from repro.dbsim import (
    AbortOp,
    FaultPlan,
    ReadOp,
    SimulatedDBMS,
    WriteOp,
    run_single_program,
)


def make_db(spec=PG_SERIALIZABLE, faults=None, seed=0):
    db = SimulatedDBMS(spec=spec, seed=seed, faults=faults or FaultPlan())
    db.load({"x": 0, "y": 0})
    return db


def collect(db, *programs):
    """Run programs concurrently (all started at t=0) and return traces."""
    from repro.dbsim.session import ClientSession

    sessions = []
    for client_id, program in enumerate(programs):
        session = ClientSession(client_id, db)
        session.run_program(program, lambda *_: None)
        sessions.append(session)
    db.loop.run()
    return sessions


class TestBasicSemantics:
    def test_read_initial(self):
        db = make_db()

        def program():
            values = yield ReadOp(["x"])
            assert values["x"] == {"v": 0}

        traces = run_single_program(db, program())
        assert [t.kind for t in traces] == [OpKind.READ, OpKind.COMMIT]

    def test_write_then_read_own(self):
        db = make_db()

        def program():
            yield WriteOp({"x": 5})
            values = yield ReadOp(["x"])
            assert values["x"]["v"] == 5

        run_single_program(db, program())

    def test_committed_visible_to_next_txn(self):
        db = make_db()

        def writer():
            yield WriteOp({"x": 9})

        def reader():
            values = yield ReadOp(["x"])
            assert values["x"]["v"] == 9

        run_single_program(db, writer())
        run_single_program(db, reader(), client_id=1)

    def test_voluntary_abort_rolls_back(self):
        db = make_db()

        def writer():
            yield WriteOp({"x": 9})
            yield AbortOp()

        traces = run_single_program(db, writer())
        assert traces[-1].kind is OpKind.ABORT

        def reader():
            values = yield ReadOp(["x"])
            assert values["x"]["v"] == 0

        run_single_program(db, reader(), client_id=1)

    def test_column_projection(self):
        db = SimulatedDBMS(spec=PG_SERIALIZABLE)
        db.load({"r": {"a": 1, "b": 2}})

        def program():
            values = yield ReadOp(["r"], columns=["a"])
            assert values["r"] == {"a": 1}

        run_single_program(db, program())

    def test_read_missing_key(self):
        db = make_db()

        def program():
            values = yield ReadOp(["ghost"])
            assert values["ghost"] is None

        run_single_program(db, program())

    def test_intervals_strictly_positive(self):
        db = make_db()

        def program():
            yield WriteOp({"x": 1})
            yield ReadOp(["x"])

        traces = run_single_program(db, program())
        for trace in traces:
            assert trace.ts_aft > trace.ts_bef


class TestIsolationBehaviour:
    def test_snapshot_stability_under_si(self):
        """Under txn-level CR a repeated read returns the snapshot value even
        after a concurrent commit."""
        db = make_db(spec=PG_REPEATABLE_READ)
        observed = []

        def long_reader():
            first = yield ReadOp(["x"])
            second = yield ReadOp(["x"])
            third = yield ReadOp(["x"])
            observed.extend(
                [first["x"]["v"], second["x"]["v"], third["x"]["v"]]
            )

        def writer():
            yield WriteOp({"x": 77})

        collect(db, long_reader(), writer())
        assert observed[0] == observed[1] == observed[2]

    def test_fuw_aborts_second_updater(self):
        db = make_db(spec=PG_REPEATABLE_READ, seed=4)

        def rmw():
            values = yield ReadOp(["x"])
            yield WriteOp({"x": values["x"]["v"] + 1})

        sessions = collect(db, rmw(), rmw())
        outcomes = sorted(s.committed for s in sessions)
        assert outcomes == [0, 1]  # exactly one survives
        assert db.stats.serialization_failures >= 1

    def test_no_fuw_under_rc_both_commit(self):
        db = make_db(spec=PG_READ_COMMITTED, seed=4)

        def rmw():
            values = yield ReadOp(["x"])
            yield WriteOp({"x": values["x"]["v"] + 1})

        sessions = collect(db, rmw(), rmw())
        assert all(s.committed == 1 for s in sessions)

    def test_ssi_aborts_write_skew(self):
        db = make_db(spec=PG_SERIALIZABLE, seed=4)

        def skew(read_key, write_key):
            values = yield ReadOp(["x", "y"])
            yield WriteOp({write_key: values[read_key]["v"] + 1})

        sessions = collect(db, skew("x", "y"), skew("y", "x"))
        assert sum(s.committed for s in sessions) <= 1

    def test_ssi_disabled_lets_write_skew_commit(self):
        db = make_db(
            spec=PG_SERIALIZABLE, faults=FaultPlan(disable_ssi=True), seed=4
        )

        def skew(read_key, write_key):
            values = yield ReadOp(["x", "y"])
            yield WriteOp({write_key: values[read_key]["v"] + 1})

        sessions = collect(db, skew("x", "y"), skew("y", "x"))
        assert all(s.committed == 1 for s in sessions)

    def test_deadlock_resolved_by_abort(self):
        db = make_db(spec=PG_READ_COMMITTED, seed=2)

        def order(first, second):
            yield WriteOp({first: 1})
            yield WriteOp({second: 2})

        sessions = collect(db, order("x", "y"), order("y", "x"))
        assert sum(s.committed for s in sessions) >= 1
        assert sum(s.aborted for s in sessions) >= 1

    def test_occ_validation(self):
        spec = profile("cockroachdb", IsolationLevel.SERIALIZABLE)
        db = SimulatedDBMS(spec=spec, seed=4)
        db.load({"x": 0})

        def rmw():
            values = yield ReadOp(["x"])
            yield WriteOp({"x": values["x"]["v"] + 1})

        sessions = collect(db, rmw(), rmw())
        assert sum(s.committed for s in sessions) == 1


class TestFaults:
    def test_stale_read_fault_surfaces(self):
        db = make_db(
            spec=PG_READ_COMMITTED, faults=FaultPlan(stale_read_prob=1.0)
        )

        def writer():
            yield WriteOp({"x": 1})

        run_single_program(db, writer())

        def reader():
            values = yield ReadOp(["x"])
            assert values["x"]["v"] == 0  # served the superseded version

        run_single_program(db, reader(), client_id=1)

    def test_ignore_own_write_fault(self):
        db = make_db(faults=FaultPlan(ignore_own_write_prob=1.0))

        def program():
            yield WriteOp({"x": 5})
            values = yield ReadOp(["x"])
            assert values["x"]["v"] == 0  # own write invisible (Bug 4)

        run_single_program(db, program())

    def test_noop_update_lock_skip(self):
        db = make_db(faults=FaultPlan(skip_lock_on_noop_update=True))

        def noop_writer():
            yield WriteOp({"x": 0})  # same value: no lock acquired

        run_single_program(db, noop_writer())
        assert db.stats.lock_waits == 0


class TestEngineStats:
    def test_counters(self):
        db = make_db()

        def program():
            yield ReadOp(["x"])
            yield WriteOp({"x": 1})

        run_single_program(db, program())
        assert db.stats.begun == 1
        assert db.stats.committed == 1
        assert db.stats.reads == 1
        assert db.stats.writes == 1

    def test_determinism(self):
        def run_once():
            db = make_db(seed=11)

            def program():
                values = yield ReadOp(["x"])
                yield WriteOp({"x": values["x"]["v"] + 1})

            return run_single_program(db, program())

        first = [(t.ts_bef, t.ts_aft, t.kind) for t in run_once()]
        second = [(t.ts_bef, t.ts_aft, t.kind) for t in run_once()]
        assert first == second


class TestMvtoProtocol:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            SimulatedDBMS(spec=PG_SERIALIZABLE, cc_protocol="nope")

    def test_mvto_history_serializable(self):
        spec = profile("cockroachdb", IsolationLevel.SERIALIZABLE)
        db = SimulatedDBMS(spec=spec, seed=4, cc_protocol="mvto")
        db.load({"x": 0, "y": 0})

        def skew(read_key, write_key):
            values = yield ReadOp(["x", "y"])
            yield WriteOp({write_key: values[read_key]["v"] + 1})

        sessions = collect(db, skew("x", "y"), skew("y", "x"))
        # MVTO must abort at least one of the skewing transactions.
        assert sum(s.committed for s in sessions) <= 1

    def test_mvto_read_timestamp_rule(self):
        """The read-timestamp rule: a writer whose snapshot precedes a later
        reader's timestamp cannot overwrite what that reader saw."""
        from types import SimpleNamespace

        from repro.dbsim import MultiVersionStore, MvtoValidator

        store = MultiVersionStore({"x": {"v": 0}})
        store.note_read("x", 10.0)
        slow_writer = SimpleNamespace(snapshot_ts=5.0)
        reason = MvtoValidator().check_write(slow_writer, "x", store)
        assert reason is not None and "timestamp order" in reason

    def test_mvto_newer_version_rule(self):
        from types import SimpleNamespace

        from repro.dbsim import MultiVersionStore, MvtoValidator

        store = MultiVersionStore({"x": {"v": 0}})
        store.install("x", "t9", {"v": 1}, commit_ts=8.0)
        late_writer = SimpleNamespace(snapshot_ts=5.0)
        assert MvtoValidator().check_write(late_writer, "x", store) is not None
        fresh_writer = SimpleNamespace(snapshot_ts=9.0)
        assert MvtoValidator().check_write(fresh_writer, "x", store) is None

    def test_mvto_clean_verification(self):
        from repro import Verifier, pipeline_from_client_streams
        from repro.workloads import SmallBank, WorkloadRunner

        spec = profile("cockroachdb", IsolationLevel.SERIALIZABLE)
        db = SimulatedDBMS(spec=spec, seed=9, cc_protocol="mvto")
        run = WorkloadRunner(
            db, SmallBank(scale_factor=0.05, seed=9), clients=8, seed=9
        ).run(txns=300)
        verifier = Verifier(spec=spec, initial_db=run.initial_db)
        for trace in pipeline_from_client_streams(run.client_streams):
            verifier.process(trace)
        assert verifier.finish().ok


class TestEngineEdgeCases:
    def test_op_on_committed_txn_fails(self):
        db = make_db()
        results = []

        def hold(result):
            results.append(result)

        txn = db.begin()
        db.submit_commit(txn, hold)
        db.loop.run()
        db.submit_read(txn, ["x"], hold)
        db.loop.run()
        assert results[0].ok and not results[1].ok

    def test_abort_after_commit_is_noop(self):
        db = make_db()
        results = []
        txn = db.begin()
        db.submit_commit(txn, results.append)
        db.loop.run()
        db.submit_abort(txn, results.append)
        db.loop.run()
        assert results[0].ok and results[1].ok  # abort of finished txn: ok
        assert db.stats.committed == 1 and db.stats.aborted == 0

    def test_poisoned_txn_rejects_further_ops(self):
        db = make_db(spec=PG_REPEATABLE_READ, seed=4)
        from tests.test_engine import collect

        def rmw_then_read():
            values = yield ReadOp(["x"])
            yield WriteOp({"x": values["x"]["v"] + 1})
            # The session aborts on failure, so a poisoned txn never gets
            # here; this test drives the engine API directly below.

        results = []
        t1 = db.begin()
        t2 = db.begin()
        db.submit_read(t1, ["x"], results.append)
        db.submit_read(t2, ["x"], results.append)
        db.loop.run()
        db.submit_write(t1, {"x": {"v": 1}}, results.append)
        db.loop.run()
        db.submit_commit(t1, results.append)
        db.loop.run()
        db.submit_write(t2, {"x": {"v": 2}}, results.append)  # FUW failure
        db.loop.run()
        assert not results[-1].ok
        db.submit_write(t2, {"y": {"v": 3}}, results.append)  # poisoned
        db.loop.run()
        assert not results[-1].ok and "roll back" in results[-1].error

    def test_custom_txn_id(self):
        db = make_db()
        txn = db.begin(txn_id="custom-42")
        assert txn.txn_id == "custom-42"
